//! Cross-platform consistency: the three CocoSketch variants, the
//! hardware models, and the OVS datapath must tell one coherent story.

use cocosketch::Variant;
use hwsim::fpga::{synthesize, FpgaConfig};
use hwsim::program::library;
use hwsim::rmt::{place, PlaceError, RmtConfig};
use ovssim::{OvsConfig, OvsSim};
use sketches::Sketch;
use tasks::{heavy_hitter, Algo};
use traffic::gen::{generate, TraceConfig};
use traffic::{truth, KeySpec};

fn trace() -> traffic::Trace {
    generate(&TraceConfig {
        packets: 120_000,
        flows: 8_000,
        alpha: 1.12,
        ip_skew: 1.0,
        seed: 0xCAFE,
    })
}

#[test]
fn all_three_variants_detect_the_same_heavy_hitters() {
    let t = trace();
    let mut scores = Vec::new();
    for variant in Variant::ALL {
        let res = heavy_hitter::run(
            &t,
            &KeySpec::PAPER_SIX,
            KeySpec::FIVE_TUPLE,
            Algo::Coco { variant, d: 2 },
            256 * 1024,
            // At test scale the 1e-4 threshold is only ~12 packets,
            // far below the regime the paper's <10% claim refers to;
            // 1e-3 (~120 packets) matches the paper's flow-size ratio.
            1e-3,
            7,
        );
        scores.push((variant.name(), res.avg.f1));
    }
    // Figure 18a: basic best, hardware versions within 10%, FPGA vs P4
    // within ~1 point.
    let basic = scores[0].1;
    let fpga = scores[1].1;
    let p4 = scores[2].1;
    assert!(basic > 0.93, "basic F1 {basic}");
    assert!(basic - fpga < 0.10, "hardware drop too large: {scores:?}");
    assert!((fpga - p4).abs() < 0.03, "approx division gap: {scores:?}");
}

#[test]
fn rmt_feasibility_matches_variant_design() {
    let cfg = RmtConfig::default();
    // What runs in software (basic, d=2) cannot be placed...
    let basic = library::coco_basic(500_000, 2, library::FIVE_TUPLE_BITS);
    assert!(matches!(
        place(&basic, &cfg),
        Err(PlaceError::CircularDependency(_))
    ));
    // ...and what the P4 variant models places fine.
    let hw = library::coco_hardware(500_000, 2, library::FIVE_TUPLE_BITS);
    assert!(place(&hw, &cfg).is_ok());
}

#[test]
fn fpga_model_agrees_with_rmt_on_structure() {
    // The same program that fails RMT placement is the one that
    // serializes (II > 1) on FPGA — one dataflow property, two models.
    let cfg = FpgaConfig::default();
    let basic = synthesize(
        &library::coco_basic(500_000, 2, library::FIVE_TUPLE_BITS),
        &cfg,
    );
    let hw = synthesize(
        &library::coco_hardware(500_000, 2, library::FIVE_TUPLE_BITS),
        &cfg,
    );
    assert!(basic.initiation_interval > 1);
    assert_eq!(hw.initiation_interval, 1);
    assert!(hw.throughput_mpps > 4.0 * basic.throughput_mpps);
}

#[test]
fn sharded_datapath_matches_single_sketch_accuracy() {
    // Splitting the stream across OVS shards must not cost accuracy:
    // compare the merged shard table against a single same-total-memory
    // sketch on the top flows.
    let t = trace();
    let full = KeySpec::FIVE_TUPLE;
    let run = OvsSim::new(OvsConfig {
        threads: 4,
        mem_bytes: 256 * 1024,
        ..OvsConfig::default()
    })
    .run(&t);

    let mut single = cocosketch::BasicCocoSketch::with_memory(256 * 1024, 2, full.key_bytes(), 1);
    for p in &t.packets {
        single.update(&full.project(&p.flow), u64::from(p.weight));
    }

    let exact = truth::exact_counts(&t, &full);
    let mut top: Vec<_> = exact.iter().collect();
    top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(*v));
    for (key, &true_size) in top.iter().take(20) {
        let sharded = run.merged.get(*key).copied().unwrap_or(0) as f64;
        let single_est = single.query(key) as f64;
        let err_sharded = (sharded - true_size as f64).abs() / true_size as f64;
        let err_single = (single_est - true_size as f64).abs() / true_size as f64;
        assert!(
            err_sharded < err_single + 0.15,
            "sharding hurt flow {key:?}: {err_sharded} vs {err_single}"
        );
    }
}

#[test]
fn hardware_variant_queries_match_basic_on_big_flows() {
    let t = trace();
    let full = KeySpec::FIVE_TUPLE;
    let mut basic = cocosketch::BasicCocoSketch::with_memory(256 * 1024, 2, full.key_bytes(), 3);
    let mut hw = cocosketch::HardwareCocoSketch::with_memory(
        256 * 1024,
        2,
        full.key_bytes(),
        cocosketch::DivisionMode::Exact,
        3,
    );
    for p in &t.packets {
        let k = full.project(&p.flow);
        basic.update(&k, u64::from(p.weight));
        hw.update(&k, u64::from(p.weight));
    }
    let exact = truth::exact_counts(&t, &full);
    let mut top: Vec<_> = exact.iter().collect();
    top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(*v));
    for (key, &true_size) in top.iter().take(10) {
        for (name, est) in [("basic", basic.query(key)), ("hw", hw.query(key))] {
            let rel = (est as f64 - true_size as f64).abs() / true_size as f64;
            assert!(rel < 0.25, "{name} flow {key:?}: est {est} vs {true_size}");
        }
    }
}

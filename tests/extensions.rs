//! End-to-end coverage of the extension features (the paper's §8
//! future-work directions): sketch merging, NitroSketch-style
//! sampling, flow-table export, and distinct counting.

use cocosketch::{merge_all, snapshot, BasicCocoSketch, FlowTable, SampledCoco};
use distinct::{Hll, SpreaderSketch};
use sketches::Sketch;
use tasks::stats;
use traffic::gen::{generate, TraceConfig};
use traffic::{truth, KeySpec};

fn trace() -> traffic::Trace {
    generate(&TraceConfig {
        packets: 100_000,
        flows: 8_000,
        alpha: 1.12,
        ip_skew: 1.0,
        seed: 0xE47,
    })
}

#[test]
fn sharded_measure_merge_export_query() {
    // The full distributed pipeline: 4 shards measure disjoint slices,
    // merge sketch-level, export over the wire, query partial keys.
    let t = trace();
    let full = KeySpec::FIVE_TUPLE;
    let mut shards: Vec<BasicCocoSketch> = (0..4)
        .map(|_| BasicCocoSketch::with_memory(128 * 1024, 2, full.key_bytes(), 42))
        .collect();
    for (i, p) in t.packets.iter().enumerate() {
        shards[i % 4].update(&full.project(&p.flow), u64::from(p.weight));
    }
    let merged = merge_all(shards).expect("same dims + seed merge");
    assert_eq!(merged.total_value(), t.total_weight());

    let table = FlowTable::new(full, merged.records());
    let wire = snapshot::encode(&table);
    let table = snapshot::decode(&wire).expect("wire roundtrip");

    // Top source estimates survive the whole pipeline.
    let exact = truth::exact_counts(&t, &KeySpec::SRC_IP);
    let est = table.query_partial(&KeySpec::SRC_IP);
    let (big, &size) = exact.iter().max_by_key(|&(_, v)| v).unwrap();
    let got = est.get(big).copied().unwrap_or(0);
    let rel = (got as f64 - size as f64).abs() / size as f64;
    assert!(
        rel < 0.2,
        "top source {size} estimated {got} after merge+wire"
    );
}

#[test]
fn sampling_trades_updates_for_accuracy_not_correctness() {
    let t = trace();
    let full = KeySpec::FIVE_TUPLE;
    let inner = BasicCocoSketch::with_memory(256 * 1024, 2, full.key_bytes(), 9);
    let mut sampled = SampledCoco::new(inner, 0.2, 10);
    for p in &t.packets {
        sampled.update(&full.project(&p.flow), u64::from(p.weight));
    }
    // Heavy hitters are still found; estimates are within sampling noise.
    let exact = truth::exact_counts(&t, &full);
    let mut top: Vec<_> = exact.iter().collect();
    top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(*v));
    for (key, &size) in top.iter().take(5) {
        let got = sampled.query(key);
        let rel = (got as f64 - size as f64).abs() / size as f64;
        assert!(rel < 0.35, "flow {size} sampled-estimate {got}");
    }
}

#[test]
fn entropy_and_distribution_from_one_table() {
    let t = trace();
    let full = KeySpec::FIVE_TUPLE;
    let mut sk = BasicCocoSketch::with_memory(256 * 1024, 2, full.key_bytes(), 3);
    for p in &t.packets {
        sk.update(&full.project(&p.flow), u64::from(p.weight));
    }
    let table = FlowTable::new(full, sk.records());
    let est = stats::entropy(&table, &KeySpec::SRC_IP);
    let exact = stats::entropy_of_counts(&truth::exact_counts(&t, &KeySpec::SRC_IP));
    assert!((est - exact).abs() < 0.3, "entropy {est} vs {exact}");
    let bins = stats::size_distribution(&table, &full);
    assert!(!bins.is_empty());
    assert!(bins.iter().sum::<u64>() > 0);
}

#[test]
fn distinct_counting_complements_size_queries() {
    // SYN-flood style question: distinct sources (HLL) alongside the
    // size-based heavy hitters (CocoSketch) over the same trace.
    let t = trace();
    let mut hll = Hll::new(12, 7);
    for p in &t.packets {
        hll.add(&p.flow.src_ip.to_be_bytes());
    }
    let exact = truth::exact_counts(&t, &KeySpec::SRC_IP).len() as f64;
    let est = hll.estimate();
    let rel = (est - exact).abs() / exact;
    assert!(rel < 0.05, "distinct sources {est} vs {exact}");
}

#[test]
fn spreader_sketch_flags_scanner() {
    // Inject a scanner (one source, thousands of distinct dests) into
    // background traffic and detect it.
    let t = trace();
    let mut sk = SpreaderSketch::new(2, 128, 8, 5);
    let scanner = KeySpec::SRC_IP.project(&traffic::FiveTuple::new(0xDEAD_0001, 0, 0, 0, 6));
    for (i, p) in t.packets.iter().enumerate() {
        let src = KeySpec::SRC_IP.project(&p.flow);
        sk.update(&src, &p.flow.dst_ip.to_be_bytes());
        if i % 20 == 0 {
            sk.update(&scanner, &(i as u32).to_be_bytes());
        }
    }
    let spreaders = sk.spreaders(1_000.0);
    assert!(
        spreaders.iter().any(|(k, _)| *k == scanner),
        "scanner not detected: {spreaders:?}"
    );
}

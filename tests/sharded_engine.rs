//! Sharded-engine integration tests: conservation, reproducibility,
//! and merge accuracy across thread counts.
//!
//! These are the correctness half of the engine's contract (the bench
//! half lives in `cocosketch-bench`'s `throughput` binary): sharding a
//! stream across N workers and merging back must conserve total weight
//! exactly, be bit-reproducible for a fixed seed, and cost only a
//! bounded amount of per-flow accuracy versus a single shard.

use engine::{EngineConfig, ShardedCocoSketch};
use sketches::Sketch;
use traffic::presets::caida_like;
use traffic::truth;
use traffic::{KeyBytes, KeySpec};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn projected(scale: usize, seed: u64) -> Vec<(KeyBytes, u64)> {
    let t = caida_like(scale, seed);
    t.packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect()
}

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        buckets: 4096,
        ..EngineConfig::default()
    }
}

#[test]
fn conservation_holds_for_every_thread_count() {
    // Sum of merged bucket values == total stream weight, exactly:
    // every packet adds its weight to one bucket of one shard, and the
    // merge only adds values.
    let pkts = projected(400, 1);
    let total: u64 = pkts.iter().map(|&(_, w)| w).sum();
    for threads in THREAD_COUNTS {
        let run = ShardedCocoSketch::new(config(threads)).run(&pkts);
        assert_eq!(
            run.processed,
            pkts.len() as u64,
            "{threads} threads dropped packets"
        );
        assert_eq!(
            run.sketch.total_value(),
            total,
            "conservation violated at {threads} threads"
        );
        assert_eq!(run.per_shard.len(), threads);
        assert_eq!(run.per_shard.iter().sum::<u64>(), pkts.len() as u64);
    }
}

#[test]
fn fixed_seed_runs_are_bit_reproducible() {
    // Shard affinity is a pure hash, rings are FIFO, and shard sketches
    // are seed-deterministic, so thread scheduling cannot leak into the
    // result: two runs of the same config produce identical sketches.
    let pkts = projected(1_000, 2);
    for threads in THREAD_COUNTS {
        let engine = ShardedCocoSketch::new(config(threads));
        let mut a = engine.run(&pkts).sketch.records();
        let mut b = engine.run(&pkts).sketch.records();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{threads}-thread run not reproducible");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity check on the reproducibility test: the determinism comes
    // from the seed, not from the sketch ignoring its randomness.
    let pkts = projected(1_000, 3);
    let run = |seed| {
        let mut r = ShardedCocoSketch::new(EngineConfig {
            threads: 2,
            buckets: 64,
            seed,
            ..EngineConfig::default()
        })
        .run(&pkts)
        .sketch
        .records();
        r.sort_unstable();
        r
    };
    assert_ne!(run(10), run(11));
}

#[test]
fn merged_per_flow_error_tracks_single_shard() {
    // Sharding splits the same memory across N sketches and merges
    // back; per-flow estimates of heavy flows must stay close to the
    // single-shard estimates (the merge coin only perturbs buckets
    // where two shards collide).
    let trace = caida_like(400, 4);
    let pkts: Vec<(KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect();
    let exact = truth::exact_counts(&trace, &KeySpec::FIVE_TUPLE);
    let mut heavy: Vec<(&KeyBytes, &u64)> = exact.iter().collect();
    heavy.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(*v));
    heavy.truncate(50);

    let err_of = |threads: usize| {
        let run = ShardedCocoSketch::new(config(threads)).run(&pkts);
        let mut err = 0.0f64;
        for &(key, &truth) in &heavy {
            let est = run.sketch.query(key);
            err += (est as f64 - truth as f64).abs() / truth as f64;
        }
        err / heavy.len() as f64
    };

    let single = err_of(1);
    for threads in [2, 4, 8] {
        let sharded = err_of(threads);
        assert!(
            sharded <= single + 0.1,
            "{threads}-shard mean relative error {sharded:.3} drifted past \
             single-shard {single:.3} + 0.1"
        );
    }
}

#[test]
fn merged_sketch_is_queryable_like_any_sketch() {
    // The engine's output is a plain BasicCocoSketch: records() walks,
    // query() answers, memory accounting reports the shard size.
    let pkts = projected(2_000, 5);
    let run = ShardedCocoSketch::new(config(4)).run(&pkts);
    let records = run.sketch.records();
    assert!(!records.is_empty());
    let (key, value) = records[0];
    assert_eq!(run.sketch.query(&key), value);
    assert!(run.sketch.memory_bytes() > 0);
    assert!(run.mpps > 0.0);
}

//! End-to-end accuracy: the paper's headline effects, asserted.
//!
//! These are miniature versions of Figures 8–11 run at test scale:
//! they check the *shape* of the results (who wins, roughly by how
//! much), which must hold at any scale.

use hhh::hierarchy::src_hierarchy_bytes;
use tasks::{heavy_change, heavy_hitter, hhh_task, Algo};
use traffic::gen::{generate, heavy_change_pair, TraceConfig};
use traffic::{presets, KeySpec};

fn caida_small() -> traffic::Trace {
    presets::caida_like(200, 0xBEEF)
}

#[test]
fn figure8_shape_coco_flat_baselines_degrade() {
    let trace = caida_small();
    let mem = 256 * 1024;
    // CocoSketch: F1 at 6 keys within 2% of F1 at 1 key.
    let ours_1 = heavy_hitter::run(
        &trace,
        &KeySpec::PAPER_SIX[..1],
        KeySpec::FIVE_TUPLE,
        Algo::OURS,
        mem,
        1e-4,
        1,
    );
    let ours_6 = heavy_hitter::run(
        &trace,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        Algo::OURS,
        mem,
        1e-4,
        1,
    );
    assert!(ours_6.avg.f1 > 0.93, "coco 6-key F1 {}", ours_6.avg.f1);
    assert!(
        (ours_1.avg.f1 - ours_6.avg.f1).abs() < 0.05,
        "coco must be flat in keys: {} vs {}",
        ours_1.avg.f1,
        ours_6.avg.f1
    );

    // At 6 keys CocoSketch beats every per-key baseline. USS deploys
    // full-key like Ours (§7.1), so its *accuracy* is comparable at
    // this scale — its penalties are memory overhead (Figure 9 at
    // 200KB) and update cost (Figure 14) — allow it a small epsilon.
    for algo in Algo::BASELINES {
        let b6 = heavy_hitter::run(
            &trace,
            &KeySpec::PAPER_SIX,
            KeySpec::FIVE_TUPLE,
            algo,
            mem,
            1e-4,
            1,
        );
        let slack = if algo == Algo::Uss { 0.03 } else { 0.0 };
        assert!(
            ours_6.avg.f1 + slack >= b6.avg.f1,
            "{}: {} vs ours {}",
            algo.name(),
            b6.avg.f1,
            ours_6.avg.f1
        );
    }
}

#[test]
fn figure9_shape_more_memory_helps_coco_saturates_early() {
    let trace = caida_small();
    let small = heavy_hitter::run(
        &trace,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        Algo::OURS,
        100 * 1024,
        1e-4,
        1,
    );
    let large = heavy_hitter::run(
        &trace,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        Algo::OURS,
        400 * 1024,
        1e-4,
        1,
    );
    assert!(large.avg.f1 >= small.avg.f1 - 0.01);
    assert!(large.avg.f1 > 0.95, "coco at 400KB: {}", large.avg.f1);
}

#[test]
fn figure10_shape_heavy_change_detection() {
    let cfg = TraceConfig {
        packets: 120_000,
        flows: 8_000,
        alpha: 1.1,
        ip_skew: 1.0,
        seed: 3,
    };
    let (w1, w2) = heavy_change_pair(&cfg, 200, 0.6);
    let ours = heavy_change::run(
        &w1,
        &w2,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        Algo::OURS,
        256 * 1024,
        1e-4,
        1,
    );
    assert!(ours.avg.recall > 0.85, "recall {}", ours.avg.recall);
    assert!(ours.avg.precision > 0.7, "precision {}", ours.avg.precision);
}

#[test]
fn figure11_shape_coco_dominates_rhhh() {
    let trace = generate(&TraceConfig {
        packets: 150_000,
        flows: 10_000,
        alpha: 1.15,
        ip_skew: 1.1,
        seed: 4,
    });
    let hierarchy = src_hierarchy_bytes();
    let mem = 64 * 1024;
    let ours = hhh_task::run_coco(&trace, &hierarchy, KeySpec::SRC_IP, mem, 1e-3, 1);
    let rhhh = hhh_task::run_rhhh(&trace, &hierarchy, mem, 1e-3, 1);
    assert!(
        ours.avg.f1 > rhhh.avg.f1,
        "{} vs {}",
        ours.avg.f1,
        rhhh.avg.f1
    );
    assert!(
        ours.avg.are < rhhh.avg.are / 2.0,
        "ARE gap should be large: {} vs {}",
        ours.avg.are,
        rhhh.avg.are
    );
}

#[test]
fn mawi_preset_works_too() {
    let trace = presets::mawi_like(200, 5);
    let res = heavy_hitter::run(
        &trace,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        Algo::OURS,
        256 * 1024,
        1e-4,
        1,
    );
    assert!(res.avg.f1 > 0.9, "MAWI-like F1 {}", res.avg.f1);
}

//! Property-based invariants over the core data structures.
//!
//! Rather than fixed examples, these drive arbitrary packet streams
//! (random keys, weights, and orderings) and assert the structural
//! invariants the analysis relies on.

use cocosketch::{BasicCocoSketch, DivisionMode, FlowTable, HardwareCocoSketch};
use proptest::prelude::*;
use sketches::Sketch;
use traffic::{FiveTuple, KeyBytes, KeySpec};

/// Arbitrary 5-tuples from a compact space (forces collisions).
fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        0u32..64,
        0u32..64,
        0u16..8,
        0u16..8,
        prop_oneof![Just(6u8), Just(17u8)],
    )
        .prop_map(|(s, d, sp, dp, pr)| FiveTuple::new(s, d, sp, dp, pr))
}

/// Arbitrary packet streams.
fn arb_stream() -> impl Strategy<Value = Vec<(FiveTuple, u64)>> {
    prop::collection::vec((arb_flow(), 1u64..100), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn basic_coco_conserves_total_weight(stream in arb_stream(), d in 1usize..5, l in 1usize..32, seed in any::<u64>()) {
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(d, l, full.key_bytes(), seed);
        let mut total = 0u64;
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
            total += w;
        }
        prop_assert_eq!(s.total_value(), total);
        // Records are the non-empty buckets; their sum is the total too.
        let rec_sum: u64 = s.records().iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(rec_sum, total);
    }

    #[test]
    fn hardware_coco_conserves_per_array(stream in arb_stream(), d in 1usize..5, l in 1usize..32, seed in any::<u64>()) {
        let full = KeySpec::FIVE_TUPLE;
        let mut s = HardwareCocoSketch::new(d, l, full.key_bytes(), DivisionMode::Exact, seed);
        let mut total = 0u64;
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
            total += w;
        }
        for i in 0..d {
            prop_assert_eq!(s.array_total(i), total, "array {}", i);
        }
    }

    #[test]
    fn basic_coco_never_duplicates_keys(stream in arb_stream(), seed in any::<u64>()) {
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(3, 8, full.key_bytes(), seed);
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
        }
        let recs = s.records();
        let mut keys: Vec<KeyBytes> = recs.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate key in records");
    }

    #[test]
    fn partial_aggregation_conserves_total(stream in arb_stream(), seed in any::<u64>()) {
        // For any partial key, GROUP BY conserves the table total.
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(2, 16, full.key_bytes(), seed);
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
        }
        let table = FlowTable::new(full, s.records());
        for spec in KeySpec::PAPER_SIX {
            let sum: u64 = table.query_partial(&spec).values().sum();
            prop_assert_eq!(sum, table.total(), "partial key {}", spec);
        }
    }

    #[test]
    fn projection_composes(flow in arb_flow(), bits_a in 0u8..=32, bits_b in 0u8..=32) {
        // g_{A<-B}(g_B(x)) == g_A(x) whenever A ≺ B.
        let (short, long) = if bits_a <= bits_b { (bits_a, bits_b) } else { (bits_b, bits_a) };
        let a = KeySpec::src_prefix(short);
        let b = KeySpec::src_prefix(long);
        prop_assert!(a.is_partial_of(&b));
        let direct = a.project(&flow);
        let via_b = a.project_key(&b, &b.project(&flow));
        prop_assert_eq!(direct, via_b);
    }

    #[test]
    fn decode_inverts_project(flow in arb_flow()) {
        for spec in KeySpec::PAPER_SIX {
            let key = spec.project(&flow);
            let back = spec.decode(&key);
            // Re-projecting the decoded tuple gives the same key.
            prop_assert_eq!(spec.project(&back), key, "{}", spec);
        }
    }

    #[test]
    fn trace_io_roundtrips(stream in arb_stream()) {
        let trace = traffic::Trace {
            packets: stream
                .iter()
                .map(|&(flow, w)| traffic::Packet { flow, weight: w as u32 })
                .collect(),
        };
        let bytes = traffic::io::encode(&trace);
        let back = traffic::io::decode(&bytes).unwrap();
        prop_assert_eq!(trace.packets, back.packets);
    }

    #[test]
    fn queries_never_exceed_stream_total(stream in arb_stream(), seed in any::<u64>()) {
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(2, 8, full.key_bytes(), seed);
        let mut total = 0u64;
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
            total += w;
        }
        for (flow, _) in &stream {
            prop_assert!(s.query(&full.project(flow)) <= total);
        }
    }

    #[test]
    fn stream_summary_total_conserved_under_uss(stream in arb_stream(), cap in 1usize..32, seed in any::<u64>()) {
        let full = KeySpec::FIVE_TUPLE;
        let mut uss = sketches::UnbiasedSpaceSaving::new(cap, full.key_bytes(), seed);
        let mut total = 0u64;
        for (flow, w) in &stream {
            uss.update(&full.project(flow), *w);
            total += w;
        }
        let sum: u64 = uss.records().iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn approx_division_error_within_bound(value in 1u64..10_000_000) {
        let exact = (1u64 << 32) as f64 / value as f64;
        let approx = cocosketch::probability::approx_reciprocal(value) as f64;
        let rel = (approx - exact).abs() / exact;
        prop_assert!(rel <= 0.125 + 1e-9, "value {} rel {}", value, rel);
    }

    #[test]
    fn query_engine_paths_bit_identical(stream in arb_stream(), threads in 1usize..5, seed in any::<u64>()) {
        // Every query-plane path — single-pass multi-spec, parallel
        // scan, and the engine front door — must agree exactly (not
        // approximately) with one query_partial scan per spec, spec
        // list including the empty key.
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(2, 16, full.key_bytes(), seed);
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
        }
        let table = FlowTable::new(full, s.records());
        let mut specs = KeySpec::PAPER_SIX.to_vec();
        specs.push(KeySpec::EMPTY);
        let base: Vec<_> = specs.iter().map(|sp| table.query_partial(sp)).collect();
        prop_assert_eq!(&table.query_multi(&specs), &base, "single-pass");
        prop_assert_eq!(&table.query_multi_parallel(&specs, threads), &base, "parallel scan");
        prop_assert_eq!(&table.query_all(&specs), &base, "engine");
    }

    #[test]
    fn hierarchy_rollup_bit_identical(stream in arb_stream(), threads in 1usize..5, seed in any::<u64>()) {
        // The full 33-level source-prefix hierarchy, answered by
        // level-over-level rollup (hash-map and sorted-entry shapes),
        // must match 33 independent per-spec scans bit for bit.
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(2, 16, full.key_bytes(), seed);
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
        }
        let table = FlowTable::new(full, s.records());
        let hierarchy = hhh::hierarchy::src_hierarchy();
        let base: Vec<_> = hierarchy.iter().map(|sp| table.query_partial(sp)).collect();
        prop_assert_eq!(&table.query_rollup(&hierarchy), &base, "rollup (maps)");
        prop_assert_eq!(&table.query_rollup_threads(&hierarchy, threads), &base, "rollup (threads)");
        let entries = table.query_rollup_entries(&hierarchy, threads);
        for ((level, map), spec) in entries.iter().zip(&base).zip(&hierarchy) {
            prop_assert!(
                level.windows(2).all(|w| w[0].0.as_slice() < w[1].0.as_slice()),
                "level {} not strictly sorted", spec
            );
            prop_assert_eq!(level.len(), map.len(), "level {} cardinality", spec);
            for &(k, v) in level {
                prop_assert_eq!(map.get(&k), Some(&v), "level {} key {:?}", spec, k);
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_any_table(stream in arb_stream(), seed in any::<u64>()) {
        // The persistence format is lossless for any sketch-produced
        // table: full spec, row order, keys, and values all survive.
        let full = KeySpec::FIVE_TUPLE;
        let mut s = BasicCocoSketch::new(2, 16, full.key_bytes(), seed);
        for (flow, w) in &stream {
            s.update(&full.project(flow), *w);
        }
        let table = FlowTable::new(full, s.records());
        let back = cocosketch::snapshot::decode(&cocosketch::snapshot::encode(&table)).unwrap();
        prop_assert_eq!(back, table);
    }

    #[test]
    fn epoch_roundtrips_any_tables(
        stream in arb_stream(),
        id in any::<u64>(),
        packets in any::<u64>(),
        weight in any::<u64>(),
        n_tables in 0usize..4,
        seed in any::<u64>(),
    ) {
        // The epoch envelope is lossless around any number of tables
        // (zero included) and any accounting values.
        let full = KeySpec::FIVE_TUPLE;
        let tables: Vec<FlowTable> = (0..n_tables)
            .map(|i| {
                let mut s = BasicCocoSketch::new(2, 8, full.key_bytes(), seed + i as u64);
                for (flow, w) in &stream {
                    s.update(&full.project(flow), *w);
                }
                FlowTable::new(full, s.records())
            })
            .collect();
        let sealed = cocosketch::Epoch { id, packets, weight, tables };
        let back = cocosketch::epoch::decode(&cocosketch::epoch::encode(&sealed)).unwrap();
        prop_assert_eq!(back, sealed);
    }

    #[test]
    fn epoch_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes must decode to Ok or Err, never panic —
        // with or without a valid-looking magic prefix.
        let _ = cocosketch::epoch::decode(&bytes);
        let mut with_magic = b"CEP1".to_vec();
        with_magic.extend_from_slice(&bytes);
        let _ = cocosketch::epoch::decode(&with_magic);
        let mut with_table_magic = b"CFT1".to_vec();
        with_table_magic.extend_from_slice(&bytes);
        let _ = cocosketch::snapshot::decode(&with_table_magic);
    }
}

#[test]
fn query_engine_paths_on_empty_table() {
    // The degenerate inputs proptest's compact flow space never
    // produces: a table with no rows at all.
    let full = KeySpec::FIVE_TUPLE;
    let table = FlowTable::new(full, Vec::new());
    let mut specs = KeySpec::PAPER_SIX.to_vec();
    specs.push(KeySpec::EMPTY);
    let base: Vec<_> = specs.iter().map(|sp| table.query_partial(sp)).collect();
    assert!(base.iter().all(|m| m.is_empty()));
    assert_eq!(table.query_multi(&specs), base);
    assert_eq!(table.query_multi_parallel(&specs, 4), base);
    assert_eq!(table.query_all(&specs), base);
    let hierarchy = hhh::hierarchy::src_hierarchy();
    let empty_h: Vec<_> = hierarchy.iter().map(|sp| table.query_partial(sp)).collect();
    assert_eq!(table.query_rollup(&hierarchy), empty_h);
    assert!(table
        .query_all_entries(&hierarchy)
        .iter()
        .all(Vec::is_empty));
}

/// Arbitrary packet streams over explicit key widths: 13 bytes (the
/// SIMD fast-path width), plus 4 and 16 (generic scalar widths). Byte
/// values are drawn from a compact range so duplicate keys occur.
fn arb_wide_stream() -> impl Strategy<Value = (usize, Vec<(KeyBytes, u64)>)> {
    (
        prop_oneof![Just(4usize), Just(13usize), Just(16usize)],
        prop::collection::vec((prop::collection::vec(0u8..8, 16..17), 1u64..100), 0..400),
    )
        .prop_map(|(width, raw)| {
            let stream = raw
                .into_iter()
                .map(|(bytes, w)| (KeyBytes::new(&bytes[..width]), w))
                .collect();
            (width, stream)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simd_hash_lanes_match_scalar(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 13..14), 8..9),
        seed in any::<u32>(),
    ) {
        // The 8-lane kernel (AVX2 when compiled with `simd` on a
        // supporting host, the portable fallback otherwise) must be
        // bit-identical to the scalar hash, lane by lane.
        let mut words = hashkit::KeyWords8::zeroed();
        let mut expect = [0u32; 8];
        for (lane, bytes) in keys.iter().enumerate() {
            let key: &[u8; 13] = bytes.as_slice().try_into().unwrap();
            words.set_lane(lane, key);
            expect[lane] = hashkit::bob_hash_13(key, seed);
        }
        prop_assert_eq!(hashkit::bob_hash_13x8(&words, seed), expect);
    }

    #[test]
    fn batched_updates_match_per_packet(
        width_stream in arb_wide_stream(),
        d in 1usize..=10,
        l in 1usize..48,
        seed in any::<u64>(),
        split in 0usize..64,
    ) {
        // update_batch (vectorized + prefetched when d <= 8 and the
        // keys are 13 bytes; the chunked wide path otherwise) must end
        // in bucket state bit-identical to per-packet update — the
        // same buckets, values, and RNG draw order — for any stream,
        // any split into batches (empty and non-multiple-of-8
        // included), and any (d, l).
        let (width, stream) = width_stream;
        let mut scalar = BasicCocoSketch::new(d, l, width, seed);
        let mut batched = BasicCocoSketch::new(d, l, width, seed);
        for (k, w) in &stream {
            scalar.update(k, *w);
        }
        let cut = split.min(stream.len());
        let (head, tail) = stream.split_at(cut);
        batched.update_batch(head);
        batched.update_batch(tail);
        prop_assert_eq!(batched.total_value(), scalar.total_value());
        let mut want = scalar.records();
        let mut got = batched.records();
        want.sort();
        got.sort();
        prop_assert_eq!(got, want);
    }
}

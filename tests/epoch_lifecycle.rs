//! Cross-crate integration of the epoch lifecycle: a continuously
//! ingesting engine session seals windows into epochs, epochs persist
//! through the versioned envelope, and the windowed tasks (heavy
//! change) read adjacent sealed epochs — core, engine, and tasks
//! working the protocol end to end.

use cocosketch::{epoch, Epoch, EpochStore};
use engine::{EngineConfig, ShardedCocoSketch};
use sketches::Sketch;
use tasks::heavy_change;
use tasks::{Algo, Pipeline};
use traffic::gen::{heavy_change_pair, TraceConfig};
use traffic::presets::caida_like;
use traffic::{KeyBytes, KeySpec};

fn projected(scale: usize, seed: u64) -> Vec<(KeyBytes, u64)> {
    let t = caida_like(scale, seed);
    t.packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect()
}

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        buckets: 2048,
        ..EngineConfig::default()
    }
}

/// A session rotating every W packets must partition the stream into
/// epochs that survive the persistence envelope bit-for-bit and land
/// densely in an [`EpochStore`], for every thread count.
#[test]
fn session_epochs_roundtrip_through_store_and_persistence() {
    let pkts = projected(300, 11);
    let total: u64 = pkts.iter().map(|&(_, w)| w).sum();
    let window = pkts.len() / 3 + 1;
    let full = KeySpec::FIVE_TUPLE;
    for threads in [1, 2, 4] {
        let mut session = ShardedCocoSketch::new(config(threads)).session();
        let mut store = EpochStore::new();
        for chunk in pkts.chunks(window) {
            session.push_batch(chunk);
            store.push(session.rotate_collect().to_epoch(full));
        }
        let tail = session.finish();
        assert_eq!(tail.packets, 0, "every chunk was sealed");
        assert_eq!(store.len(), 3, "{threads} threads");

        let (sealed_packets, sealed_weight) = store
            .iter()
            .fold((0, 0), |(p, w), e| (p + e.packets, w + e.weight));
        assert_eq!(sealed_packets, pkts.len() as u64);
        assert_eq!(sealed_weight, total, "{threads} threads lost weight");

        for sealed in store.iter() {
            // Persistence is lossless: envelope -> bytes -> envelope.
            let decoded = epoch::decode(&epoch::encode(sealed)).unwrap();
            assert_eq!(&decoded, sealed, "epoch {} roundtrip", sealed.id);
            // Each epoch's table conserves exactly its window's weight.
            assert_eq!(sealed.primary().total(), sealed.weight);
        }
        // Dense ids make adjacency total over the sealed range.
        for earlier in 0..store.len() as u64 - 1 {
            let (a, b) = store.adjacent(earlier).unwrap();
            assert_eq!((a.id, b.id), (earlier, earlier + 1));
        }
    }
}

/// Epoch k of a rotating session must equal a one-shot engine run over
/// only that window's packets — rotation adds lifecycle, not noise.
#[test]
fn rotated_epochs_match_one_shot_runs_per_window() {
    let pkts = projected(250, 23);
    let window = pkts.len() / 2 + 1;
    for threads in [1, 3] {
        let engine = ShardedCocoSketch::new(config(threads));
        let mut session = engine.session();
        for (k, chunk) in pkts.chunks(window).enumerate() {
            session.push_batch(chunk);
            let sealed = session.rotate_collect();
            let one_shot = engine.run(chunk);
            assert_eq!(
                sealed.sketch.records(),
                one_shot.sketch.records(),
                "epoch {k} at {threads} threads diverged from one-shot"
            );
        }
        session.finish();
    }
}

/// The tasks layer drives one pipeline across both heavy-change
/// windows; its sealed epochs must score identically to the historical
/// two-pipeline deployment for full-key and per-key strategies alike.
#[test]
fn rotating_heavy_change_matches_two_pipelines_across_algos() {
    let (w1, w2) = heavy_change_pair(
        &TraceConfig {
            packets: 30_000,
            flows: 2_000,
            alpha: 1.15,
            ..TraceConfig::default()
        },
        40,
        0.7,
    );
    for (algo, seed) in [
        (Algo::OURS, 3u64),
        (Algo::SpaceSaving, 4),
        (Algo::Elastic, 5),
    ] {
        let specs = [KeySpec::SRC_IP, KeySpec::SRC_DST];
        let rotated = heavy_change::run(
            &w1,
            &w2,
            &specs,
            KeySpec::FIVE_TUPLE,
            algo,
            128 * 1024,
            1e-3,
            seed,
        );
        let two = heavy_change::run_two_pipelines(
            &w1,
            &w2,
            &specs,
            KeySpec::FIVE_TUPLE,
            algo,
            128 * 1024,
            1e-3,
            seed,
        );
        assert_eq!(rotated.per_key, two.per_key, "{algo:?}");
    }
}

/// Rotation across more than two windows: every adjacent pair of
/// sealed epochs is independently diffable, and a planted traffic
/// change shows up in exactly the boundary where it was planted.
#[test]
fn multi_window_diffs_localize_a_planted_change() {
    let (quiet, changed) = heavy_change_pair(
        &TraceConfig {
            packets: 25_000,
            flows: 1_500,
            alpha: 1.2,
            ..TraceConfig::default()
        },
        30,
        0.8,
    );
    // Windows: quiet, quiet, changed — the change sits at boundary 1→2.
    let mut pipe = Pipeline::deploy(
        Algo::OURS,
        &[KeySpec::FIVE_TUPLE],
        KeySpec::FIVE_TUPLE,
        128 * 1024,
        17,
    );
    pipe.run(&quiet);
    pipe.rotate();
    pipe.run(&quiet);
    pipe.rotate();
    pipe.run(&changed);
    pipe.rotate();

    let magnitude = |earlier: u64| -> u64 {
        let est_a = &pipe.sealed_estimates(earlier).unwrap()[0];
        let est_b = &pipe.sealed_estimates(earlier + 1).unwrap()[0];
        let mut diffs: Vec<u64> = heavy_change::diff_table(est_a, est_b)
            .values()
            .copied()
            .collect();
        diffs.sort_unstable_by(|a, b| b.cmp(a));
        // Sum of the top-30 |Δ| — the planted changes dominate it.
        diffs.iter().take(30).sum()
    };
    let steady = magnitude(0);
    let change = magnitude(1);
    assert!(
        change > steady * 3,
        "planted change not localized: boundary 0->1 magnitude {steady}, 1->2 {change}"
    );

    let (a, b) = pipe.store().adjacent(1).unwrap();
    assert_eq!((a.id, b.id), (1, 2));
    assert_eq!(pipe.store().len(), 3);
}

/// An [`Epoch`] built by hand persists like an engine-built one —
/// the envelope does not depend on who sealed it (multi-table per-key
/// epochs included).
#[test]
fn per_key_epochs_roundtrip_with_many_tables() {
    let t = caida_like(150, 31);
    let mut pipe = Pipeline::deploy(
        Algo::CmHeap,
        &[KeySpec::SRC_IP, KeySpec::DST_IP, KeySpec::SRC_DST],
        KeySpec::FIVE_TUPLE,
        96 * 1024,
        41,
    );
    pipe.run(&t);
    let id = pipe.rotate();
    let sealed: &Epoch = pipe.sealed(id).unwrap();
    assert_eq!(sealed.tables.len(), 3, "one table per measured key");
    let decoded = epoch::decode(&epoch::encode(sealed)).unwrap();
    assert_eq!(&decoded, sealed);
}

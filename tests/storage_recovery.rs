//! Crash-recovery and durability integration of the epoch segment
//! store: a torn tail quarantines instead of panicking (at *every*
//! truncation boundary), adoption heals the crash window between the
//! segment rename and the manifest rename, eviction spills epochs that
//! reload bit-identically, compaction conserves weight per key exactly,
//! and the rollup cache answers reloaded epochs bit-identical to cold
//! scans. The final test drives the same compaction protocol through
//! `crashsim`, re-running real recovery at every enumerable crash
//! point of the commit-before-delete window.

use cocosketch::segment::{CompactionPolicy, EpochDir, SharedEpochDir, MANIFEST_NAME};
use cocosketch::{epoch, DirReader, Epoch, EpochStore, FlowTable, RollupCache};
use engine::{EngineConfig, ShardedCocoSketch};
use hashkit::FastMap;
use traffic::presets::caida_like;
use traffic::{FiveTuple, KeyBytes, KeySpec};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cocosketch-recovery-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small synthetic epoch whose table is deterministic in `id`.
fn small_epoch(id: u64, rows: u32) -> Epoch {
    let full = KeySpec::FIVE_TUPLE;
    let entries: Vec<(KeyBytes, u64)> = (0..rows)
        .map(|i| {
            let flow = FiveTuple::new(i % 53 + id as u32, i * 7, 80, 443, 6);
            (full.project(&flow), u64::from(i) + id + 1)
        })
        .collect();
    let table = FlowTable::new(full, entries);
    let weight = table.total();
    Epoch {
        id,
        packets: u64::from(rows),
        weight,
        tables: vec![table],
    }
}

/// Truncating the tail segment at every byte boundary must reopen
/// without a panic, quarantine the torn file, and keep serving the
/// prefix bit-identically.
#[test]
fn truncated_tail_quarantines_and_serves_the_prefix() {
    let root = tmp("torn");
    let (mut dir, _) = EpochDir::open(&root).unwrap();
    for id in 0..3 {
        dir.append(&small_epoch(id, 40)).unwrap();
    }
    let prefix: Vec<Vec<u8>> = (0..2)
        .map(|id| epoch::encode(&dir.read_epoch(id).unwrap().unwrap()))
        .collect();
    let tail_path = root.join(dir.segments()[2].file_name());
    let tail_bytes = std::fs::read(&tail_path).unwrap();
    let manifest = std::fs::read(root.join(MANIFEST_NAME)).unwrap();
    drop(dir);

    for cut in 0..tail_bytes.len() {
        std::fs::write(&tail_path, &tail_bytes[..cut]).unwrap();
        std::fs::write(root.join(MANIFEST_NAME), &manifest).unwrap();
        let (reopened, report) =
            EpochDir::open(&root).unwrap_or_else(|e| panic!("cut {cut}: reopen failed: {e}"));
        assert_eq!(report.quarantined.len(), 1, "cut {cut}");
        assert!(
            report.quarantined[0].to_string_lossy().ends_with(".torn"),
            "cut {cut}: {:?}",
            report.quarantined
        );
        assert!(!tail_path.exists(), "cut {cut}: torn tail renamed away");
        assert_eq!(reopened.len(), 2, "cut {cut}: prefix survives");
        for (id, want) in prefix.iter().enumerate() {
            let got = reopened.read_epoch(id as u64).unwrap().unwrap();
            assert_eq!(&epoch::encode(&got), want, "cut {cut}: epoch {id}");
        }
    }

    // The healed directory accepts the lost epoch again...
    let (mut healed, _) = EpochDir::open(&root).unwrap();
    healed.append(&small_epoch(2, 40)).unwrap();
    assert_eq!(healed.len(), 3);
    drop(healed);

    // ...and restoring the original bytes restores the full history
    // (the leftover .torn file is inert).
    std::fs::write(&tail_path, &tail_bytes).unwrap();
    std::fs::write(root.join(MANIFEST_NAME), &manifest).unwrap();
    let (restored, report) = EpochDir::open(&root).unwrap();
    assert!(report.quarantined.is_empty(), "{report:?}");
    assert_eq!(restored.len(), 3);
    std::fs::remove_dir_all(&root).ok();
}

/// A crash after the segment rename but before the manifest rename
/// leaves exactly the next dense id unlisted; reopen adopts it.
#[test]
fn adoption_heals_a_crash_between_segment_and_manifest_rename() {
    let root = tmp("adopt");
    let (mut dir, _) = EpochDir::open(&root).unwrap();
    dir.append(&small_epoch(0, 30)).unwrap();
    dir.append(&small_epoch(1, 30)).unwrap();
    let stale_manifest = std::fs::read(root.join(MANIFEST_NAME)).unwrap();
    let third = small_epoch(2, 30);
    dir.append(&third).unwrap();
    drop(dir);

    // Roll the manifest back to before the third append: the segment
    // file is durable, its directory entry is not.
    std::fs::write(root.join(MANIFEST_NAME), &stale_manifest).unwrap();
    let (reopened, report) = EpochDir::open(&root).unwrap();
    assert_eq!(report.adopted, 1, "{report:?}");
    assert!(report.quarantined.is_empty());
    assert_eq!(reopened.len(), 3);
    assert_eq!(
        epoch::encode(&reopened.read_epoch(2).unwrap().unwrap()),
        epoch::encode(&third)
    );
    drop(reopened);

    // Adoption rewrote the manifest: a second reopen finds nothing new.
    let (_, report) = EpochDir::open(&root).unwrap();
    assert_eq!(report.adopted, 0);
    std::fs::remove_dir_all(&root).ok();
}

/// Engine-sealed epochs pushed through an [`EpochStore`] with a spill
/// sink reload from disk bit-identical to the in-memory seal, for
/// every evicted id.
#[test]
fn eviction_spills_epochs_that_reload_bit_identically() {
    let root = tmp("spill");
    let trace = caida_like(400, 9);
    let pkts: Vec<(KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect();
    let window = pkts.len() / 4 + 1;
    let full = KeySpec::FIVE_TUPLE;
    let config = EngineConfig {
        threads: 2,
        buckets: 2048,
        ..EngineConfig::default()
    };
    let mut session = ShardedCocoSketch::new(config).session();
    let (shared, _) = SharedEpochDir::open(&root).unwrap();
    let mut store = EpochStore::new();
    store.attach_spill(Box::new(shared.clone()));

    let mut held: Vec<Vec<u8>> = Vec::new();
    for chunk in pkts.chunks(window) {
        session.push_batch(chunk);
        let sealed = session.rotate_collect().to_epoch(full);
        held.push(epoch::encode(&sealed));
        store.push(sealed);
        store.evict_to(1);
    }
    assert!(store.take_spill_error().is_none());
    assert_eq!(store.len(), 1, "retention capped to one resident epoch");

    let reader = DirReader::new(&root);
    let newest = held.len() as u64 - 1;
    for (id, want) in held.iter().enumerate().take(held.len() - 1) {
        let got = reader.read_epoch(id as u64).unwrap().unwrap();
        assert_eq!(&epoch::encode(&got), want, "epoch {id} diverged on disk");
    }
    // The resident tail was never evicted, so nothing forced it out.
    assert!(reader.read_epoch(newest).unwrap().is_none());
    assert!(store.iter().any(|e| e.id == newest));
    std::fs::remove_dir_all(&root).ok();
}

/// Compaction merges aligned runs into buckets while conserving the
/// packet count, the total weight, and every per-key sum exactly.
#[test]
fn compaction_conserves_weight_and_per_key_sums_exactly() {
    let root = tmp("compact");
    let (mut dir, _) = EpochDir::open(&root).unwrap();
    let epochs: Vec<Epoch> = (0..7).map(|id| small_epoch(id, 60)).collect();
    for e in &epochs {
        dir.append(e).unwrap();
    }
    let total_weight: u64 = epochs.iter().map(|e| e.weight).sum();
    let total_packets: u64 = epochs.iter().map(|e| e.packets).sum();

    // keep_recent 1 puts ids 0..=5 at or below the horizon: two
    // aligned triples merge, epoch 6 stays single.
    let report = dir
        .compact(&CompactionPolicy {
            bucket: 3,
            keep_recent: 1,
        })
        .unwrap();
    assert_eq!((report.buckets, report.merged_epochs), (2, 6));
    assert_eq!(dir.len(), 3);

    let all: Vec<Epoch> = dir.scan().collect::<std::io::Result<_>>().unwrap();
    assert_eq!(all.iter().map(|e| e.weight).sum::<u64>(), total_weight);
    assert_eq!(all.iter().map(|e| e.packets).sum::<u64>(), total_packets);

    // Per-key conservation on the first bucket against a manual sum of
    // its member epochs.
    let mut want: FastMap<KeyBytes, u64> = FastMap::default();
    for e in &epochs[..3] {
        for &(k, v) in e.primary().rows() {
            *want.entry(k).or_insert(0) += v;
        }
    }
    let rows = all[0].primary().rows();
    assert_eq!(rows.len(), want.len());
    for &(k, v) in rows {
        assert_eq!(want.get(&k), Some(&v));
    }

    // A compacted directory reopens clean.
    drop(dir);
    let (reopened, report) = EpochDir::open(&root).unwrap();
    assert!(
        report.quarantined.is_empty() && report.adopted == 0,
        "{report:?}"
    );
    assert_eq!(reopened.len(), 3);
    std::fs::remove_dir_all(&root).ok();
}

/// Rollup-cache hits over reloaded (disk-round-tripped) epochs are
/// bit-identical to cold scans, and the counters track exactly.
#[test]
fn rollup_cache_hits_are_bit_identical_on_reloaded_epochs() {
    let root = tmp("rollup");
    let (mut dir, _) = EpochDir::open(&root).unwrap();
    for id in 0..3 {
        dir.append(&small_epoch(id, 80)).unwrap();
    }
    let reader = DirReader::new(&root);
    let mut cache = RollupCache::new(4);
    let specs = [KeySpec::SRC_IP, KeySpec::src_prefix(16), KeySpec::EMPTY];
    for id in 0..3 {
        let e = reader.read_epoch(id).unwrap().unwrap();
        let cold = e.primary().query_all_entries(&specs);
        let miss = cache.query(&e, &specs);
        let hit = cache.query(&e, &specs);
        for ((m, h), c) in miss.iter().zip(&hit).zip(&cold) {
            assert_eq!(m.as_ref(), c, "epoch {id}: miss path");
            assert_eq!(h.as_ref(), c, "epoch {id}: hit path");
        }
    }
    // Per epoch: three misses, then three hits before FIFO eviction
    // (capacity 4) can touch the entries just written.
    assert_eq!(cache.stats().misses, 9);
    assert_eq!(cache.stats().hits, 9);
    assert_eq!(cache.len(), 4);
    std::fs::remove_dir_all(&root).ok();
}

/// Crash-during-compaction, exhaustively: run the real append +
/// compact protocol on crashsim's fault-injecting Vfs, then enumerate
/// every crash schedule (each op prefix, each subset of un-fsynced
/// writes dropped, the final write torn at block granularity) and
/// re-run real `EpochDir::open` recovery at each one. The
/// commit-before-delete window — bucket renamed, manifest flipped,
/// inputs not yet unlinked — must never lose a covered id, and every
/// recovered segment must decode bit-identical to the offered bytes.
#[test]
fn compaction_commit_window_survives_every_crash_schedule() {
    let fs = crashsim::SimFs::new();
    let root = std::path::Path::new("/sim/storage-recovery-compact");
    let (mut dir, _) = EpochDir::open_on(fs.clone(), root).unwrap();
    let mut check = crashsim::DurabilityCheck::default();
    for id in 0..6 {
        let e = small_epoch(id, 40);
        check.offer(&e);
        dir.append(&e).unwrap();
        check.ack(fs.mark(), id);
    }
    let report = dir
        .compact(&CompactionPolicy {
            bucket: 3,
            keep_recent: 1,
        })
        .unwrap();
    assert!(report.buckets > 0, "workload must actually compact");
    // Everything survived the live run; after the compaction commit,
    // no crash schedule may lose any of it either.
    let mark = fs.mark();
    for id in 0..6 {
        check.ack(mark, id);
    }
    let crashes = crashsim::enumerate(&fs, root, &check, &crashsim::CrashOptions::default());
    eprintln!(
        "crashsim: storage_recovery compaction window explored {} schedules",
        crashes.schedules
    );
    assert!(crashes.clean(), "{:#?}", crashes.violations);
    assert!(crashes.schedules > 50, "{}", crashes.schedules);
}

//! Statistical checks of the paper's theorems (§5, Appendix A).
//!
//! Each test runs many independently seeded sketches and verifies the
//! claimed expectation/tail property with generous slack (they are
//! statistical statements; the seeds are fixed so the tests are
//! deterministic).

use cocosketch::{BasicCocoSketch, DivisionMode, HardwareCocoSketch};
use hashkit::XorShift64Star;
use sketches::Sketch;
use traffic::KeyBytes;

fn k(i: u32) -> KeyBytes {
    KeyBytes::new(&i.to_be_bytes())
}

/// Drive one sketch with a fixed interleaving: the watched flow with
/// `watched` packets amid `churn` times as many noise packets.
fn drive(sketch: &mut dyn Sketch, watched: u64, churn: u64, noise_flows: u32, seed: u64) {
    let mut rng = XorShift64Star::new(seed);
    for _ in 0..watched {
        sketch.update(&k(0), 1);
        for _ in 0..churn {
            sketch.update(&k(1 + (rng.next_u64() % u64::from(noise_flows)) as u32), 1);
        }
    }
}

#[test]
fn lemma3_basic_cocosketch_is_unbiased() {
    // E[f̂(e)] = f(e) for the basic sketch: average over many runs.
    let watched = 50u64;
    let trials = 500u32;
    let mut acc = 0f64;
    for t in 0..trials {
        let mut s = BasicCocoSketch::new(2, 16, 4, 10_000 + u64::from(t));
        drive(&mut s, watched, 12, 2_000, 20_000 + u64::from(t));
        acc += s.query(&k(0)) as f64;
    }
    let mean = acc / f64::from(trials);
    let rel = (mean - watched as f64).abs() / watched as f64;
    assert!(rel < 0.12, "mean {mean} vs true {watched}");
}

#[test]
fn lemma4_hardware_cocosketch_is_unbiased_per_array() {
    let watched = 50u64;
    let trials = 500u32;
    let mut acc = 0f64;
    for t in 0..trials {
        // d = 1 isolates the per-array estimator of Lemma 4.
        let mut s = HardwareCocoSketch::new(1, 16, 4, DivisionMode::Exact, 30_000 + u64::from(t));
        drive(&mut s, watched, 12, 2_000, 40_000 + u64::from(t));
        acc += s.query(&k(0)) as f64;
    }
    let mean = acc / f64::from(trials);
    let rel = (mean - watched as f64).abs() / watched as f64;
    assert!(rel < 0.12, "mean {mean} vs true {watched}");
}

#[test]
fn theorem3_error_bound_tail() {
    // P[R(e) >= eps * sqrt(f̄(e)/f(e))] <= delta with l = 3/eps^2 and
    // d = O(log 1/delta). Instantiate: eps = 1, l = 3, d = 4; then for
    // any flow the probability that the relative error exceeds
    // sqrt(f̄/f) should be small (delta ~ (1/3)^(d/2) by the proof's
    // Chernoff step; we assert < 0.2 with slack).
    let trials = 400u32;
    let watched = 200u64;
    let churn = 4u64;
    let noise_flows = 50u32;
    let mut violations = 0u32;
    for t in 0..trials {
        let mut s = HardwareCocoSketch::new(4, 3, 4, DivisionMode::Exact, 70_000 + u64::from(t));
        drive(&mut s, watched, churn, noise_flows, 90_000 + u64::from(t));
        let est = s.query(&k(0)) as f64;
        let f_true = watched as f64;
        let f_rest = (watched * churn) as f64;
        let r = (est - f_true).abs() / f_true;
        let bound = (f_rest / f_true).sqrt(); // eps = 1
        if r >= bound {
            violations += 1;
        }
    }
    let rate = f64::from(violations) / f64::from(trials);
    assert!(rate < 0.2, "tail violation rate {rate}");
}

#[test]
fn theorem4_recall_lower_bound() {
    // P[Z(e) = 1] >= 1 - (1 + l*f(e)/f̄(e))^{-d}. The paper's example:
    // a flow with 1% of traffic, d = 2, l = 900 gives >= 99% recall.
    // Test a scaled version: l = 90, flow share 1/11 of the rest
    // => bound = 1 - (1 + 90/10)^{-2} = 0.99.
    let trials = 400u32;
    let mut recorded = 0u32;
    for t in 0..trials {
        let mut s = HardwareCocoSketch::new(2, 90, 4, DivisionMode::Exact, 110_000 + u64::from(t));
        // watched flow: 100 packets; rest: 1000 packets over 500 flows.
        drive(&mut s, 100, 10, 500, 130_000 + u64::from(t));
        if s.query(&k(0)) > 0 {
            recorded += 1;
        }
    }
    let recall = f64::from(recorded) / f64::from(trials);
    assert!(recall >= 0.97, "recall {recall} below the Theorem 4 bound");
}

#[test]
fn theorem1_replacement_probability_is_w_over_total() {
    // The variance-minimizing update keeps P[key replaced] = w/(f+w).
    // Feed one bucket (d=1, l=1): first flow installs 60, challenger
    // sends 20 in one weighted packet; replacement must occur with
    // probability 20/80 = 0.25.
    let trials = 4_000u32;
    let mut replaced = 0u32;
    for t in 0..trials {
        let mut s = BasicCocoSketch::new(1, 1, 4, 150_000 + u64::from(t));
        s.update(&k(1), 60);
        s.update(&k(2), 20);
        // Whoever owns the bucket now has the whole 80.
        if s.query(&k(2)) == 80 {
            replaced += 1;
        } else {
            assert_eq!(s.query(&k(1)), 80, "value must always become 80");
        }
    }
    let rate = f64::from(replaced) / f64::from(trials);
    assert!(
        (rate - 0.25).abs() < 0.025,
        "replacement rate {rate} vs 0.25"
    );
}

#[test]
fn theorem2_matching_key_adds_no_variance() {
    // A tracked flow's update is deterministic: value grows by w,
    // key never changes — repeated over many random histories.
    for t in 0..200u64 {
        let mut s = BasicCocoSketch::new(2, 8, 4, t);
        s.update(&k(7), 5);
        let before = s.query(&k(7));
        s.update(&k(7), 3);
        assert_eq!(s.query(&k(7)), before + 3);
    }
}

//! Every deployment strategy, end to end, on one workload.

use tasks::{heavy_hitter, timing, Algo, Pipeline};
use traffic::gen::{generate, TraceConfig};
use traffic::{truth, KeySpec};

fn trace() -> traffic::Trace {
    generate(&TraceConfig {
        packets: 80_000,
        flows: 6_000,
        alpha: 1.12,
        ip_skew: 1.0,
        seed: 0xABCD,
    })
}

#[test]
fn every_algorithm_completes_the_six_key_task() {
    let t = trace();
    let mut algos = vec![Algo::OURS];
    algos.extend(Algo::BASELINES);
    for algo in algos {
        let res = heavy_hitter::run(
            &t,
            &KeySpec::PAPER_SIX,
            KeySpec::FIVE_TUPLE,
            algo,
            256 * 1024,
            1e-3,
            1,
        );
        assert_eq!(res.per_key.len(), 6, "{}", algo.name());
        for (i, acc) in res.per_key.iter().enumerate() {
            assert!(
                acc.recall >= 0.0 && acc.recall <= 1.0 && acc.precision <= 1.0,
                "{} key {i}: {acc:?}",
                algo.name()
            );
        }
        // Nothing should be catastrophically broken on this easy trace.
        assert!(res.avg.f1 > 0.1, "{}: F1 {}", algo.name(), res.avg.f1);
    }
}

#[test]
fn rhhh_pipeline_scales_estimates_correctly() {
    let t = trace();
    let specs = vec![
        KeySpec::src_prefix(32),
        KeySpec::src_prefix(16),
        KeySpec::EMPTY,
    ];
    let mut pipe = Pipeline::deploy_rhhh(&specs, 128 * 1024, 5);
    pipe.run(&t);
    let est = pipe.estimates();
    // The EMPTY level has exactly one flow: the whole stream. The
    // rescaled estimate must be close to the true total.
    let total_est: u64 = est[2].values().copied().sum();
    let total_true = t.total_weight();
    let rel = (total_est as f64 - total_true as f64).abs() / total_true as f64;
    assert!(rel < 0.1, "empty-key estimate {total_est} vs {total_true}");
}

#[test]
fn coco_pipeline_memory_is_key_count_independent() {
    let one = Pipeline::deploy(
        Algo::OURS,
        &KeySpec::PAPER_SIX[..1],
        KeySpec::FIVE_TUPLE,
        500_000,
        1,
    );
    let six = Pipeline::deploy(
        Algo::OURS,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        500_000,
        1,
    );
    assert_eq!(one.memory_bytes(), six.memory_bytes());
}

#[test]
fn throughput_probe_runs_for_every_strategy() {
    let t = trace();
    for algo in [Algo::OURS, Algo::CmHeap, Algo::Uss] {
        let timing = timing::measure_throughput(
            || {
                Pipeline::deploy(
                    algo,
                    &KeySpec::PAPER_SIX,
                    KeySpec::FIVE_TUPLE,
                    128 * 1024,
                    1,
                )
            },
            &t,
            1,
        );
        assert!(timing.mpps > 0.0, "{}", algo.name());
    }
}

#[test]
fn estimates_cover_true_heavy_hitters() {
    let t = trace();
    let mut pipe = Pipeline::deploy(
        Algo::OURS,
        &KeySpec::PAPER_SIX,
        KeySpec::FIVE_TUPLE,
        256 * 1024,
        2,
    );
    pipe.run(&t);
    let estimates = pipe.estimates();
    let threshold = t.total_weight() / 500;
    for (spec, est) in KeySpec::PAPER_SIX.iter().zip(&estimates) {
        let exact = truth::exact_counts(&t, spec);
        let heavy = truth::heavy_hitters(&exact, threshold);
        let found = heavy
            .iter()
            .filter(|k| est.get(*k).copied().unwrap_or(0) >= threshold)
            .count();
        let recall = found as f64 / heavy.len().max(1) as f64;
        assert!(recall > 0.9, "{spec}: recall {recall}");
    }
}

//! Why the hardware-friendly variant exists: pipeline feasibility.
//!
//! Runs the RMT placement model over the naive (basic) CocoSketch, the
//! hardware-friendly CocoSketch, and the single-key baselines, showing
//! the circular-dependency rejection, the per-stage layout, and the
//! FPGA synthesis estimates — the §3.3/§7.4 story end to end.
//!
//! Run with: `cargo run --release -p cocosketch-bench --example hardware_portability`

use hwsim::fpga::{synthesize, FpgaConfig};
use hwsim::program::library;
use hwsim::rmt::{fit_count, place, ResourceUsage, RmtConfig};

fn main() {
    let rmt = RmtConfig::default();
    let fpga = FpgaConfig::default();
    const MEM: usize = 500 * 1024;
    let programs = [
        library::coco_basic(MEM, 2, library::FIVE_TUPLE_BITS),
        library::coco_hardware(MEM, 2, library::FIVE_TUPLE_BITS),
        library::count_min(MEM, 3, library::FIVE_TUPLE_BITS),
        library::elastic(MEM, library::FIVE_TUPLE_BITS),
    ];

    println!("== RMT (Tofino-class, {} stages) ==", rmt.stages);
    for p in &programs {
        print!("{:<24}", p.name);
        match place(p, &rmt) {
            Ok(placement) => {
                let usage = ResourceUsage::of(p);
                let (bottleneck, frac) = usage.bottleneck(&rmt);
                println!(
                    "places in {} stages; fits {}x; bottleneck {} at {:.1}%",
                    placement.stages_used,
                    fit_count(p, &rmt),
                    bottleneck,
                    frac * 100.0
                );
            }
            Err(e) => println!("REJECTED: {e}"),
        }
    }

    println!("\n== FPGA (Alveo U280-class) ==");
    for p in &programs {
        let r = synthesize(p, &fpga);
        println!(
            "{:<24} II={} clock={:.0}MHz -> {:.0} Mpps; BRAM {:.1}% LUT {:.1}%",
            p.name,
            r.initiation_interval,
            r.clock_mhz,
            r.throughput_mpps,
            100.0 * r.bram_tiles as f64 / fpga.bram_tiles as f64,
            100.0 * r.luts as f64 / fpga.luts as f64,
        );
    }

    println!(
        "\nnote: the basic variant is rejected on RMT (circular dependency) and\n\
         serializes on FPGA (II > 1); removing the dependency (§3.3/§4.2) is what\n\
         makes CocoSketch deployable at line rate."
    );
}

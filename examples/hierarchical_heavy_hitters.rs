//! Hierarchical heavy hitters from one sketch.
//!
//! Measures with the source IP as the full key, then recovers (a) the
//! multi-level heavy flows of every prefix length and (b) the classical
//! *discounted* HHH set — prefixes that are heavy beyond their already-
//! reported descendants — all by post-hoc aggregation.
//!
//! Run with: `cargo run --release -p cocosketch-bench --example hierarchical_heavy_hitters`

use cocosketch::{BasicCocoSketch, FlowTable};
use hashkit::FastMap;
use hhh::discounted::discounted_hhh;
use sketches::Sketch;
use std::net::Ipv4Addr;
use traffic::gen::{generate, TraceConfig};
use traffic::KeySpec;

fn main() {
    let trace = generate(&TraceConfig {
        packets: 600_000,
        flows: 50_000,
        alpha: 1.1,
        ip_skew: 1.2, // strong prefix locality => interesting hierarchy
        seed: 21,
    });
    println!("trace: {} packets", trace.len());

    // One sketch on the 32-bit source IP.
    let full = KeySpec::SRC_IP;
    let mut sketch = BasicCocoSketch::with_memory(512 * 1024, 2, full.key_bytes(), 5);
    for p in &trace.packets {
        sketch.update(&full.project(&p.flow), u64::from(p.weight));
    }
    let table = FlowTable::new(full, sketch.records());
    let threshold = trace.total_weight() / 100; // 1% of traffic

    // (a) multi-level heavy flows at byte granularity.
    println!("\nper-level heavy flows (>= 1% of traffic):");
    for bits in [32u8, 24, 16, 8] {
        let spec = KeySpec::src_prefix(bits);
        let mut hh = table.heavy_hitters(&spec, threshold);
        hh.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
        println!("  /{bits}: {} heavy prefixes", hh.len());
        for (key, size) in hh.iter().take(3) {
            let ip = Ipv4Addr::from(spec.decode(key).src_ip);
            println!("    {ip}/{bits}  ~{size}");
        }
    }

    // (b) classical discounted HHHs over the same table.
    let levels: FastMap<u8, _> = [32u8, 24, 16, 8]
        .into_iter()
        .map(|bits| (bits, table.query_partial(&KeySpec::src_prefix(bits))))
        .collect();
    let mut hhh = discounted_hhh(&levels, threshold);
    hhh.sort_unstable_by_key(|item| std::cmp::Reverse(item.discounted));
    println!("\ndiscounted HHHs (heavy beyond their descendants):");
    for item in hhh.iter().take(10) {
        let ip = Ipv4Addr::from(
            KeySpec::src_prefix(item.prefix_bits)
                .decode(&item.key)
                .src_ip,
        );
        println!(
            "  {ip}/{}  total ~{}  discounted ~{}",
            item.prefix_bits, item.total, item.discounted
        );
    }
}

//! The software-switch deployment: rings, polling threads, shards.
//!
//! Replays a trace through the simulated OVS datapath (real SPSC ring
//! buffers and measurement threads; see `ovssim`), merges the per-
//! thread sketch shards, and verifies the merge against ground truth.
//!
//! Run with: `cargo run --release -p cocosketch-bench --example ovs_datapath`

use ovssim::{OvsConfig, OvsSim};
use traffic::gen::{generate, TraceConfig};
use traffic::{truth, KeySpec};

fn main() {
    let trace = generate(&TraceConfig {
        packets: 300_000,
        flows: 25_000,
        ..TraceConfig::default()
    });
    println!("trace: {} packets", trace.len());

    for threads in [1usize, 2, 4] {
        let run = OvsSim::new(OvsConfig {
            threads,
            mem_bytes: 512 * 1024,
            ..OvsConfig::default()
        })
        .run(&trace);

        let merged_total: u64 = run.merged.values().sum();
        println!(
            "\n{threads} thread(s): processed {} packets in {:?} ({:.2} Mpps wall)",
            run.processed, run.elapsed, run.measured_mpps
        );
        println!("  per-thread load: {:?}", run.per_thread);
        assert_eq!(merged_total, trace.total_weight(), "merge conserves weight");

        // Check the top-5 flows against exact counts.
        let exact = truth::exact_counts(&trace, &KeySpec::FIVE_TUPLE);
        let mut top: Vec<_> = exact.iter().collect();
        top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(*v));
        for (key, &true_size) in top.iter().take(5) {
            let est = run.merged.get(*key).copied().unwrap_or(0);
            let err = (est as f64 - true_size as f64).abs() / true_size as f64;
            println!(
                "  {}  true {true_size}  merged-estimate {est}  ({:.1}% err)",
                KeySpec::FIVE_TUPLE.decode(key),
                err * 100.0
            );
        }
    }
}

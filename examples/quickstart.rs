//! Quickstart: one CocoSketch, many keys.
//!
//! Deploy a single sketch on the 5-tuple full key, feed it a synthetic
//! trace, and then — after measurement has ended — ask for heavy
//! hitters under keys that were never configured up front.
//!
//! Run with: `cargo run --release -p cocosketch-bench --example quickstart`

use cocosketch::{BasicCocoSketch, FlowTable};
use sketches::Sketch;
use traffic::gen::{generate, TraceConfig};
use traffic::KeySpec;

fn main() {
    // A CAIDA-shaped workload: heavy-tailed flow sizes, structured IPs.
    let trace = generate(&TraceConfig {
        packets: 500_000,
        flows: 40_000,
        alpha: 1.1,
        ip_skew: 1.0,
        seed: 7,
    });
    println!(
        "trace: {} packets, {} distinct 5-tuple flows",
        trace.len(),
        trace.distinct_flows()
    );

    // One sketch, 500KB, on the full key. This is the only measurement
    // state that ever exists.
    let full = KeySpec::FIVE_TUPLE;
    let mut sketch = BasicCocoSketch::with_memory(500 * 1024, 2, full.key_bytes(), 42);
    for p in &trace.packets {
        sketch.update(&full.project(&p.flow), u64::from(p.weight));
    }

    // Query time: build the flow table once...
    let table = FlowTable::new(full, sketch.records());
    println!("recorded full-key flows: {}", table.len());

    // ...then answer ANY partial key. None of these were pre-declared.
    let threshold = trace.total_weight() / 1_000;
    for spec in [
        KeySpec::FIVE_TUPLE,
        KeySpec::SRC_DST,
        KeySpec::SRC_IP,
        KeySpec::DST_IP,
        KeySpec::src_prefix(16),
    ] {
        let mut hh = table.heavy_hitters(&spec, threshold);
        hh.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
        println!(
            "\nheavy hitters of {spec} (>= {threshold} packets): {}",
            hh.len()
        );
        for (key, size) in hh.iter().take(3) {
            let ft = spec.decode(key);
            println!("  {ft}  ~{size} packets");
        }
    }
}

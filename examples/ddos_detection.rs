//! DDoS detection with late-bound keys (the §2.2 motivation).
//!
//! Before an attack you don't know which keys will matter. This
//! example measures everything under the 5-tuple full key; when the
//! attack happens, the operator drills down *after the fact*:
//! victim by DstIP, then the attacked service by (DstIP, DstPort),
//! then the attacking networks by SrcIP prefix — three keys, zero
//! reconfiguration, one sketch.
//!
//! Run with: `cargo run --release -p cocosketch-bench --example ddos_detection`

use cocosketch::{BasicCocoSketch, FlowTable};
use hashkit::SplitMix64;
use sketches::Sketch;
use traffic::gen::{generate, TraceConfig};
use traffic::{FiveTuple, KeySpec, Packet, Trace};

/// Inject a spoofed-source flood toward one victim into background
/// traffic: many sources from two /16s hammer 203.0.113.80:443.
fn inject_attack(mut background: Trace, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let victim_ip = u32::from_be_bytes([203, 0, 113, 80]);
    let attack_pkts = background.len() / 5; // 20% attack volume
    let botnets = [
        u32::from_be_bytes([198, 51, 0, 0]),
        u32::from_be_bytes([192, 0, 0, 0]),
    ];
    for _ in 0..attack_pkts {
        let net = botnets[rng.below(botnets.len() as u64) as usize];
        let src = net | rng.below(0x1_0000) as u32;
        background.packets.push(Packet::count(FiveTuple::new(
            src,
            victim_ip,
            rng.range(1024, 65535) as u16,
            443,
            6,
        )));
    }
    rng.shuffle(&mut background.packets);
    background
}

fn main() {
    let background = generate(&TraceConfig {
        packets: 400_000,
        flows: 30_000,
        alpha: 1.05,
        ip_skew: 1.0,
        seed: 11,
    });
    let trace = inject_attack(background, 13);
    println!("trace: {} packets (attack traffic mixed in)", trace.len());

    // The only deployed state: one CocoSketch on the 5-tuple.
    let full = KeySpec::FIVE_TUPLE;
    let mut sketch = BasicCocoSketch::with_memory(1024 * 1024, 2, full.key_bytes(), 99);
    for p in &trace.packets {
        sketch.update(&full.project(&p.flow), u64::from(p.weight));
    }
    let table = FlowTable::new(full, sketch.records());
    let total = table.total();

    // Step 1: who is being hit? Query DstIP (never pre-configured).
    let mut by_dst: Vec<_> = table.query_partial(&KeySpec::DST_IP).into_iter().collect();
    by_dst.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
    let (victim_key, victim_traffic) = by_dst[0];
    let victim = KeySpec::DST_IP.decode(&victim_key);
    println!(
        "\n[1] top destination: {} with ~{victim_traffic} packets ({:.1}% of traffic)",
        std::net::Ipv4Addr::from(victim.dst_ip),
        100.0 * victim_traffic as f64 / total as f64
    );

    // Step 2: which service? Drill into (DstIP, DstPort).
    let mut by_dst_port: Vec<_> = table
        .query_partial(&KeySpec::DST_IP_PORT)
        .into_iter()
        .filter(|(k, _)| KeySpec::DST_IP_PORT.decode(k).dst_ip == victim.dst_ip)
        .collect();
    by_dst_port.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
    let top_service = KeySpec::DST_IP_PORT.decode(&by_dst_port[0].0);
    println!(
        "[2] attacked service: port {} (~{} packets)",
        top_service.dst_port, by_dst_port[0].1
    );

    // Step 3: where from? Scan source prefixes to find the botnets.
    let spec16 = KeySpec::src_prefix(16);
    let mut by_src16: Vec<_> = table.query_partial(&spec16).into_iter().collect();
    by_src16.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
    println!("[3] top source /16 networks:");
    for (key, size) in by_src16.iter().take(4) {
        let src = spec16.decode(key);
        println!(
            "    {}/16  ~{size} packets",
            std::net::Ipv4Addr::from(src.src_ip)
        );
    }
    println!("\nexpected: 203.0.113.80:443 as the victim, 198.51/16 and 192.0/16 as attackers");
}

//! Distributed collection: shards → merge → wire → collector.
//!
//! A fleet of measurement points (switch pipelines, OVS shards, ...)
//! each run a private CocoSketch; a collector merges them sketch-level
//! (values add, key conflicts resolved by the unbiased coin), receives
//! the flow table over the wire format, and answers partial-key
//! queries for the whole network.
//!
//! Run with: `cargo run --release -p cocosketch-bench --example distributed_collection`

use cocosketch::{merge_all, snapshot, BasicCocoSketch, FlowTable};
use sketches::Sketch;
use traffic::gen::{generate, TraceConfig};
use traffic::{truth, KeySpec};

fn main() {
    let trace = generate(&TraceConfig {
        packets: 400_000,
        flows: 30_000,
        ..TraceConfig::default()
    });
    let full = KeySpec::FIVE_TUPLE;
    const SHARDS: usize = 4;

    // Each vantage point sees a slice of the traffic (here: round-robin,
    // as if packets were ECMP-split across links).
    let mut shards: Vec<BasicCocoSketch> = (0..SHARDS)
        .map(|_| BasicCocoSketch::with_memory(256 * 1024, 2, full.key_bytes(), 0xFEED))
        .collect();
    for (i, p) in trace.packets.iter().enumerate() {
        shards[i % SHARDS].update(&full.project(&p.flow), u64::from(p.weight));
    }
    println!("{SHARDS} shards measured {} packets total", trace.len());

    // Collector: sketch-level merge, then encode/decode the table as a
    // device would export it.
    let merged = merge_all(shards).expect("shards share dims + seed");
    assert_eq!(
        merged.total_value(),
        trace.total_weight(),
        "merge conserves traffic"
    );
    let wire = snapshot::encode(&FlowTable::new(full, merged.records()));
    println!("exported flow table: {} bytes on the wire", wire.len());
    let table = snapshot::decode(&wire).expect("decode");

    // Network-wide partial-key answers.
    let exact = truth::exact_counts(&trace, &KeySpec::SRC_IP);
    let est = table.query_partial(&KeySpec::SRC_IP);
    let mut top: Vec<_> = exact.iter().collect();
    top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(*v));
    println!("\ntop sources, network-wide (true vs merged estimate):");
    for (key, &size) in top.iter().take(5) {
        let got = est.get(*key).copied().unwrap_or(0);
        println!(
            "  {}  {size:>8}  ~{got:<8} ({:+.1}%)",
            std::net::Ipv4Addr::from(KeySpec::SRC_IP.decode(key).src_ip),
            100.0 * (got as f64 - size as f64) / size as f64
        );
    }
}

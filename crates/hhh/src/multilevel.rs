//! Multi-level heavy-hitter detection (the Figure 11/12 task).
//!
//! For every level (prefix key) of a hierarchy, report the flows whose
//! size is at least the threshold. CocoSketch answers all levels from
//! one [`FlowTable`]; the exact counterpart provides ground truth.

use cocosketch::FlowTable;
use hashkit::FastMap;
use traffic::{truth, KeyBytes, KeySpec, Trace};

/// The reported heavy flows of one hierarchy level.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// The level's key.
    pub spec: KeySpec,
    /// Reported flows with their (estimated or exact) sizes.
    pub flows: Vec<(KeyBytes, u64)>,
}

/// Heavy flows of every level, from a CocoSketch flow table.
///
/// Each level's table is built by `GROUP BY` aggregation of the same
/// full-key records — no per-level state was ever maintained during
/// measurement, which is the point of the arbitrary-partial-key
/// design. The aggregation runs through the query-plane engine in
/// sorted-entry shape ([`FlowTable::query_all_entries`]): the finest
/// level scans the records once and every coarser level rolls up from
/// its ancestor's (shrinking) sorted entries by linear merge — no
/// per-level hash table is ever built, and the reported flows are
/// exactly those of a per-level scan.
pub fn multilevel_from_table(
    table: &FlowTable,
    hierarchy: &[KeySpec],
    threshold: u64,
) -> Vec<LevelReport> {
    table
        .query_all_entries(hierarchy)
        .into_iter()
        .zip(hierarchy)
        .map(|(counts, spec)| LevelReport {
            spec: *spec,
            flows: counts
                .into_iter()
                .filter(|&(_, v)| v >= threshold)
                .collect(),
        })
        .collect()
}

/// Exact multi-level heavy flows (ground truth).
pub fn exact_multilevel(trace: &Trace, hierarchy: &[KeySpec], threshold: u64) -> Vec<LevelReport> {
    hierarchy
        .iter()
        .map(|spec| {
            let counts = truth::exact_counts(trace, spec);
            LevelReport {
                spec: *spec,
                flows: counts
                    .into_iter()
                    .filter(|&(_, v)| v >= threshold)
                    .collect(),
            }
        })
        .collect()
}

/// Exact per-level count tables (used for ARE computation, where the
/// denominator needs true sizes even for missed flows).
pub fn exact_level_counts(trace: &Trace, hierarchy: &[KeySpec]) -> Vec<FastMap<KeyBytes, u64>> {
    hierarchy
        .iter()
        .map(|spec| truth::exact_counts(trace, spec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::src_hierarchy_bytes;
    use sketches::Sketch;
    use traffic::gen::{generate, TraceConfig};

    fn trace() -> Trace {
        generate(&TraceConfig {
            packets: 50_000,
            flows: 3_000,
            alpha: 1.2,
            ip_skew: 1.0,
            seed: 99,
        })
    }

    #[test]
    fn exact_levels_nest_upward() {
        // A heavy /32 implies its /24 is at least as heavy.
        let t = trace();
        let h = src_hierarchy_bytes();
        let threshold = (t.total_weight() / 1_000).max(1);
        let reports = exact_multilevel(&t, &h, threshold);
        let l32: &LevelReport = &reports[0];
        let l24 = &reports[1];
        let p24 = KeySpec::src_prefix(24);
        for (k32, _) in &l32.flows {
            let parent = p24.project_key(&KeySpec::src_prefix(32), k32);
            assert!(
                l24.flows.iter().any(|(k, _)| *k == parent),
                "/24 parent of a heavy /32 must be heavy"
            );
        }
    }

    #[test]
    fn sketch_tracks_exact_closely() {
        let t = trace();
        let h = src_hierarchy_bytes();
        let full = KeySpec::SRC_IP;
        let mut sk = cocosketch::BasicCocoSketch::with_memory(128 * 1024, 2, full.key_bytes(), 5);
        for p in &t.packets {
            sk.update(&full.project(&p.flow), u64::from(p.weight));
        }
        let table = FlowTable::new(full, sk.records());
        let threshold = (t.total_weight() / 1_000).max(1);
        let got = multilevel_from_table(&table, &h, threshold);
        let want = exact_multilevel(&t, &h, threshold);
        for (g, w) in got.iter().zip(&want) {
            let got_set: std::collections::HashSet<_> = g.flows.iter().map(|&(k, _)| k).collect();
            let want_set: std::collections::HashSet<_> = w.flows.iter().map(|&(k, _)| k).collect();
            let inter = got_set.intersection(&want_set).count() as f64;
            let recall = inter / want_set.len().max(1) as f64;
            assert!(recall > 0.9, "level {}: recall {recall}", g.spec);
        }
    }

    #[test]
    fn rollup_reports_match_per_level_scans() {
        // The engine's rollup path must report exactly the flows the
        // per-level heavy_hitters scan reports (order-insensitive: map
        // iteration order is not part of the contract).
        let t = trace();
        let h = src_hierarchy_bytes();
        let full = KeySpec::SRC_IP;
        let mut sk = cocosketch::BasicCocoSketch::with_memory(64 * 1024, 2, full.key_bytes(), 9);
        for p in &t.packets {
            sk.update(&full.project(&p.flow), u64::from(p.weight));
        }
        let table = FlowTable::new(full, sk.records());
        let threshold = (t.total_weight() / 500).max(1);
        let got = multilevel_from_table(&table, &h, threshold);
        for (report, spec) in got.iter().zip(&h) {
            let mut flows = report.flows.clone();
            let mut direct = table.heavy_hitters(spec, threshold);
            flows.sort_unstable();
            direct.sort_unstable();
            assert_eq!(flows, direct, "level {spec}");
        }
    }

    #[test]
    fn reports_cover_all_levels() {
        let t = trace();
        let h = src_hierarchy_bytes();
        let reports = exact_multilevel(&t, &h, 1);
        assert_eq!(reports.len(), h.len());
        // The empty level always reports exactly one flow: everything.
        let empty = reports.last().unwrap();
        assert_eq!(empty.flows.len(), 1);
        assert_eq!(empty.flows[0].1, t.total_weight());
    }
}

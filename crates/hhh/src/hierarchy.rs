//! Prefix hierarchies used by the HHH experiments.

use traffic::KeySpec;

/// The 1-d source-IP hierarchy in bit granularity: /32 down to /1 plus
/// the empty key — 33 levels, exactly the configuration of Figure 11.
pub fn src_hierarchy() -> Vec<KeySpec> {
    (0..=32u8).rev().map(KeySpec::src_prefix).collect()
}

/// The 2-d source/destination hierarchy in bit granularity: all
/// (src bits, dst bits) pairs in `0..=32`^2 — 1089 levels (Figure 12).
pub fn two_d_hierarchy() -> Vec<KeySpec> {
    let mut out = Vec::with_capacity(33 * 33);
    for s in (0..=32u8).rev() {
        for d in (0..=32u8).rev() {
            out.push(KeySpec::src_dst_prefix(s, d));
        }
    }
    out
}

/// A reduced 1-d hierarchy in byte granularity (5 levels), for fast
/// unit tests and examples.
pub fn src_hierarchy_bytes() -> Vec<KeySpec> {
    vec![
        KeySpec::src_prefix(32),
        KeySpec::src_prefix(24),
        KeySpec::src_prefix(16),
        KeySpec::src_prefix(8),
        KeySpec::EMPTY,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_has_33_levels() {
        let h = src_hierarchy();
        assert_eq!(h.len(), 33);
        assert_eq!(h[0], KeySpec::src_prefix(32));
        assert_eq!(h[32], KeySpec::src_prefix(0));
        assert_eq!(h[32], KeySpec::EMPTY, "prefix length 0 is the empty key");
    }

    #[test]
    fn two_d_has_1089_levels() {
        let h = two_d_hierarchy();
        assert_eq!(h.len(), 1089);
        assert_eq!(h[0], KeySpec::SRC_DST);
        assert_eq!(*h.last().unwrap(), KeySpec::EMPTY);
    }

    #[test]
    fn every_level_is_partial_of_the_root() {
        for spec in src_hierarchy() {
            assert!(spec.is_partial_of(&KeySpec::SRC_IP));
        }
        for spec in two_d_hierarchy() {
            assert!(spec.is_partial_of(&KeySpec::SRC_DST));
        }
    }

    #[test]
    fn levels_nest() {
        let h = src_hierarchy();
        for w in h.windows(2) {
            assert!(w[1].is_partial_of(&w[0]), "{} ≺ {}", w[1], w[0]);
        }
    }
}

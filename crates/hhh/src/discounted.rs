//! Classical (discounted) hierarchical heavy hitters.
//!
//! The multi-level task of Figures 11/12 reports every prefix whose
//! *total* count crosses the threshold. The classical HHH definition
//! (Zhang et al., IMC 2004) is stricter: a prefix is an HHH only if its
//! count *after discounting the counts of its HHH descendants* still
//! crosses the threshold — so a /16 is not an HHH merely because it
//! contains one giant /32.
//!
//! Because CocoSketch recovers a complete per-level count table from
//! one sketch, the discounted semantics is a pure post-processing pass;
//! this module implements it for 1-d prefix hierarchies, generic over
//! exact or estimated tables.

use hashkit::FastMap;
use traffic::{KeyBytes, KeySpec};

/// One detected hierarchical heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HhhItem {
    /// Prefix length of the level this HHH lives at.
    pub prefix_bits: u8,
    /// The prefix key (encoded under `KeySpec::src_prefix(prefix_bits)`).
    pub key: KeyBytes,
    /// Total (undiscounted) size of the prefix.
    pub total: u64,
    /// Discounted size: total minus the totals of descendant HHHs.
    pub discounted: u64,
}

/// Compute 1-d discounted HHHs from per-level source-IP count tables.
///
/// `levels` maps prefix length → count table; any subset of lengths in
/// `0..=32` may be present (missing levels are skipped). Levels are
/// processed longest-prefix first; a prefix qualifies when its count
/// minus the *total* counts of already-selected descendant HHHs is at
/// least `threshold`.
pub fn discounted_hhh(
    levels: &FastMap<u8, FastMap<KeyBytes, u64>>,
    threshold: u64,
) -> Vec<HhhItem> {
    let mut result: Vec<HhhItem> = Vec::new();
    let mut lengths: Vec<u8> = levels.keys().copied().collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a)); // longest first

    for &bits in &lengths {
        let spec = KeySpec::src_prefix(bits);
        let counts = &levels[&bits];
        for (key, &total) in counts {
            // Discount every already-selected HHH that is a descendant
            // of this prefix (longer prefix projecting onto `key`).
            let discount: u64 = result
                .iter()
                .filter(|item| {
                    item.prefix_bits > bits
                        && spec.project_key(&KeySpec::src_prefix(item.prefix_bits), &item.key)
                            == *key
                })
                .map(|item| item.total)
                .sum();
            let discounted = total.saturating_sub(discount);
            if discounted >= threshold {
                result.push(HhhItem {
                    prefix_bits: bits,
                    key: *key,
                    total,
                    discounted,
                });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FiveTuple;

    /// Build per-level tables from explicit (ip, count) flows.
    fn levels_from(flows: &[(u32, u64)], lengths: &[u8]) -> FastMap<u8, FastMap<KeyBytes, u64>> {
        let mut out: FastMap<u8, FastMap<KeyBytes, u64>> = FastMap::default();
        for &bits in lengths {
            let spec = KeySpec::src_prefix(bits);
            let table = out.entry(bits).or_default();
            for &(ip, count) in flows {
                *table
                    .entry(spec.project(&FiveTuple::new(ip, 0, 0, 0, 0)))
                    .or_insert(0) += count;
            }
        }
        out
    }

    #[test]
    fn single_giant_does_not_promote_ancestors() {
        // One /32 with 1000; its /24 holds nothing else. Classical HHH
        // must report the /32 only.
        let levels = levels_from(&[(0x0A000001, 1_000)], &[32, 24]);
        let hhh = discounted_hhh(&levels, 500);
        assert_eq!(hhh.len(), 1);
        assert_eq!(hhh[0].prefix_bits, 32);
        assert_eq!(hhh[0].discounted, 1_000);
    }

    #[test]
    fn aggregate_of_small_flows_is_hhh() {
        // 300 flows of 3 within one /24: no /32 qualifies, the /24 does.
        let flows: Vec<(u32, u64)> = (0..300u32).map(|i| (0x0A000000 + (i % 250), 3)).collect();
        let levels = levels_from(&flows, &[32, 24]);
        let hhh = discounted_hhh(&levels, 500);
        assert_eq!(hhh.len(), 1);
        assert_eq!(hhh[0].prefix_bits, 24);
        assert_eq!(hhh[0].total, 900);
    }

    #[test]
    fn mixed_case_discounts_partially() {
        // A heavy /32 (600) plus background (500) in the same /24 with
        // threshold 400: both the /32 and the /24 (discounted to 500)
        // qualify.
        let mut flows = vec![(0x0A000001u32, 600u64)];
        for i in 0..100u32 {
            flows.push((0x0A000002 + i, 5));
        }
        let levels = levels_from(&flows, &[32, 24]);
        let hhh = discounted_hhh(&levels, 400);
        assert_eq!(hhh.len(), 2, "{hhh:?}");
        let l24 = hhh.iter().find(|h| h.prefix_bits == 24).unwrap();
        assert_eq!(l24.total, 1_100);
        assert_eq!(l24.discounted, 500, "the /32's 600 is discounted");
    }

    #[test]
    fn empty_levels_yield_nothing() {
        let hhh = discounted_hhh(&FastMap::default(), 10);
        assert!(hhh.is_empty());
    }

    #[test]
    fn discount_crosses_multiple_levels() {
        // A giant /32 in one /24 and an aggregate-heavy sibling /24:
        // both are HHHs, and together they fully discount their /16.
        let mut flows = vec![(0x0A000001u32, 1_000u64)];
        for i in 0..200u32 {
            flows.push((0x0A000100 + i, 2)); // sibling /24, 400 total
        }
        let levels = levels_from(&flows, &[32, 24, 16]);
        let hhh = discounted_hhh(&levels, 300);
        assert!(hhh.iter().any(|h| h.prefix_bits == 32 && h.total == 1_000));
        let l24 = hhh
            .iter()
            .find(|h| h.prefix_bits == 24 && h.total == 400)
            .expect("the mice /24 aggregates to 400 >= 300");
        assert_eq!(l24.discounted, 400, "no /32 HHH inside the mice /24");
        // The /16 holds 1400 but its two HHH children discount all of it.
        assert!(
            !hhh.iter().any(|h| h.prefix_bits == 16),
            "fully discounted /16 must not be reported: {hhh:?}"
        );
        // The giant's own /24 is fully discounted by the /32 too.
        assert_eq!(hhh.iter().filter(|h| h.prefix_bits == 24).count(), 1);
    }
}

//! Hierarchical heavy hitters over arbitrary partial key queries.
//!
//! The paper's Figures 11 and 12 evaluate CocoSketch against R-HHH on
//! multi-level heavy-hitter detection: every prefix length of the source
//! IP (33 keys, "1-d") or of the source/destination pair (33 x 33 =
//! 1089 keys, "2-d") is a separate key, and the task reports the heavy
//! flows of every level. CocoSketch serves all levels from one sketch
//! via partial-key aggregation; R-HHH keeps a structure per level.
//!
//! - [`hierarchy`] builds the level lists;
//! - [`multilevel`] runs the detection (sketch-backed and exact);
//! - [`discounted`] implements classical *discounted* HHH semantics
//!   (counts excluding descendant HHHs) on top of any per-level count
//!   table — the paper's use cases (§2.2) cite this form, and it falls
//!   out of partial-key queries for free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discounted;
pub mod hierarchy;
pub mod multilevel;

pub use hierarchy::{src_hierarchy, two_d_hierarchy};
pub use multilevel::{exact_multilevel, multilevel_from_table, LevelReport};

//! Integration-test anchor crate; see `/tests`.

#![forbid(unsafe_code)]

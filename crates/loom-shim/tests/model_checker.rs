//! Tier-1 tests for the loom shim's model checker itself: it must
//! catch known-racy programs, pass known-correct ones, and actually
//! explore distinct interleavings (not just replay one schedule).

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::{model, Builder};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The canonical racy program: two threads increment a plain cell with
/// no synchronization at all. The checker must fail it.
#[test]
fn racy_unsynchronized_counter_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let counter = Arc::new(UnsafeCell::new(0usize));
            let c2 = counter.clone();
            let t = loom::thread::spawn(move || {
                // SAFETY: (test) intentionally racy — the point of the
                // test is that the checker rejects this access pattern.
                let v = c2.with(|p| unsafe { *p });
                c2.with_mut(|p| unsafe { *p = v + 1 });
            });
            let v = counter.with(|p| unsafe { *p });
            counter.with_mut(|p| unsafe { *p = v + 1 });
            t.join().unwrap();
        });
    }));
    let payload = outcome.expect_err("the racy counter must fail model checking");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

/// A racy *publication*: data written through a cell, then a flag set
/// with `Relaxed` ordering. Relaxed gives the reader no happens-before
/// edge, so the data read races even though the flag "worked".
#[test]
fn relaxed_publication_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let data = Arc::new(UnsafeCell::new(0u64));
            let ready = Arc::new(AtomicBool::new(false));
            let (d2, r2) = (data.clone(), ready.clone());
            let t = loom::thread::spawn(move || {
                // SAFETY: (test) sole writer before the flag flips.
                d2.with_mut(|p| unsafe { *p = 42 });
                r2.store(true, Ordering::Relaxed);
            });
            if ready.load(Ordering::Relaxed) {
                // SAFETY: (test) *not* actually safe — Relaxed gives no
                // edge, which is exactly what the checker must report.
                let v = data.with(|p| unsafe { *p });
                assert_eq!(v, 42);
            }
            t.join().unwrap();
        });
    }));
    let payload = outcome.expect_err("relaxed publication must fail model checking");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

/// The corrected publication: Release store / Acquire load. Same
/// program shape as above, but now every schedule is race-free.
#[test]
fn release_acquire_publication_passes() {
    let report = Builder::new().check(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let (d2, r2) = (data.clone(), ready.clone());
        let t = loom::thread::spawn(move || {
            // SAFETY: sole writer; the Release store below publishes
            // this write to any Acquire reader of `ready`.
            d2.with_mut(|p| unsafe { *p = 42 });
            r2.store(true, Ordering::Release);
        });
        if ready.load(Ordering::Acquire) {
            // SAFETY: the Acquire load observed the Release store, so
            // the write above happens-before this read.
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
    assert!(report.complete, "publication model must be exhaustible");
    assert!(report.iterations > 1, "expected several interleavings");
}

/// Atomic increments never race, and with a full RMW the final count is
/// exact in every interleaving.
#[test]
fn atomic_counter_is_exact_in_all_interleavings() {
    let report = Builder::new().check(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let t = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        counter.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
    assert!(report.complete);
}

/// The classic lost update: increments split into separate load and
/// store steps. Some interleaving ends at 1, and the checker must find
/// it — this is the test that exploration really explores.
#[test]
fn split_load_store_lost_update_is_found() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = counter.clone();
            let t = loom::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    let payload = outcome.expect_err("the lost-update interleaving must be found");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

/// Exploration is deterministic: the same model explores the same
/// number of schedules every time.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        Builder::new()
            .check(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let a2 = a.clone();
                let t = loom::thread::spawn(move || {
                    a2.store(1, Ordering::Release);
                });
                let _ = a.load(Ordering::Acquire);
                t.join().unwrap();
            })
            .iterations
    };
    assert_eq!(run(), run());
}

/// The iteration budget stops an intractable search and reports
/// `complete = false` instead of hanging or failing.
#[test]
fn iteration_budget_reports_incomplete() {
    let mut b = Builder::new();
    b.max_iterations = 3;
    b.preemption_bound = None;
    let report = b.check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let a = a.clone();
                loom::thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(report.iterations, 3);
    assert!(!report.complete);
}

/// Outside `model`, the tracked types degrade to plain std behaviour —
/// this is what lets production code compile against them under a
/// `loom` feature and still run in ordinary tests.
#[test]
fn fallback_outside_model_behaves_like_std() {
    let counter = Arc::new(AtomicUsize::new(0));
    let cell = UnsafeCell::new(7u32);
    // SAFETY: single-threaded here; no concurrent access to the cell.
    assert_eq!(cell.with(|p| unsafe { *p }), 7);
    cell.with_mut(|p| {
        // SAFETY: single-threaded here, and `p` is valid for writes.
        unsafe { *p = 9 }
    });
    assert_eq!(cell.into_inner(), 9);

    let c2 = counter.clone();
    let t = loom::thread::spawn(move || {
        for _ in 0..100 {
            c2.fetch_add(1, Ordering::Relaxed);
        }
    });
    for _ in 0..100 {
        counter.fetch_add(1, Ordering::Relaxed);
    }
    t.join().unwrap();
    loom::thread::yield_now();
    loom::hint::spin_loop();
    assert_eq!(counter.load(Ordering::SeqCst), 200);
}

/// Spin-wait loops terminate under the model: a yielded thread is
/// deprioritized until the thread it waits on makes progress, so the
/// canonical flag-wait pattern is explorable instead of divergent.
#[test]
fn spin_wait_on_flag_terminates() {
    let report = Builder::new().check(|| {
        let ready = Arc::new(AtomicBool::new(false));
        let r2 = ready.clone();
        let t = loom::thread::spawn(move || {
            r2.store(true, Ordering::Release);
        });
        while !ready.load(Ordering::Acquire) {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
    assert!(report.complete, "flag wait must exhaust, not time out");
}

/// Assertion failures inside the model surface the panic message and
/// the schedule that produced them.
#[test]
fn model_panic_reports_schedule() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = AtomicUsize::new(1);
            assert_eq!(a.load(Ordering::SeqCst), 2, "deliberate failure");
        });
    }));
    let payload = outcome.expect_err("the assertion must fail the model");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deliberate failure"), "missing cause: {msg}");
    assert!(msg.contains("schedule"), "missing schedule: {msg}");
}

//! Race-checked interior mutability (loom's `cell` module subset).

use crate::rt;
use std::panic::Location;
use std::sync::Mutex;

/// A tracked [`std::cell::UnsafeCell`]: inside a [`crate::model`] run,
/// every access is a scheduling point and is checked for data races
/// against concurrent accesses via vector clocks; outside a model it
/// degrades to a plain `UnsafeCell`.
///
/// Mirroring loom, access goes through [`with`](Self::with) /
/// [`with_mut`](Self::with_mut): the closures receive raw pointers, so
/// *dereferencing* remains the caller's `unsafe` obligation — the shim
/// checks that the access pattern is race-free, not that the pointer
/// use is sound.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    state: Mutex<rt::CellState>,
}

// SAFETY: `UnsafeCell<T>` hands out raw pointers whose synchronization
// is the caller's responsibility, exactly like `std::cell::UnsafeCell`
// wrapped in a user type; the extra `state` field is internally
// synchronized by its `Mutex`. `T: Send` bounds the data itself, and
// `Sync` is required so model tests can share the cell across
// simulated threads the same way production code shares it (production
// wrappers add their own `Sync` impls with their own invariants).
#[allow(unsafe_code)] // the crate's single unsafe item, audited above
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Wrap `data`.
    pub fn new(data: T) -> Self {
        Self {
            data: std::cell::UnsafeCell::new(data),
            state: Mutex::new(rt::CellState::default()),
        }
    }

    /// Immutable access: calls `f` with a shared raw pointer to the
    /// contents, recording a read access (a race with any concurrent
    /// write fails the model).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        rt::cell_read(&self.state, Location::caller());
        f(self.data.get())
    }

    /// Mutable access: calls `f` with a mutable raw pointer to the
    /// contents, recording a write access (a race with any concurrent
    /// read or write fails the model).
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        rt::cell_write(&self.state, Location::caller());
        f(self.data.get())
    }

    /// Consume the cell, returning the wrapped value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

//! Spin-loop hints (loom's `hint` module subset).

use crate::rt;

/// In a model run, a *yield* scheduling point (a spinning thread must
/// let the thread it is waiting on make progress); outside a model,
/// the real [`std::hint::spin_loop`].
pub fn spin_loop() {
    if rt::in_model() {
        rt::yield_point();
    } else {
        std::hint::spin_loop();
    }
}

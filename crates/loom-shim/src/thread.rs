//! Simulated threads (loom's `thread` module subset).
//!
//! Inside a [`crate::model`] run, [`spawn`] registers a simulated
//! thread with the scheduler (backed by a real OS thread that runs only
//! when granted the floor); outside a model it is plain
//! [`std::thread::spawn`].

use crate::rt;
use std::sync::{Arc, Mutex};

/// Handle to a spawned thread; [`join`](JoinHandle::join) mirrors
/// [`std::thread::JoinHandle::join`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Model {
        tid: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Spawn a thread. In a model run the child is scheduled like any
/// other simulated thread (including the schedule where it runs to
/// completion before `spawn` returns).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if rt::in_model() {
        let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
        let slot = result.clone();
        let tid = rt::spawn_model(Box::new(move || {
            let value = f();
            let mut guard = match slot.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *guard = Some(Ok(value));
        }));
        JoinHandle {
            inner: Inner::Model { tid, result },
        }
    } else {
        JoinHandle {
            inner: Inner::Os(std::thread::spawn(f)),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result. In a model
    /// run a panicking child aborts the whole execution before `join`
    /// can observe it, so the `Err` arm only surfaces outside models.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { tid, result } => {
                rt::join_model(tid);
                let mut guard = match result.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                guard
                    .take()
                    .unwrap_or_else(|| unreachable!("a joined model thread has stored its result"))
            }
            Inner::Os(h) => h.join(),
        }
    }
}

/// Hand the scheduler an explicit interleaving point at which the
/// caller is deprioritized until other runnable threads progress —
/// what makes spin-wait loops explorable (a no-op outside a model,
/// mirroring loom rather than `std::thread::yield_now`'s OS yield,
/// which would only slow tests down).
pub fn yield_now() {
    rt::yield_point();
}

//! Tracked synchronization primitives (loom's `sync` module subset):
//! the atomic types the engine's lock-free structures use, plus `Arc`.

/// `Arc` needs no interleaving hooks (its refcount operations cannot
/// introduce user-visible races), so the std type is re-exported.
pub use std::sync::Arc;

/// Tracked atomic integers and flags.
pub mod atomic {
    use crate::rt;
    use std::sync::Mutex;

    pub use std::sync::atomic::Ordering;

    macro_rules! tracked_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            ///
            /// Inside a [`crate::model`] run every operation is a
            /// scheduling point, and release/acquire edges propagate
            /// vector clocks for the race detector; outside a model the
            /// operations delegate directly to the underlying std
            /// atomic.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
                state: Mutex<rt::AtomicState>,
            }

            impl $name {
                /// Wrap an initial value.
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                        state: Mutex::new(rt::AtomicState::new()),
                    }
                }

                /// Atomic load at `order`.
                pub fn load(&self, order: Ordering) -> $prim {
                    rt::atomic_load(&self.state, order);
                    self.inner.load(order)
                }

                /// Atomic store at `order`.
                pub fn store(&self, v: $prim, order: Ordering) {
                    rt::atomic_store(&self.state, order);
                    self.inner.store(v, order);
                }

                /// Atomic swap at `order`.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    rt::atomic_rmw(&self.state, order);
                    self.inner.swap(v, order)
                }

                /// Atomic compare-exchange; orderings as in std.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    // Track at the success ordering; under the model
                    // only one thread runs at a time, so the outcome
                    // itself is still a single atomic step.
                    rt::atomic_rmw(&self.state, success);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    tracked_atomic!(
        /// A tracked [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    tracked_atomic!(
        /// A tracked [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    tracked_atomic!(
        /// A tracked [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    tracked_atomic!(
        /// A tracked [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );

    macro_rules! fetch_ops {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    rt::atomic_rmw(&self.state, order);
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    rt::atomic_rmw(&self.state, order);
                    self.inner.fetch_sub(v, order)
                }
            }
        };
    }

    fetch_ops!(AtomicUsize, usize);
    fetch_ops!(AtomicU64, u64);
    fetch_ops!(AtomicU32, u32);
}

//! The model-checking runtime: cooperative scheduler, schedule-tree
//! exploration, and vector-clock race detection.
//!
//! # Execution model
//!
//! Inside [`crate::model`], every simulated thread is a real OS thread,
//! but at most one runs at a time: each tracked operation (atomic
//! access, [`crate::cell::UnsafeCell`] access, spawn, join, yield) is a
//! *scheduling point* where the running thread hands control to the
//! scheduler, which picks the next thread to run. A whole execution is
//! therefore determined by the sequence of scheduling choices, and the
//! checker explores the tree of those sequences depth-first: each
//! iteration replays a recorded prefix of choices and diverges at the
//! deepest unexhausted branch point, until the tree (within the
//! preemption bound) is exhausted or the iteration budget runs out.
//!
//! # Race detection
//!
//! Interleavings are explored under sequential consistency, but
//! synchronization is tracked with vector clocks at the *declared*
//! orderings: a `Release` store publishes the writer's clock on the
//! atomic, an `Acquire` load joins it, and `Relaxed` operations publish
//! nothing. Every [`crate::cell::UnsafeCell`] access checks
//! happens-before against the cell's previous accesses, so two
//! unsynchronized accesses (at least one a write) are reported as a
//! data race on *every* schedule, not just the schedules where the
//! torn outcome happens to surface.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel payload used to unwind simulated threads when the current
/// execution aborts (race found, deadlock, user panic elsewhere).
pub(crate) struct AbortSignal;

/// Why an execution stopped early.
#[derive(Debug, Clone)]
pub(crate) enum Failure {
    /// An `UnsafeCell` was accessed without a happens-before edge.
    DataRace(String),
    /// Every unfinished thread is blocked.
    Deadlock,
    /// A simulated thread panicked (assertion failure in the model).
    UserPanic(String),
    /// One execution exceeded the branch budget (runaway loop).
    TooManyBranches(usize),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::DataRace(loc) => write!(f, "data race detected at {loc}"),
            Failure::Deadlock => write!(f, "deadlock: every unfinished thread is blocked"),
            Failure::UserPanic(msg) => write!(f, "thread panicked inside the model: {msg}"),
            Failure::TooManyBranches(n) => write!(
                f,
                "execution exceeded {n} scheduling points; bound every loop in the model"
            ),
        }
    }
}

/// A vector clock: `clock[t]` counts thread `t`'s tracked events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One recorded access to an `UnsafeCell`: which thread, at which of
/// its own clock ticks. `access` happens-before the current event iff
/// the current thread's clock has caught up to `ts` in component `tid`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    tid: usize,
    ts: u32,
}

impl Access {
    fn happens_before(&self, clock: &VClock) -> bool {
        clock.get(self.tid) >= self.ts
    }
}

/// Race-detection state of one `UnsafeCell`.
#[derive(Debug, Default)]
pub(crate) struct CellState {
    last_write: Option<Access>,
    /// Latest read per thread (a thread's later reads dominate its
    /// earlier ones in the happens-before check).
    reads: Vec<Access>,
}

/// Synchronization state of one tracked atomic.
#[derive(Debug, Default)]
pub(crate) struct AtomicState {
    /// Clock published by the last `Release`-or-stronger store (`None`
    /// after a `Relaxed` store: acquiring readers get no edge).
    release: Option<VClock>,
}

impl AtomicState {
    /// Fresh state; `const` so tracked atomics can be built in `const`
    /// contexts like their std counterparts.
    pub(crate) const fn new() -> Self {
        Self { release: None }
    }
}

/// One branching scheduling decision along the current path.
#[derive(Debug, Clone)]
struct Choice {
    /// Index of the candidate taken this iteration.
    sel: usize,
    /// How many candidates were explorable at this point.
    n: usize,
}

struct ThreadInfo {
    finished: bool,
    /// Blocked joining this thread id, if any.
    blocked_on: Option<usize>,
    /// Voluntarily gave up the floor (`yield_now`/`spin_loop`): the
    /// scheduler deprioritizes it until every other runnable thread
    /// has had a chance, which is what lets bounded models contain
    /// spin-wait loops without the schedule tree diverging.
    yielded: bool,
    clock: VClock,
    final_clock: Option<VClock>,
}

impl ThreadInfo {
    fn new(clock: VClock) -> Self {
        Self {
            finished: false,
            blocked_on: None,
            yielded: false,
            clock,
            final_clock: None,
        }
    }

    fn enabled(&self, threads: &[ThreadInfo]) -> bool {
        !self.finished
            && match self.blocked_on {
                None => true,
                Some(t) => threads[t].finished,
            }
    }
}

struct State {
    threads: Vec<ThreadInfo>,
    /// The granted thread; `usize::MAX` once the execution is over.
    active: usize,
    path: Vec<Choice>,
    /// Next branching decision to replay.
    decision: usize,
    /// Scheduling points seen this execution (branch budget).
    points: usize,
    preemptions: usize,
    failure: Option<Failure>,
    /// OS handles of every simulated thread, joined by the coordinator.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    state: Mutex<State>,
    cv: Condvar,
    max_points: usize,
    preemption_bound: Option<usize>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

/// Run `f` with the current model context, or `fallback` when called
/// outside a model (tracked types degrade to their `std` behaviour).
fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R, fallback: impl FnOnce() -> R) -> R {
    CTX.with(|c| match &*c.borrow() {
        Some(ctx) => f(ctx),
        None => fallback(),
    })
}

/// True when the calling thread is a simulated thread of a live model.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl Execution {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned lock only means a sim thread panicked elsewhere;
        // the state itself is still consistent (panics never happen
        // while mutating it).
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Abort the execution from the running thread: record the failure,
    /// wake everyone, and unwind.
    fn abort(&self, mut st: MutexGuard<'_, State>, failure: Failure) -> ! {
        if st.failure.is_none() {
            st.failure = Some(failure);
        }
        drop(st);
        self.cv.notify_all();
        std::panic::panic_any(AbortSignal);
    }

    /// The scheduling decision: pick the next thread to run. Called
    /// with the lock held by the thread that currently holds the floor
    /// (or is giving it up by finishing/blocking).
    fn reschedule(&self, st: &mut State) {
        let cur = st.active;
        let mut candidates: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].enabled(&st.threads))
            .collect();
        if candidates.is_empty() {
            if st.threads.iter().all(|t| t.finished) {
                st.active = usize::MAX; // execution complete
                return;
            }
            if st.failure.is_none() {
                st.failure = Some(Failure::Deadlock);
            }
            st.active = usize::MAX;
            return;
        }
        // A yielded thread runs again only when every other runnable
        // thread is also yielded: spin-wait loops thereby force the
        // thread they wait on to make progress instead of letting the
        // spinner's schedule subtree diverge.
        // Yield fairness: a thread that yielded is not rescheduled
        // while any non-yielded thread is runnable, so spin-wait loops
        // force the thread they wait on to make progress. When *every*
        // runnable thread has yielded, rotate deterministically to the
        // next candidate after the current thread instead of branching
        // — exploring "keep spinning" schedules would turn every spin
        // loop into an infinite subtree.
        if candidates.iter().any(|&t| !st.threads[t].yielded) {
            candidates.retain(|&t| !st.threads[t].yielded);
        } else if candidates.len() > 1 {
            let next = candidates
                .iter()
                .copied()
                .find(|&t| t > cur)
                .unwrap_or(candidates[0]);
            candidates = vec![next];
        }
        // Prefer running the current thread on: the first path explored
        // is the preemption-free one, and a preemption budget then
        // caps how far later iterations may stray from it. A yielded
        // current thread was filtered out above; switching away from it
        // is voluntary, not a preemption.
        let cur_running = candidates.contains(&cur) && !st.threads[cur].yielded;
        if cur_running {
            candidates.retain(|&t| t != cur);
            candidates.insert(0, cur);
        }
        let budget_left = self
            .preemption_bound
            .map(|b| st.preemptions < b)
            .unwrap_or(true);
        if cur_running && !budget_left {
            candidates.truncate(1);
        }

        st.points += 1;
        if st.points > self.max_points {
            if st.failure.is_none() {
                st.failure = Some(Failure::TooManyBranches(self.max_points));
            }
            st.active = usize::MAX;
            return;
        }

        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else {
            let d = st.decision;
            let sel = if d < st.path.len() {
                st.path[d].sel
            } else {
                st.path.push(Choice {
                    sel: 0,
                    n: candidates.len(),
                });
                0
            };
            st.decision += 1;
            candidates[sel.min(candidates.len() - 1)]
        };
        if cur_running && chosen != cur {
            st.preemptions += 1;
        }
        st.threads[chosen].yielded = false;
        st.active = chosen;
    }

    /// Yield the floor at a scheduling point and wait to get it back.
    fn sync_point_as(&self, tid: usize) {
        let mut st = self.lock();
        if st.failure.is_some() {
            self.abort(st, Failure::Deadlock /* unused: already set */);
        }
        self.reschedule(&mut st);
        self.wait_for_floor(st, tid);
    }

    /// Block until `tid` is the active thread (aborting with the rest
    /// of the execution if a failure lands first).
    fn wait_for_floor(&self, mut st: MutexGuard<'_, State>, tid: usize) {
        loop {
            if st.failure.is_some() {
                drop(st);
                self.cv.notify_all();
                std::panic::panic_any(AbortSignal);
            }
            if st.active == tid {
                return;
            }
            self.cv.notify_all();
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Current thread's clock, ticked for a new event.
    fn tick(&self, tid: usize) -> VClock {
        let mut st = self.lock();
        st.threads[tid].clock.tick(tid);
        st.threads[tid].clock.clone()
    }
}

// ---------------------------------------------------------------------
// Tracked-object hooks (called from cell.rs / sync.rs)
// ---------------------------------------------------------------------

/// A *voluntary* scheduling point (`yield_now`/`spin_loop`): marks the
/// caller yielded so the scheduler runs someone else first; no-op
/// outside a model.
pub(crate) fn yield_point() {
    with_ctx(
        |ctx| {
            ctx.exec.lock().threads[ctx.tid].yielded = true;
            ctx.exec.sync_point_as(ctx.tid);
        },
        || (),
    );
}

/// Record an `UnsafeCell` read; aborts the execution on a race.
pub(crate) fn cell_read(
    state: &Mutex<CellState>,
    location: &'static std::panic::Location<'static>,
) {
    with_ctx(
        |ctx| {
            ctx.exec.sync_point_as(ctx.tid);
            let clock = ctx.exec.tick(ctx.tid);
            let mut cs = lock_plain(state);
            let racy = cs
                .last_write
                .is_some_and(|w| w.tid != ctx.tid && !w.happens_before(&clock));
            if racy {
                drop(cs);
                let st = ctx.exec.lock();
                ctx.exec.abort(
                    st,
                    Failure::DataRace(format!("{location} (unsynchronized read after write)")),
                );
            }
            let me = Access {
                tid: ctx.tid,
                ts: clock.get(ctx.tid),
            };
            if let Some(r) = cs.reads.iter_mut().find(|r| r.tid == ctx.tid) {
                *r = me;
            } else {
                cs.reads.push(me);
            }
        },
        || (),
    );
}

/// Record an `UnsafeCell` write; aborts the execution on a race.
pub(crate) fn cell_write(
    state: &Mutex<CellState>,
    location: &'static std::panic::Location<'static>,
) {
    with_ctx(
        |ctx| {
            ctx.exec.sync_point_as(ctx.tid);
            let clock = ctx.exec.tick(ctx.tid);
            let mut cs = lock_plain(state);
            let write_race = cs
                .last_write
                .is_some_and(|w| w.tid != ctx.tid && !w.happens_before(&clock));
            let read_race = cs
                .reads
                .iter()
                .any(|r| r.tid != ctx.tid && !r.happens_before(&clock));
            if write_race || read_race {
                drop(cs);
                let st = ctx.exec.lock();
                let kind = if write_race {
                    "write after unsynchronized write"
                } else {
                    "write after unsynchronized read"
                };
                ctx.exec
                    .abort(st, Failure::DataRace(format!("{location} ({kind})")));
            }
            cs.last_write = Some(Access {
                tid: ctx.tid,
                ts: clock.get(ctx.tid),
            });
            cs.reads.clear();
        },
        || (),
    );
}

use std::sync::atomic::Ordering;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Track an atomic load: an acquire load joins the clock published by
/// the last releasing store.
pub(crate) fn atomic_load(state: &Mutex<AtomicState>, order: Ordering) {
    with_ctx(
        |ctx| {
            ctx.exec.sync_point_as(ctx.tid);
            let mut st = ctx.exec.lock();
            st.threads[ctx.tid].clock.tick(ctx.tid);
            if is_acquire(order) {
                let astate = lock_plain(state);
                if let Some(rel) = &astate.release {
                    st.threads[ctx.tid].clock.join(rel);
                }
            }
        },
        || (),
    );
}

/// Track an atomic store: a release store publishes the writer's clock;
/// a relaxed store erases the published clock (no edge for acquirers).
pub(crate) fn atomic_store(state: &Mutex<AtomicState>, order: Ordering) {
    with_ctx(
        |ctx| {
            ctx.exec.sync_point_as(ctx.tid);
            let mut st = ctx.exec.lock();
            st.threads[ctx.tid].clock.tick(ctx.tid);
            let clock = st.threads[ctx.tid].clock.clone();
            drop(st);
            let mut astate = lock_plain(state);
            astate.release = if is_release(order) { Some(clock) } else { None };
        },
        || (),
    );
}

/// Track an atomic read-modify-write: acquire side joins, release side
/// publishes (joined with the previous publication, approximating
/// release-sequence continuation through RMW chains).
pub(crate) fn atomic_rmw(state: &Mutex<AtomicState>, order: Ordering) {
    with_ctx(
        |ctx| {
            ctx.exec.sync_point_as(ctx.tid);
            let mut st = ctx.exec.lock();
            st.threads[ctx.tid].clock.tick(ctx.tid);
            let mut astate = lock_plain(state);
            if is_acquire(order) {
                if let Some(rel) = &astate.release {
                    st.threads[ctx.tid].clock.join(rel);
                }
            }
            if is_release(order) {
                let mut published = st.threads[ctx.tid].clock.clone();
                if let Some(prev) = &astate.release {
                    published.join(prev);
                }
                astate.release = Some(published);
            }
        },
        || (),
    );
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

// ---------------------------------------------------------------------
// Thread spawning / joining (called from thread.rs)
// ---------------------------------------------------------------------

/// Spawn a simulated thread; returns its thread id. Panics when called
/// outside a model (use `std::thread` there — `crate::thread::spawn`
/// handles the dispatch).
pub(crate) fn spawn_model(f: Box<dyn FnOnce() + Send>) -> usize {
    let ctx = CTX
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| unreachable!("spawn_model requires a model context"));
    let exec = ctx.exec.clone();
    let child = {
        let mut st = exec.lock();
        st.threads[ctx.tid].clock.tick(ctx.tid);
        let mut child_clock = st.threads[ctx.tid].clock.clone();
        let child = st.threads.len();
        child_clock.tick(child);
        st.threads.push(ThreadInfo::new(child_clock));
        let handle = spawn_os_thread(exec.clone(), child, f);
        st.os_handles.push(handle);
        child
    };
    // The spawn itself is a scheduling point: the child may run first.
    exec.sync_point_as(ctx.tid);
    child
}

/// Block until simulated thread `tid` finishes, joining its clock.
pub(crate) fn join_model(tid: usize) {
    let ctx = CTX
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| unreachable!("join_model requires a model context"));
    let exec = ctx.exec.clone();
    let mut st = exec.lock();
    if !st.threads[tid].finished {
        st.threads[ctx.tid].blocked_on = Some(tid);
        exec.reschedule(&mut st);
        exec.wait_for_floor(st, ctx.tid);
        st = exec.lock();
        st.threads[ctx.tid].blocked_on = None;
    }
    let final_clock = st.threads[tid]
        .final_clock
        .clone()
        .unwrap_or_else(|| unreachable!("joined thread has published its final clock"));
    st.threads[ctx.tid].clock.join(&final_clock);
    st.threads[ctx.tid].clock.tick(ctx.tid);
}

fn spawn_os_thread(
    exec: Arc<Execution>,
    tid: usize,
    f: Box<dyn FnOnce() + Send>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                exec: exec.clone(),
                tid,
            })
        });
        // Wait for the scheduler to grant the floor before running.
        {
            let st = exec.lock();
            exec.wait_for_floor(st, tid);
        }
        let outcome = catch_unwind(AssertUnwindSafe(f));
        CTX.with(|c| *c.borrow_mut() = None);
        let mut st = exec.lock();
        if let Err(payload) = outcome {
            if !payload.is::<AbortSignal>() && st.failure.is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                st.failure = Some(Failure::UserPanic(msg));
            }
        }
        st.threads[tid].finished = true;
        st.threads[tid].final_clock = Some(st.threads[tid].clock.clone());
        exec.reschedule(&mut st);
        drop(st);
        exec.cv.notify_all();
    })
}

// ---------------------------------------------------------------------
// Exploration driver (called from lib.rs)
// ---------------------------------------------------------------------

pub(crate) struct ExecOutcome {
    path: Vec<Choice>,
    pub(crate) failure: Option<Failure>,
}

/// Run one execution of the model along `path` (extending it at fresh
/// branch points).
fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    path: Vec<Choice>,
    max_points: usize,
    preemption_bound: Option<usize>,
) -> ExecOutcome {
    let exec = Arc::new(Execution {
        state: Mutex::new(State {
            threads: vec![ThreadInfo::new({
                let mut c = VClock::default();
                c.tick(0);
                c
            })],
            active: 0,
            path,
            decision: 0,
            points: 0,
            preemptions: 0,
            failure: None,
            os_handles: Vec::new(),
        }),
        cv: Condvar::new(),
        max_points,
        preemption_bound,
    });
    let root = spawn_os_thread(exec.clone(), 0, Box::new(move || f()));
    exec.lock().os_handles.push(root);

    // Coordinator: wait for the execution to finish, then reap the OS
    // threads (on failure every thread unwinds via the abort signal).
    let handles = {
        let mut st = exec.lock();
        while !st.threads.iter().all(|t| t.finished) {
            st = match exec.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        // The wrapper caught every panic; a join error is unreachable.
        let _ = h.join();
    }
    let mut st = exec.lock();
    ExecOutcome {
        path: std::mem::take(&mut st.path),
        failure: st.failure.take(),
    }
}

/// Move `path` to the next schedule in depth-first order; false when
/// the tree is exhausted.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.sel + 1 < last.n {
            last.sel += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Explore schedules of `f` until exhaustion or the iteration budget.
/// Returns `(iterations, complete, failure)`.
pub(crate) fn explore(
    f: Arc<dyn Fn() + Send + Sync>,
    max_iterations: usize,
    max_points: usize,
    preemption_bound: Option<usize>,
) -> (usize, bool, Option<(Failure, Vec<usize>)>) {
    let mut path: Vec<Choice> = Vec::new();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let outcome = run_once(f.clone(), path, max_points, preemption_bound);
        path = outcome.path;
        if let Some(failure) = outcome.failure {
            let schedule = path.iter().map(|c| c.sel).collect();
            return (iterations, false, Some((failure, schedule)));
        }
        if !advance(&mut path) {
            return (iterations, true, None);
        }
        if iterations >= max_iterations {
            return (iterations, false, None);
        }
    }
}

//! A minimal, zero-dependency stand-in for the [`loom`] crate.
//!
//! The workspace builds fully offline (see DESIGN.md, "Offline-build
//! policy"), so this shim implements the subset of loom's API that the
//! `engine` model tests use — [`model`], [`cell::UnsafeCell`],
//! [`sync::atomic`], [`thread`] — backed by a from-scratch bounded
//! model checker (see `src/rt.rs`'s module docs for the execution model).
//!
//! # Deliberate differences from real loom
//!
//! - **Exploration is preemption-bounded, not partial-order reduced.**
//!   Real loom prunes equivalent interleavings (DPOR); this shim
//!   bounds the number of *preemptions* per schedule (default 2)
//!   instead. The practical consequence is the same tests-must-be-tiny
//!   discipline loom already imposes, with a coarser completeness
//!   guarantee: [`Report::complete`] means "exhausted within the
//!   preemption bound", not "all interleavings".
//! - **Race detection is vector-clock based and schedule-independent**:
//!   an unsynchronized `UnsafeCell` access pair is reported on every
//!   schedule, so even one iteration of a racy model fails.
//! - **Graceful degradation outside [`model`]**: the tracked types fall
//!   back to their plain `std` behaviour when used outside a model run,
//!   so production code may be compiled against these types (via a
//!   `--cfg loom`-style feature) and still run normally in other tests
//!   in the same compilation.
//! - Mutexes, condvars, `SeqCst` global-order modeling, and lazy
//!   statics are not implemented — the engine's data plane is
//!   lock-free and only needs atomics + cells.
//!
//! [`loom`]: https://docs.rs/loom

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
pub mod hint;
mod rt;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Outcome of a [`Builder::check`] run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: usize,
    /// True when the schedule tree was exhausted within the preemption
    /// bound; false when [`Builder::max_iterations`] stopped the search
    /// first. Tests making exhaustiveness claims should assert this.
    pub complete: bool,
}

/// Configures a model-checking run (loom's `model::Builder` subset).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of schedules to explore before giving up
    /// (reported via [`Report::complete`] = false, not a failure).
    pub max_iterations: usize,
    /// Maximum scheduling points in a single execution; exceeding it
    /// fails the run (it means a loop in the model is unbounded).
    pub max_branches: usize,
    /// Maximum preemptive context switches per schedule; `None` means
    /// unbounded (full interleaving search). Default 2, which finds
    /// the overwhelming majority of real bugs (CHESS heuristic) while
    /// keeping the schedule tree tractable.
    pub preemption_bound: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            max_branches: 50_000,
            preemption_bound: Some(2),
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explore schedules of `f`, panicking on the first failing one
    /// (data race, deadlock, assertion panic, or branch-budget blowup)
    /// with the failure and the schedule that produced it.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let (iterations, complete, failure) = rt::explore(
            f,
            self.max_iterations,
            self.max_branches,
            self.preemption_bound,
        );
        if let Some((failure, schedule)) = failure {
            panic!(
                "model checking failed after {iterations} schedule(s): {failure}\n\
                 failing schedule (branch choices): {schedule:?}"
            );
        }
        Report {
            iterations,
            complete,
        }
    }
}

/// Explore the interleavings of `f` with the default [`Builder`]
/// bounds, panicking if any schedule fails. The drop-in equivalent of
/// `loom::model`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f);
}

//! A lock-free single-producer single-consumer ring buffer.
//!
//! The shared-memory channel between an ingestion thread and a sketch
//! worker (and, downstream, between the simulated OVS datapath and its
//! measurement threads — `ovssim` re-exports this module): fixed
//! power-of-two capacity, cache-line-padded head/tail indices so
//! producer and consumer never false-share, and wait-free operations
//! (each fails rather than blocks when full/empty — the
//! poll-mode-driver discipline).
//!
//! Besides single-item [`push`](SpscRing::push)/[`pop`](SpscRing::pop),
//! the ring offers [`push_slice`](SpscRing::push_slice) and
//! [`pop_chunk`](SpscRing::pop_chunk), which move a whole batch per
//! head/tail update — one acquire/release pair amortized over the
//! batch, the `rte_ring` bulk-operation trick that makes ring transfer
//! cost per packet negligible next to the sketch update itself.

use crate::sync::{AtomicUsize, Ordering, UnsafeCell};
use std::mem::MaybeUninit;

/// A value padded to (a conservative multiple of) a cache line, so the
/// producer's head index and the consumer's tail index never share a
/// line. 128 bytes covers the adjacent-line prefetcher on modern x86.
#[repr(align(128))]
#[derive(Default)]
struct CachePadded<T>(T);

/// A bounded SPSC ring of `Copy` items.
///
/// Safety model: exactly one thread calls the producer-side methods
/// ([`push`](Self::push), [`push_slice`](Self::push_slice)) and exactly
/// one thread calls the consumer-side methods ([`pop`](Self::pop),
/// [`pop_chunk`](Self::pop_chunk)). Slot ownership is transferred
/// through the acquire/release pair on `head`/`tail`; a slot is written
/// only while it is invisible to the consumer and read only after the
/// release-store that published it.
pub struct SpscRing<T: Copy + Send> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer will write (only the producer mutates).
    head: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read (only the consumer mutates).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands each slot to exactly one side at a time: a
// slot is written by the producer only while outside the consumer's
// visible window, published by the release-store of `head`, and read
// by the consumer only after the matching acquire-load (symmetrically
// for slot reuse via `tail`). With `T: Send` the items may move
// between those threads, so sharing the struct is sound. The single-
// producer/single-consumer discipline itself is the caller's contract
// (documented on the type) — violating it is a logic error that the
// loom model tests would surface as a data race, but not UB reachable
// from safe code holding `&SpscRing` on one side each.
unsafe impl<T: Copy + Send> Sync for SpscRing<T> {}

impl<T: Copy + Send> SpscRing<T> {
    /// A ring holding up to `capacity` items; `capacity` must be a
    /// power of two (DPDK's rte_ring discipline — index masking stays
    /// branch-free).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        let buf: Vec<UnsafeCell<MaybeUninit<T>>> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            buf: buf.into_boxed_slice(),
            mask: capacity - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently queued (approximate under concurrency, exact
    /// when quiescent).
    pub fn len(&self) -> usize {
        self.head
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.0.load(Ordering::Acquire))
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: enqueue `item`, or return it back when full.
    #[inline]
    pub fn push(&self, item: T) -> Result<(), T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            return Err(item);
        }
        self.buf[head & self.mask].with_mut(|slot| {
            // SAFETY: `head - tail <= mask` was checked above, so this
            // slot is outside the consumer's visible window until the
            // release-store below publishes it; the acquire-load of
            // `tail` ordered any previous consumer read of the slot
            // before this write.
            unsafe { (*slot).write(item) };
        });
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Producer side: enqueue as many of `items` as fit, front first,
    /// under a single head update. Returns how many were enqueued (0
    /// when the ring is full — never blocks).
    #[inline]
    pub fn push_slice(&self, items: &[T]) -> usize {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        let free = self.capacity() - head.wrapping_sub(tail);
        let n = items.len().min(free);
        // LINT: bounded(n = items.len().min(free) <= items.len())
        for (i, item) in items[..n].iter().enumerate() {
            self.buf[head.wrapping_add(i) & self.mask].with_mut(|slot| {
                // SAFETY: `n` is capped to the free window computed
                // from the acquire-load of `tail`, so none of these
                // slots is visible to the consumer until the single
                // release-store below publishes the whole batch.
                unsafe { (*slot).write(*item) };
            });
        }
        if n > 0 {
            self.head.0.store(head.wrapping_add(n), Ordering::Release);
        }
        n
    }

    /// Consumer side: dequeue one item, `None` when empty.
    #[inline]
    pub fn pop(&self) -> Option<T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        // SAFETY: `tail != head` under the acquire-load of `head`, so
        // the producer initialized this slot and its release-store of
        // `head` ordered that write before this read; the slot is not
        // rewritten until the release-store of `tail` below returns it
        // to the producer's window.
        let item = self.buf[tail & self.mask].with(|slot| unsafe { (*slot).assume_init() });
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Consumer side: dequeue up to `max` items into `out` (appended),
    /// under a single tail update. Returns how many were dequeued.
    #[inline]
    pub fn pop_chunk(&self, out: &mut Vec<T>, max: usize) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        let n = head.wrapping_sub(tail).min(max);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: `n` is capped to the occupied window computed
            // from the acquire-load of `head`, which ordered the
            // producer's initialization of all `n` slots before these
            // reads; the slots return to the producer only at the
            // release-store of `tail` below.
            let item = self.buf[tail.wrapping_add(i) & self.mask]
                .with(|slot| unsafe { (*slot).assume_init() });
            out.push(item);
        }
        if n > 0 {
            self.tail.0.store(tail.wrapping_add(n), Ordering::Release);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let r: SpscRing<u32> = SpscRing::new(8);
        for i in 0..8 {
            r.push(i).unwrap();
        }
        assert_eq!(r.push(99), Err(99), "full ring rejects");
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn wraps_around() {
        let r: SpscRing<u32> = SpscRing::new(4);
        for round in 0..10u32 {
            for i in 0..4 {
                r.push(round * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(r.pop(), Some(round * 4 + i));
            }
        }
    }

    #[test]
    fn len_tracks_occupancy() {
        let r: SpscRing<u8> = SpscRing::new(4);
        assert!(r.is_empty());
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.len(), 2);
        r.pop();
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = SpscRing::<u8>::new(6);
    }

    #[test]
    fn push_slice_partial_on_full() {
        let r: SpscRing<u32> = SpscRing::new(8);
        assert_eq!(r.push_slice(&[0, 1, 2, 3, 4]), 5);
        assert_eq!(r.push_slice(&[5, 6, 7, 8, 9]), 3, "only 3 slots left");
        assert_eq!(r.push_slice(&[99]), 0, "full ring accepts nothing");
        let mut out = Vec::new();
        assert_eq!(r.pop_chunk(&mut out, 100), 8);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn pop_chunk_respects_max_and_appends() {
        let r: SpscRing<u32> = SpscRing::new(8);
        r.push_slice(&[10, 11, 12, 13]);
        let mut out = vec![9];
        assert_eq!(r.pop_chunk(&mut out, 2), 2);
        assert_eq!(out, vec![9, 10, 11]);
        assert_eq!(r.pop_chunk(&mut out, 10), 2);
        assert_eq!(out, vec![9, 10, 11, 12, 13]);
        assert_eq!(r.pop_chunk(&mut out, 10), 0);
    }

    #[test]
    fn batch_ops_wrap_around() {
        let r: SpscRing<u32> = SpscRing::new(4);
        let mut out = Vec::new();
        let mut next = 0u32;
        let mut expect = 0u32;
        for _ in 0..13 {
            let batch = [next, next + 1, next + 2];
            let pushed = r.push_slice(&batch);
            next += pushed as u32;
            r.pop_chunk(&mut out, 2);
            for &v in &out {
                assert_eq!(v, expect, "batch ops broke FIFO at wrap");
                expect += 1;
            }
            out.clear();
        }
    }

    #[test]
    fn cross_thread_transfers_everything_in_order() {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(256));
        let n: u64 = 500_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..n {
                    let mut item = i;
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut expected = 0u64;
                let mut sum = 0u64;
                while expected < n {
                    if let Some(v) = ring.pop() {
                        assert_eq!(v, expected, "FIFO order violated");
                        sum += v;
                        expected += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                sum
            })
        };
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
    }

    #[test]
    fn cross_thread_batched_transfer() {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(128));
        let n: u64 = 200_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let batch: Vec<u64> = (0..n).collect();
                let mut sent = 0usize;
                while sent < batch.len() {
                    let pushed = ring.push_slice(&batch[sent..(sent + 64).min(batch.len())]);
                    if pushed == 0 {
                        std::hint::spin_loop();
                    }
                    sent += pushed;
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut got = 0u64;
                let mut out = Vec::with_capacity(64);
                while got < n {
                    out.clear();
                    if ring.pop_chunk(&mut out, 64) == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    for &v in &out {
                        assert_eq!(v, got, "batched FIFO order violated");
                        got += 1;
                    }
                }
                got
            })
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), n);
    }
}

//! The continuously-running ingestion session and its rotation
//! protocol.
//!
//! [`crate::ShardedEngine::run`] is one-shot: ingest a whole trace,
//! join the workers, merge. A production deployment never stops — it
//! measures in *epochs*: while epoch `N+1` streams in, epoch `N` is
//! sealed, merged off the hot path, and queried. [`EngineSession`] is
//! that lifecycle over the same rings and shard factory:
//!
//! - every worker owns **two** sketch buffers — the *active* one being
//!   updated and a pre-built *spare*;
//! - [`EngineSession::rotate`] pushes a [`Cmd::Seal`] marker through
//!   each ring, **in band** behind the packets already queued, so the
//!   epoch boundary is exact per shard (a packet is in epoch `N` iff it
//!   was pushed before `rotate` returned) and ingestion never stops;
//! - on the marker, a worker swaps active↔spare (O(1), no allocation on
//!   the seal path) and hands the sealed shard through its
//!   [`SealSlot`] — a one-deep SPSC hand-off cell built on the
//!   cfg-switched primitives in `src/sync.rs`, so the loom model tests
//!   interleave the real implementation;
//! - [`EngineSession::collect`] takes the sealed shards and merges them
//!   on the *caller's* thread — the expensive merge never blocks
//!   ingestion, which is already filling the next epoch.
//!
//! Backpressure instead of loss, everywhere: a full ring retries, a
//! still-occupied seal slot makes the worker wait for the collector
//! (bounded by one epoch — rotation faster than collection is a caller
//! pacing bug), and both waits yield so oversubscribed hosts progress.

use crate::ring::SpscRing;
use crate::sharded::{EngineConfig, ShardedEngine};
use crate::sync;
use cocosketch::{BasicCocoSketch, Epoch, FlowTable};
use sketches::MergeSketch;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use traffic::{KeyBytes, KeySpec};

/// One ring item of a session: a packet, or the epoch boundary.
///
/// Seal markers travel the same FIFO as packets, which is what makes
/// the boundary exact without stopping the producer: everything ahead
/// of the marker is epoch `N`, everything behind it is `N+1`.
#[derive(Debug, Clone, Copy)]
pub enum Cmd {
    /// A pre-projected packet: full key and weight.
    Pkt(KeyBytes, u64),
    /// The epoch boundary marker pushed by [`EngineSession::rotate`].
    Seal,
}

/// A one-deep hand-off cell for sealed shards (SPSC: the shard worker
/// puts, the collector takes).
///
/// `state` is the slot's ownership token: `EMPTY` means the cell
/// belongs to the putter, `FULL` means it belongs to the taker. Each
/// side writes `state` only to hand the cell to the other side, with
/// release/acquire ordering the cell access before the hand-off —
/// the same transfer discipline as the ring's head/tail, checked by
/// the same loom model tests (`tests/model.rs`).
pub struct SealSlot<T> {
    state: sync::AtomicUsize,
    value: sync::UnsafeCell<Option<T>>,
}

const EMPTY: usize = 0;
const FULL: usize = 1;

// SAFETY: the cell is accessed only by the side that currently owns it
// per `state` (EMPTY: putter, FULL: taker), and every ownership
// transfer is a release-store observed by an acquire-load before the
// other side touches the cell — so all cell accesses are ordered, and
// with `T: Send` the value may cross threads. The single-putter/
// single-taker discipline is the caller's contract (documented on the
// type); the loom model tests exercise it under bounded schedules.
unsafe impl<T: Send> Sync for SealSlot<T> {}

impl<T> Default for SealSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SealSlot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Self {
            state: sync::AtomicUsize::new(EMPTY),
            value: sync::UnsafeCell::new(None),
        }
    }

    /// Putter side: hand `value` to the taker, or give it back when the
    /// previous hand-off has not been taken yet.
    pub fn try_put(&self, value: T) -> Result<(), T> {
        if self.state.load(sync::Ordering::Acquire) != EMPTY {
            return Err(value);
        }
        self.value.with_mut(|cell| {
            // SAFETY: the acquire-load above observed EMPTY, so the
            // cell belongs to the putter (us): the taker only touches
            // it after the release-store of FULL below, which orders
            // this write before any taker read.
            unsafe { *cell = Some(value) };
        });
        self.state.store(FULL, sync::Ordering::Release);
        Ok(())
    }

    /// Putter side: [`try_put`](Self::try_put) retried (yielding) until
    /// the taker has drained the previous hand-off.
    pub fn put(&self, mut value: T) {
        loop {
            match self.try_put(value) {
                Ok(()) => return,
                Err(back) => {
                    value = back;
                    sync::yield_now();
                }
            }
        }
    }

    /// Taker side: take the handed-off value, or `None` when the putter
    /// has not sealed one yet.
    pub fn try_take(&self) -> Option<T> {
        if self.state.load(sync::Ordering::Acquire) != FULL {
            return None;
        }
        let value = self.value.with_mut(|cell| {
            // SAFETY: the acquire-load above observed FULL, so the cell
            // belongs to the taker (us) and the putter's write to it
            // happened-before (release/acquire on `state`); the putter
            // touches it again only after the release-store of EMPTY
            // below.
            unsafe { (*cell).take() }
        });
        self.state.store(EMPTY, sync::Ordering::Release);
        match value {
            Some(v) => Some(v),
            // state == FULL guarantees the putter stored Some.
            None => hashkit::invariant::violated("a FULL seal slot holds a value"),
        }
    }

    /// Taker side: [`try_take`](Self::try_take) retried (yielding)
    /// until the putter hands a value over.
    pub fn take(&self) -> T {
        loop {
            if let Some(v) = self.try_take() {
                return v;
            }
            sync::yield_now();
        }
    }
}

/// A sealed shard in flight: the sketch plus its packet/weight
/// accounting for the window.
type SealedShard<S> = (S, u64, u64);

/// Proof token that [`EngineSession::rotate`] was called and the epoch
/// has not been collected yet; consumed by [`EngineSession::collect`].
#[must_use = "a rotated epoch must be collected"]
#[derive(Debug)]
pub struct PendingEpoch {
    id: u64,
}

impl PendingEpoch {
    /// The id the sealed epoch will carry.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One collected epoch: the merged sketch and its exact accounting.
#[derive(Debug)]
pub struct EpochRun<S = BasicCocoSketch> {
    /// Epoch id (dense from 0, in rotation order; the final
    /// [`EngineSession::finish`] epoch takes the next id).
    pub id: u64,
    /// The merged sketch over exactly this epoch's packets.
    pub sketch: S,
    /// Packets ingested during the epoch.
    pub packets: u64,
    /// Total stream weight ingested during the epoch.
    pub weight: u64,
    /// Per-shard packet counts, for load-balance diagnostics.
    pub per_shard: Vec<u64>,
}

impl<S: MergeSketch> EpochRun<S> {
    /// The epoch's records as a query-plane [`FlowTable`] over `full`.
    pub fn flow_table(&self, full: KeySpec) -> FlowTable {
        FlowTable::new(full, self.sketch.records())
    }

    /// Seal into the persistence-ready [`Epoch`] (tables, id,
    /// accounting) — what an [`cocosketch::EpochStore`] holds and
    /// `cocosketch::epoch::encode` writes.
    pub fn to_epoch(&self, full: KeySpec) -> Epoch {
        Epoch {
            id: self.id,
            packets: self.packets,
            weight: self.weight,
            tables: vec![self.flow_table(full)],
        }
    }
}

/// A continuously-running sharded ingestion session (see module docs).
///
/// Built from the same config and shard factory as
/// [`ShardedEngine::run`]; the difference is lifecycle: `run` is one
/// epoch with a join at the end, a session rotates epochs out of a
/// never-stopping stream.
pub struct EngineSession<S: MergeSketch + 'static> {
    config: EngineConfig,
    rings: Vec<Arc<SpscRing<Cmd>>>,
    slots: Vec<Arc<SealSlot<SealedShard<S>>>>,
    done: Arc<AtomicBool>,
    workers: Vec<JoinHandle<SealedShard<S>>>,
    stages: Vec<Vec<Cmd>>,
    next_epoch: u64,
    pending: Option<u64>,
}

impl<S: MergeSketch + 'static> ShardedEngine<S> {
    /// Start a rotating session: spawn the shard workers and return the
    /// producer handle. Feed it with [`EngineSession::push`], seal
    /// windows with [`EngineSession::rotate`]/[`EngineSession::collect`],
    /// and end it with [`EngineSession::finish`].
    pub fn session(&self) -> EngineSession<S> {
        EngineSession::start(*self.config(), self.factory())
    }
}

impl EngineSession<BasicCocoSketch> {
    /// A CocoSketch session straight from a config (shards built like
    /// [`ShardedEngine::new`]).
    pub fn coco(config: EngineConfig) -> Self {
        ShardedEngine::<BasicCocoSketch>::new(config).session()
    }
}

impl<S: MergeSketch + 'static> EngineSession<S> {
    pub(crate) fn start(config: EngineConfig, factory: Arc<dyn Fn() -> S + Send + Sync>) -> Self {
        assert!(config.threads > 0, "need at least one worker thread");
        assert!(config.batch > 0, "producer batch must be positive");
        assert!(
            config.ring_capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        let rings: Vec<Arc<SpscRing<Cmd>>> = (0..config.threads)
            .map(|_| Arc::new(SpscRing::new(config.ring_capacity)))
            .collect();
        let slots: Vec<Arc<SealSlot<SealedShard<S>>>> = (0..config.threads)
            .map(|_| Arc::new(SealSlot::new()))
            .collect();
        let done = Arc::new(AtomicBool::new(false));
        let workers = rings
            .iter()
            .zip(&slots)
            .enumerate()
            .map(|(idx, (ring, slot))| {
                let ring = Arc::clone(ring);
                let slot = Arc::clone(slot);
                let done = Arc::clone(&done);
                let factory = Arc::clone(&factory);
                let batch = config.batch;
                let pin = config.pin;
                std::thread::spawn(move || {
                    // Pin before worker_loop builds its shards: the
                    // first-touch allocations inside (active + spare
                    // sketches) then land NUMA-local to the pinned
                    // core. Best-effort, like the one-shot engine.
                    if pin {
                        let _ = crate::affinity::pin_current_thread(
                            crate::affinity::core_for_shard(idx),
                        );
                    }
                    worker_loop(&ring, &slot, &done, &*factory, batch)
                })
            })
            .collect();
        Self {
            config,
            rings,
            slots,
            done,
            workers,
            stages: (0..config.threads)
                .map(|_| Vec::with_capacity(config.batch))
                .collect(),
            next_epoch: 0,
            pending: None,
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Ingest one pre-projected packet.
    #[inline]
    pub fn push(&mut self, key: KeyBytes, w: u64) {
        let shard = ShardedEngine::<S>::shard_of(&key, self.config.threads);
        self.stages[shard].push(Cmd::Pkt(key, w)); // LINT: bounded(shard_of() < threads = stages.len())
                                                   // LINT: bounded(same shard_of() bound)
        if self.stages[shard].len() == self.config.batch {
            self.flush(shard);
        }
    }

    /// Ingest a batch of pre-projected packets.
    pub fn push_batch(&mut self, packets: &[(KeyBytes, u64)]) {
        for &(key, w) in packets {
            self.push(key, w);
        }
    }

    fn flush(&mut self, shard: usize) {
        let stage = &mut self.stages[shard]; // LINT: bounded(callers pass shard = shard_of() < threads)
        let mut sent = 0usize;
        while sent < stage.len() {
            let pushed = self.rings[shard].push_slice(&stage[sent..]); // LINT: bounded(shard < threads = rings.len(); sent < stage.len() loop condition)
            if pushed == 0 {
                std::thread::yield_now();
            }
            sent += pushed;
        }
        stage.clear();
    }

    /// Seal the current epoch *without stopping ingestion*: flush the
    /// stages and push an in-band [`Cmd::Seal`] marker down every ring.
    /// Packets pushed after this call land in the next epoch. The
    /// sealed shards are handed off asynchronously; merge them (off the
    /// hot path) with [`collect`](Self::collect).
    ///
    /// # Panics
    /// Panics when the previous epoch has not been collected yet: the
    /// seal slots are one deep, so rotation outrunning collection would
    /// stall the workers.
    pub fn rotate(&mut self) -> PendingEpoch {
        assert!(
            self.pending.is_none(),
            "collect the pending epoch before rotating again"
        );
        for shard in 0..self.config.threads {
            self.flush(shard);
        }
        for ring in &self.rings {
            while ring.push(Cmd::Seal).is_err() {
                std::thread::yield_now();
            }
        }
        let id = self.next_epoch;
        self.next_epoch += 1;
        self.pending = Some(id);
        PendingEpoch { id }
    }

    /// Wait for every worker's sealed shard and merge them into the
    /// epoch's sketch — on the caller's thread, while the workers
    /// ingest the next epoch.
    pub fn collect(&mut self, pending: PendingEpoch) -> EpochRun<S> {
        debug_assert_eq!(self.pending, Some(pending.id));
        let mut shards = Vec::with_capacity(self.config.threads);
        let mut per_shard = Vec::with_capacity(self.config.threads);
        let mut packets = 0u64;
        let mut weight = 0u64;
        for slot in &self.slots {
            let (sketch, shard_packets, shard_weight) = slot.take();
            shards.push(sketch);
            per_shard.push(shard_packets);
            packets += shard_packets;
            weight += shard_weight;
        }
        self.pending = None;
        EpochRun {
            id: pending.id,
            sketch: crate::sharded::merge_shards(shards, weight),
            packets,
            weight,
            per_shard,
        }
    }

    /// [`rotate`](Self::rotate) + [`collect`](Self::collect) in one
    /// call, for callers that do not overlap collection with ingest.
    pub fn rotate_collect(&mut self) -> EpochRun<S> {
        let pending = self.rotate();
        self.collect(pending)
    }

    /// End the session: seal whatever has been ingested since the last
    /// rotation as the final epoch, join the workers, and merge.
    ///
    /// # Panics
    /// Panics when a rotated epoch has not been collected, or when a
    /// worker panicked (the payload is re-raised).
    pub fn finish(mut self) -> EpochRun<S> {
        assert!(
            self.pending.is_none(),
            "collect the pending epoch before finishing"
        );
        for shard in 0..self.config.threads {
            self.flush(shard);
        }
        self.done.store(true, Ordering::Release);
        let mut shards = Vec::with_capacity(self.config.threads);
        let mut per_shard = Vec::with_capacity(self.config.threads);
        let mut packets = 0u64;
        let mut weight = 0u64;
        for worker in self.workers.drain(..) {
            let (sketch, shard_packets, shard_weight) = match worker.join() {
                Ok(result) => result,
                // A worker panic is a bug in the shard update path
                // itself; re-raise it with its original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            shards.push(sketch);
            per_shard.push(shard_packets);
            packets += shard_packets;
            weight += shard_weight;
        }
        EpochRun {
            id: self.next_epoch,
            sketch: crate::sharded::merge_shards(shards, weight),
            packets,
            weight,
            per_shard,
        }
    }
}

impl<S: MergeSketch + 'static> Drop for EngineSession<S> {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // finished normally
        }
        // Abandoned session: release the workers. They bail out of a
        // blocked seal hand-off once `done` is set (dropping that
        // epoch's data — acceptable only on this teardown path), so
        // joining cannot deadlock even with an uncollected rotation in
        // flight.
        self.done.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The shard worker: drain the ring in chunks, batch contiguous
/// packets through the sketch's batched hot path, and on a seal marker
/// swap the double buffer and hand the sealed shard off.
fn worker_loop<S: MergeSketch>(
    ring: &SpscRing<Cmd>,
    slot: &SealSlot<SealedShard<S>>,
    done: &AtomicBool,
    factory: &(dyn Fn() -> S + Send + Sync),
    batch: usize,
) -> SealedShard<S> {
    let mut active = factory();
    // The double buffer: a pre-built spare makes the seal-path swap
    // O(1) — the replacement construction happens after the hand-off.
    let mut spare = Some(factory());
    let mut chunk: Vec<Cmd> = Vec::with_capacity(batch);
    let mut pkts: Vec<(KeyBytes, u64)> = Vec::with_capacity(batch);
    let mut packets = 0u64;
    let mut weight = 0u64;
    loop {
        chunk.clear();
        if ring.pop_chunk(&mut chunk, batch) > 0 {
            for &cmd in &chunk {
                match cmd {
                    Cmd::Pkt(key, w) => pkts.push((key, w)),
                    Cmd::Seal => {
                        if !pkts.is_empty() {
                            active.update_batch(&pkts);
                            packets += pkts.len() as u64;
                            weight += pkts.iter().map(|&(_, w)| w).sum::<u64>();
                            pkts.clear();
                        }
                        let next = match spare.take() {
                            Some(next) => next,
                            // Unreachable: the spare is rebuilt right
                            // after every hand-off below.
                            None => factory(),
                        };
                        let sealed = std::mem::replace(&mut active, next);
                        let mut payload = (sealed, packets, weight);
                        packets = 0;
                        weight = 0;
                        loop {
                            match slot.try_put(payload) {
                                Ok(()) => break,
                                Err(back) => {
                                    if done.load(Ordering::Acquire) {
                                        // Teardown with an uncollected
                                        // epoch: drop it (Drop path).
                                        break;
                                    }
                                    payload = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        spare = Some(factory());
                    }
                }
            }
            if !pkts.is_empty() {
                active.update_batch(&pkts);
                packets += pkts.len() as u64;
                weight += pkts.iter().map(|&(_, w)| w).sum::<u64>();
                pkts.clear();
            }
        } else if done.load(Ordering::Acquire) && ring.is_empty() {
            break;
        } else {
            // PMD discipline is busy-polling; yield so oversubscribed
            // hosts still make progress.
            std::thread::yield_now();
        }
    }
    (active, packets, weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::{CmHeap, ElasticSketch, Sketch};
    use traffic::gen::{generate, TraceConfig};

    fn packets(n: usize, seed_salt: u64) -> Vec<(KeyBytes, u64)> {
        let t = generate(&TraceConfig {
            packets: n,
            flows: (n / 20).max(10),
            seed: 42 + seed_salt,
            ..TraceConfig::default()
        });
        t.packets
            .iter()
            .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
            .collect()
    }

    fn weight_of(pkts: &[(KeyBytes, u64)]) -> u64 {
        pkts.iter().map(|&(_, w)| w).sum()
    }

    #[test]
    fn seal_slot_hands_off_in_order() {
        let slot: SealSlot<u32> = SealSlot::new();
        assert!(slot.try_take().is_none());
        slot.put(1);
        assert_eq!(slot.try_put(2), Err(2), "one-deep: full slot rejects");
        assert_eq!(slot.take(), 1);
        slot.put(2);
        assert_eq!(slot.take(), 2);
        assert!(slot.try_take().is_none());
    }

    #[test]
    fn epochs_partition_the_stream_exactly() {
        for threads in [1, 2, 4] {
            let cfg = EngineConfig {
                threads,
                ..EngineConfig::default()
            };
            let w1 = packets(10_000, 0);
            let w2 = packets(7_000, 1);
            let mut session = EngineSession::coco(cfg);
            session.push_batch(&w1);
            let e1 = session.rotate_collect();
            session.push_batch(&w2);
            let e2 = session.finish();
            assert_eq!((e1.id, e2.id), (0, 1));
            assert_eq!(e1.packets, w1.len() as u64);
            assert_eq!(e1.weight, weight_of(&w1), "epoch 0 conserves window 1");
            assert_eq!(e2.packets, w2.len() as u64);
            assert_eq!(e2.weight, weight_of(&w2), "epoch 1 conserves window 2");
            assert_eq!(e1.sketch.total_value(), weight_of(&w1));
            assert_eq!(e2.sketch.total_value(), weight_of(&w2));
        }
    }

    #[test]
    fn epoch_matches_one_shot_run_bit_for_bit() {
        // A single sealed epoch must be indistinguishable from the
        // one-shot engine over the same packets.
        let cfg = EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        };
        let pkts = packets(20_000, 2);
        let one_shot = ShardedEngine::<BasicCocoSketch>::new(cfg).run(&pkts);
        let mut session = EngineSession::coco(cfg);
        session.push_batch(&pkts);
        let epoch = session.rotate_collect();
        session.finish();
        let mut a = one_shot.sketch.records();
        let mut b = epoch.sketch.records();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "rotation must not perturb single-epoch results");
    }

    #[test]
    fn many_rotations_stay_conserving() {
        let cfg = EngineConfig {
            threads: 2,
            ring_capacity: 256,
            batch: 64,
            ..EngineConfig::default()
        };
        let mut session = EngineSession::coco(cfg);
        let mut expected = Vec::new();
        for epoch in 0..5u64 {
            let pkts = packets(3_000, 10 + epoch);
            session.push_batch(&pkts);
            expected.push((pkts.len() as u64, weight_of(&pkts)));
            let run = session.rotate_collect();
            assert_eq!(run.id, epoch);
            assert_eq!((run.packets, run.weight), expected[epoch as usize]);
            assert_eq!(run.sketch.total_value(), run.weight);
        }
        let last = session.finish();
        assert_eq!(last.id, 5);
        assert_eq!(last.packets, 0, "nothing after the last rotation");
    }

    #[test]
    fn overlapped_collection_sees_next_epoch_packets() {
        // rotate() then keep pushing *before* collect(): the new
        // packets must land in the next epoch, not the sealed one.
        let cfg = EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        };
        let w1 = packets(5_000, 3);
        let w2 = packets(5_000, 4);
        let mut session = EngineSession::coco(cfg);
        session.push_batch(&w1);
        let pending = session.rotate();
        session.push_batch(&w2); // ingested while epoch 0 is in flight
        let e1 = session.collect(pending);
        let e2 = session.finish();
        assert_eq!(e1.weight, weight_of(&w1));
        assert_eq!(e2.weight, weight_of(&w2));
    }

    #[test]
    fn non_coco_shards_rotate_with_conservation() {
        let key_bytes = KeySpec::FIVE_TUPLE.key_bytes();
        let cfg = EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        };
        let w1 = packets(8_000, 5);
        let w2 = packets(6_000, 6);
        // CM-Heap: conserving, so collect() verifies the invariant.
        let eng = ShardedEngine::with_factory(cfg, move || {
            CmHeap::with_memory(64 * 1024, key_bytes, 0xC0C0)
        });
        let mut session = eng.session();
        session.push_batch(&w1);
        let e1 = session.rotate_collect();
        session.push_batch(&w2);
        let e2 = session.finish();
        assert_eq!(e1.sketch.conserved_weight(), Some(weight_of(&w1)));
        assert_eq!(e2.sketch.conserved_weight(), Some(weight_of(&w2)));

        // Elastic: no conservation claim, but rotation still yields
        // per-epoch sketches with sane elephants.
        let eng = ShardedEngine::with_factory(cfg, move || {
            ElasticSketch::with_memory(128 * 1024, key_bytes, 0xC0C0)
        });
        let mut session = eng.session();
        session.push_batch(&w1);
        let e1 = session.rotate_collect();
        session.finish();
        let mut single = ElasticSketch::with_memory(128 * 1024, key_bytes, 0xC0C0);
        single.update_batch(&w1);
        let mut top: Vec<(KeyBytes, u64)> = single.records();
        top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
        for &(key, est) in top.iter().take(3) {
            let got = e1.sketch.query(&key);
            let rel = (got as f64 - est as f64).abs() / est.max(1) as f64;
            assert!(rel < 0.25, "elephant {est} estimated {got} in sealed epoch");
        }
    }

    #[test]
    fn to_epoch_carries_accounting() {
        let cfg = EngineConfig::default();
        let pkts = packets(2_000, 7);
        let mut session = EngineSession::coco(cfg);
        session.push_batch(&pkts);
        let run = session.rotate_collect();
        session.finish();
        let epoch = run.to_epoch(KeySpec::FIVE_TUPLE);
        assert_eq!(epoch.id, 0);
        assert_eq!(epoch.packets, pkts.len() as u64);
        assert_eq!(epoch.weight, weight_of(&pkts));
        assert_eq!(epoch.primary().total(), weight_of(&pkts));
    }

    #[test]
    #[should_panic(expected = "collect the pending epoch")]
    fn double_rotate_without_collect_panics() {
        let mut session = EngineSession::coco(EngineConfig::default());
        let _pending = session.rotate();
        let _ = session.rotate();
    }

    #[test]
    fn abandoned_session_does_not_hang() {
        let mut session = EngineSession::coco(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        session.push_batch(&packets(1_000, 8));
        let _pending = session.rotate();
        drop(session); // uncollected epoch: Drop must still join
    }
}

//! The multi-threaded CocoSketch ingestion engine.
//!
//! The paper's software deployments (OVS via DPDK, §6/App. B) all share
//! one shape: packets are partitioned RSS-style by a hash of the full
//! key, each partition flows through a lock-free ring to a dedicated
//! worker owning a private sketch shard, and shards merge bucket-wise
//! into one unbiased sketch at collection time. This crate is that
//! shape as a library:
//!
//! - [`ring::SpscRing`]: the DPDK-style bounded SPSC ring, with bulk
//!   [`push_slice`](ring::SpscRing::push_slice)/
//!   [`pop_chunk`](ring::SpscRing::pop_chunk) so ring atomics amortize
//!   over packet batches (`ovssim` consumes it from here);
//! - [`sharded::ShardedEngine`]: the engine proper — partition, ingest
//!   through the batched sketch hot path, merge via the
//!   [`sketches::MergeSketch`] contract (any mergeable sketch ingests
//!   sharded; [`sharded::ShardedCocoSketch`] is the CocoSketch
//!   instantiation). [`sharded::EngineRun::flow_table`] bridges a
//!   finished run into the query-plane engine
//!   ([`cocosketch::FlowTable::query_all`]), whose parallel scan path
//!   mirrors this crate's scoped-worker shape on the read side;
//! - [`session::EngineSession`]: the same data plane with an epoch
//!   lifecycle — [`rotate`](session::EngineSession::rotate) pushes
//!   in-band seal markers through the rings (exact window boundaries
//!   without stopping ingestion), workers swap double-buffered shard
//!   sketches and hand sealed shards through a one-deep
//!   [`session::SealSlot`], and
//!   [`collect`](session::EngineSession::collect) merges them off the
//!   hot path into an [`session::EpochRun`] (persistable as a
//!   [`cocosketch::Epoch`]).
//!
//! - [`affinity`]: shard-to-core pinning — a libc-free, SAFETY-audited
//!   `sched_setaffinity(2)` wrapper (Linux x86-64; no-op elsewhere)
//!   that both engines use when [`sharded::EngineConfig::pin`] is set,
//!   pinning each worker *before* its shard is allocated so first
//!   touch places bucket memory NUMA-local to the worker's core.
//!
//! This crate is the data plane's designated `unsafe` crate (the slot
//! accesses in the ring, each with a documented ownership argument,
//! plus the affinity syscall; `hashkit` additionally carries the
//! audited prefetch/AVX2 intrinsics behind `deny(unsafe_code)`). Two
//! machine checks back the hand-written arguments: the
//! `cocolint` pass (`cargo run -p xtask -- lint`) requires every
//! `unsafe` block to carry a `// SAFETY:` comment, and with
//! `--features heavy-tests` the ring compiles against the `loom` model
//! checker (see `src/sync.rs`) and `tests/model.rs` exhaustively
//! interleaves its operations under bounded schedules.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod ring;
pub mod session;
pub mod sharded;
pub(crate) mod sync;

pub use affinity::{available_cores, core_for_shard, pin_current_thread, PinError};
pub use ring::SpscRing;
pub use session::{Cmd, EngineSession, EpochRun, PendingEpoch, SealSlot};
pub use sharded::{EngineConfig, EngineRun, ShardedCocoSketch, ShardedEngine};

//! The sharded ingestion engine: RSS partition → rings → shard workers
//! → merge under the [`MergeSketch`] contract.
//!
//! This is the paper's multi-core deployment shape (§6/App. B) as a
//! reusable library instead of a simulation: an ingestion thread
//! partitions packets by a hash of the *full* key (RSS discipline —
//! every packet of a flow lands in the same shard), feeds each of `N`
//! workers through a private lock-free SPSC ring in batches, and each
//! worker drains its ring into a private sketch shard via the batched
//! hot path. At the end the shards fold into one queryable sketch via
//! [`MergeSketch::merge_shard`].
//!
//! [`ShardedEngine`] is generic over the shard type: any sketch
//! implementing the merge contract ingests sharded — CocoSketch with
//! the Theorem 1 unbiased bucket merge, Count-Min by element-wise
//! counter addition, Elastic by its vote merge. Sketches that conserve
//! stream weight ([`MergeSketch::conserved_weight`]) have the
//! conservation invariant checked after every merge.
//!
//! Why unbiasedness survives sharding (CocoSketch case): each packet is
//! counted in exactly one shard, every shard is an unbiased CocoSketch
//! over its sub-stream, and the merge resolves per-bucket key conflicts
//! with the Theorem 1 coin — so estimates over the merged sketch are
//! unbiased for the union stream, and the conservation invariant (sum
//! of bucket values == total stream weight) holds exactly.
//!
//! Determinism: shard assignment is a pure hash, each ring is FIFO, and
//! each shard sketch is seeded from the shared master seed, so for a
//! fixed `(trace, config)` the merged sketch is bit-identical across
//! runs regardless of thread scheduling.

use crate::ring::SpscRing;
use cocosketch::{BasicCocoSketch, FlowTable};
use hashkit::{bob_hash, fastrange};
use sketches::MergeSketch;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traffic::{KeyBytes, KeySpec, Trace};

/// Seed of the shard-selection hash. Distinct from every sketch-array
/// seed so shard assignment is independent of bucket placement.
const RSS_SEED: u32 = 0x5255_5353; // "RUSS"

/// Engine configuration. Every shard is built by the same factory
/// call, which is what makes them merge-compatible; `d`/`buckets` are
/// consumed by the CocoSketch factory ([`ShardedCocoSketch::new`]) and
/// ignored by engines built over other shard factories.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (= rings = sketch shards).
    pub threads: usize,
    /// Ring capacity per worker, in packets (power of two).
    pub ring_capacity: usize,
    /// Producer-side staging batch per shard; flushed through
    /// [`SpscRing::push_slice`] so ring atomics amortize over the batch.
    pub batch: usize,
    /// Sketch arrays per shard.
    pub d: usize,
    /// Buckets per array per shard.
    pub buckets: usize,
    /// Encoded key width (13 for the 5-tuple).
    pub key_bytes: usize,
    /// Master seed shared by every shard.
    pub seed: u64,
    /// Pin shard workers to cores (shard `i` → core `i % cores`, see
    /// [`crate::affinity`]) and allocate each shard *after* pinning so
    /// first touch lands its pages on the pinned core's NUMA node.
    /// Best-effort: a failed pin degrades to unpinned ingestion.
    /// Sketch contents are unaffected either way — pinning only moves
    /// where the work runs. With `threads == 1` the *calling* thread
    /// is pinned (and stays pinned after the run).
    pub pin: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            ring_capacity: 4096,
            batch: 256,
            d: 2,
            buckets: 8192,
            key_bytes: KeySpec::FIVE_TUPLE.key_bytes(),
            seed: 0xC0C0,
            pin: false,
        }
    }
}

/// The outcome of one engine run.
#[derive(Debug)]
pub struct EngineRun<S = BasicCocoSketch> {
    /// The merged sketch (query it, walk its records).
    pub sketch: S,
    /// Packets processed (always the whole input; the producer retries
    /// on ring backpressure rather than dropping).
    pub processed: u64,
    /// Per-shard processed counts, for load-balance diagnostics.
    pub per_shard: Vec<u64>,
    /// Wall time of the ingest (excludes the final merge).
    pub elapsed: Duration,
    /// Wall-clock ingest rate in million packets per second.
    pub mpps: f64,
}

impl<S: MergeSketch> EngineRun<S> {
    /// Hand the merged sketch's records to the query plane: a
    /// [`FlowTable`] over `full` (the spec the ingested keys were
    /// projected under), ready for `query_all`/`query_partial`
    /// aggregation of any partial key.
    pub fn flow_table(&self, full: KeySpec) -> FlowTable {
        FlowTable::new(full, self.sketch.records())
    }
}

/// Fold `shards` into one sketch under the merge contract, then check
/// the conservation claim (when the sketch makes one) against the
/// ingested weight. Shared by [`ShardedEngine::run`] and
/// [`crate::EngineSession::collect`]; both failure modes are
/// constructively unreachable for engine-built shards, so they funnel
/// through the invariant panic.
pub(crate) fn merge_shards<S: MergeSketch>(shards: Vec<S>, ingested_weight: u64) -> S {
    let mut iter = shards.into_iter();
    let mut acc = match iter.next() {
        Some(first) => first,
        None => hashkit::invariant::violated("engines have at least one shard"),
    };
    for shard in iter {
        if let Err(e) = acc.merge_shard(shard) {
            hashkit::invariant::violated_err("shards share one factory by construction", &e);
        }
    }
    if let Some(claimed) = acc.conserved_weight() {
        if claimed != ingested_weight {
            hashkit::invariant::violated(&format!(
                "merged sketch conserves the stream weight \
                 (claims {claimed}, ingested {ingested_weight})"
            ));
        }
    }
    acc
}

/// The sharded ingestion engine, generic over the shard sketch.
/// Construct once, [`run`](Self::run) per trace.
pub struct ShardedEngine<S> {
    config: EngineConfig,
    factory: Arc<dyn Fn() -> S + Send + Sync>,
}

/// The CocoSketch instantiation of [`ShardedEngine`] — the engine the
/// CLI and benches deploy.
pub type ShardedCocoSketch = ShardedEngine<BasicCocoSketch>;

impl<S: MergeSketch + 'static> ShardedEngine<S> {
    /// An engine whose shards are built by `factory`. Every call to
    /// `factory` must produce merge-compatible sketches (same
    /// constructor arguments) — the merge contract's requirement.
    pub fn with_factory(
        config: EngineConfig,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        assert!(config.threads > 0, "need at least one worker thread");
        assert!(config.batch > 0, "producer batch must be positive");
        assert!(
            config.ring_capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        Self {
            config,
            factory: Arc::new(factory),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shard factory (shared with [`crate::EngineSession`]).
    pub(crate) fn factory(&self) -> Arc<dyn Fn() -> S + Send + Sync> {
        Arc::clone(&self.factory)
    }

    /// Which shard a key's packets go to: full-key hash, reduced
    /// division-free. Pure, so every packet of a flow agrees.
    #[inline]
    pub fn shard_of(key: &KeyBytes, threads: usize) -> usize {
        if threads == 1 {
            return 0;
        }
        fastrange(bob_hash(key.as_slice(), RSS_SEED), threads)
    }

    fn make_shard(&self) -> S {
        (self.factory)()
    }

    /// Ingest pre-projected packets and return the merged sketch.
    pub fn run(&self, packets: &[(KeyBytes, u64)]) -> EngineRun<S> {
        let cfg = self.config;
        if cfg.threads == 1 {
            // Single shard: no ring, no thread — the batched hot path
            // on the caller's thread is the honest baseline. Pin (when
            // asked) before allocating the shard: first touch then
            // happens on the pinned core.
            if cfg.pin {
                let _ = crate::affinity::pin_current_thread(crate::affinity::core_for_shard(0));
            }
            let mut sketch = self.make_shard();
            let start = Instant::now();
            sketch.update_batch(packets);
            let elapsed = start.elapsed();
            let processed = packets.len() as u64;
            let weight: u64 = packets.iter().map(|&(_, w)| w).sum();
            let sketch = merge_shards(vec![sketch], weight);
            return EngineRun {
                sketch,
                processed,
                per_shard: vec![processed],
                elapsed,
                mpps: processed as f64 / elapsed.as_secs_f64().max(1e-12) / 1e6,
            };
        }

        let rings: Vec<SpscRing<(KeyBytes, u64)>> = (0..cfg.threads)
            .map(|_| SpscRing::new(cfg.ring_capacity))
            .collect();
        let done = AtomicBool::new(false);

        let start = Instant::now();
        let (shards, per_shard, weight) = std::thread::scope(|scope| {
            let workers: Vec<_> = rings
                .iter()
                .enumerate()
                .map(|(idx, ring)| {
                    let done = &done;
                    let factory = self.factory();
                    scope.spawn(move || {
                        // Pin first, then build the shard *on the
                        // worker*: first-touch allocation places the
                        // bucket lines on the pinned core's NUMA node.
                        // Best-effort — a refused pin (cpuset) just
                        // runs this worker unpinned.
                        if cfg.pin {
                            let _ = crate::affinity::pin_current_thread(
                                crate::affinity::core_for_shard(idx),
                            );
                        }
                        let mut sketch = factory();
                        let mut chunk: Vec<(KeyBytes, u64)> = Vec::with_capacity(cfg.batch);
                        let mut processed = 0u64;
                        let mut weight = 0u64;
                        loop {
                            chunk.clear();
                            if ring.pop_chunk(&mut chunk, cfg.batch) > 0 {
                                sketch.update_batch(&chunk);
                                processed += chunk.len() as u64;
                                weight += chunk.iter().map(|&(_, w)| w).sum::<u64>();
                            } else if done.load(Ordering::Acquire) && ring.is_empty() {
                                break;
                            } else {
                                // PMD discipline is busy-polling; yield
                                // so oversubscribed hosts still make
                                // progress.
                                std::thread::yield_now();
                            }
                        }
                        (sketch, processed, weight)
                    })
                })
                .collect();

            // Producer: stage per shard, flush full batches through
            // push_slice so one atomic pair covers the whole batch.
            let mut stages: Vec<Vec<(KeyBytes, u64)>> = (0..cfg.threads)
                .map(|_| Vec::with_capacity(cfg.batch))
                .collect();
            let flush = |shard: usize, stage: &mut Vec<(KeyBytes, u64)>| {
                let mut sent = 0usize;
                while sent < stage.len() {
                    let pushed = rings[shard].push_slice(&stage[sent..]); // LINT: bounded(shard < threads = rings.len(); sent < stage.len() loop condition)
                    if pushed == 0 {
                        std::thread::yield_now();
                    }
                    sent += pushed;
                }
                stage.clear();
            };
            for p in packets {
                let shard = Self::shard_of(&p.0, cfg.threads);
                stages[shard].push(*p); // LINT: bounded(shard_of() < threads = stages.len())
                                        // LINT: bounded(same shard_of() bound)
                if stages[shard].len() == cfg.batch {
                    flush(shard, &mut stages[shard]); // LINT: bounded(same shard_of() bound)
                }
            }
            for (shard, stage) in stages.iter_mut().enumerate() {
                flush(shard, stage);
            }
            done.store(true, Ordering::Release);

            let mut shards = Vec::with_capacity(cfg.threads);
            let mut per_shard = Vec::with_capacity(cfg.threads);
            let mut weight = 0u64;
            for w in workers {
                let (sketch, processed, shard_weight) = match w.join() {
                    Ok(result) => result,
                    // A worker panic is a bug in the shard update path
                    // itself; re-raise it with its original payload.
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                shards.push(sketch);
                per_shard.push(processed);
                weight += shard_weight;
            }
            (shards, per_shard, weight)
        });
        let elapsed = start.elapsed();

        let processed: u64 = per_shard.iter().sum();
        let sketch = merge_shards(shards, weight);
        EngineRun {
            sketch,
            processed,
            per_shard,
            elapsed,
            mpps: processed as f64 / elapsed.as_secs_f64().max(1e-12) / 1e6,
        }
    }

    /// Convenience: project a trace under `spec` and ingest it.
    pub fn run_trace(&self, trace: &Trace, spec: &KeySpec) -> EngineRun<S> {
        let packets: Vec<(KeyBytes, u64)> = trace
            .packets
            .iter()
            .map(|p| (spec.project(&p.flow), u64::from(p.weight)))
            .collect();
        self.run(&packets)
    }
}

impl ShardedEngine<BasicCocoSketch> {
    /// A CocoSketch engine: every shard is a
    /// [`BasicCocoSketch`] built from the config's
    /// `d`/`buckets`/`key_bytes`/`seed`.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_factory(config, move || {
            BasicCocoSketch::new(config.d, config.buckets, config.key_bytes, config.seed)
        })
    }

    /// Size each shard to `mem_bytes / threads`, mirroring how a real
    /// deployment splits one memory budget across Rx queues.
    pub fn with_memory(mem_bytes: usize, mut config: EngineConfig) -> Self {
        let probe = BasicCocoSketch::with_memory(
            mem_bytes / config.threads.max(1),
            config.d,
            config.key_bytes,
            config.seed,
        );
        config.buckets = probe.dims().1;
        Self::new(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::{CmHeap, ElasticSketch, Sketch};
    use traffic::gen::{generate, TraceConfig};

    fn packets(n: usize) -> Vec<(KeyBytes, u64)> {
        let t = generate(&TraceConfig {
            packets: n,
            flows: n / 20,
            ..TraceConfig::default()
        });
        t.packets
            .iter()
            .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
            .collect()
    }

    #[test]
    fn conserves_total_weight_across_thread_counts() {
        let pkts = packets(30_000);
        let total: u64 = pkts.iter().map(|&(_, w)| w).sum();
        for threads in [1, 2, 3, 4] {
            let run = ShardedCocoSketch::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            })
            .run(&pkts);
            assert_eq!(run.processed, pkts.len() as u64);
            assert_eq!(
                run.sketch.total_value(),
                total,
                "conservation broke at {threads} threads"
            );
        }
    }

    #[test]
    fn shard_affinity_is_total_and_stable() {
        let pkts = packets(1_000);
        for &(key, _) in &pkts {
            let s = ShardedCocoSketch::shard_of(&key, 4);
            assert!(s < 4);
            assert_eq!(s, ShardedCocoSketch::shard_of(&key, 4));
        }
    }

    #[test]
    fn backpressure_is_lossless() {
        let pkts = packets(20_000);
        let run = ShardedCocoSketch::new(EngineConfig {
            threads: 2,
            ring_capacity: 64,
            batch: 32,
            ..EngineConfig::default()
        })
        .run(&pkts);
        assert_eq!(run.processed, pkts.len() as u64, "retries, not drops");
    }

    #[test]
    fn with_memory_splits_budget() {
        let eng = ShardedCocoSketch::with_memory(
            512 * 1024,
            EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            },
        );
        let single = BasicCocoSketch::with_memory(128 * 1024, 2, 13, 0xC0C0);
        assert_eq!(eng.config().buckets, single.dims().1);
    }

    #[test]
    fn flow_table_bridge_queries_the_merged_sketch() {
        let pkts = packets(5_000);
        let total: u64 = pkts.iter().map(|&(_, w)| w).sum();
        let run = ShardedCocoSketch::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
        .run(&pkts);
        let table = run.flow_table(KeySpec::FIVE_TUPLE);
        assert_eq!(table.total(), total, "records conserve the stream weight");
        let maps = table.query_all(&KeySpec::PAPER_SIX);
        assert!(maps.iter().all(|m| m.values().sum::<u64>() == total));
    }

    #[test]
    fn run_trace_matches_manual_projection() {
        let t = generate(&TraceConfig {
            packets: 5_000,
            flows: 200,
            ..TraceConfig::default()
        });
        let eng = ShardedCocoSketch::new(EngineConfig::default());
        let a = eng.run_trace(&t, &KeySpec::FIVE_TUPLE);
        let manual: Vec<(KeyBytes, u64)> = t
            .packets
            .iter()
            .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
            .collect();
        let b = eng.run(&manual);
        let mut ra = a.sketch.records();
        let mut rb = b.sketch.records();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
    }

    #[test]
    fn cm_heap_ingests_sharded_with_conservation() {
        // A non-Coco shard type through the same engine: Count-Min
        // conserves weight exactly, so the engine's built-in
        // conservation check runs (a mismatch would panic).
        let pkts = packets(20_000);
        let key_bytes = KeySpec::FIVE_TUPLE.key_bytes();
        let total: u64 = pkts.iter().map(|&(_, w)| w).sum();
        for threads in [1, 2, 4] {
            let eng = ShardedEngine::with_factory(
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
                move || CmHeap::with_memory(64 * 1024, key_bytes, 0xC0C0),
            );
            let run = eng.run(&pkts);
            assert_eq!(run.processed, pkts.len() as u64);
            assert_eq!(run.sketch.conserved_weight(), Some(total));
        }
    }

    #[test]
    fn elastic_ingests_sharded() {
        let pkts = packets(20_000);
        let key_bytes = KeySpec::FIVE_TUPLE.key_bytes();
        let single = {
            let mut e = ElasticSketch::with_memory(128 * 1024, key_bytes, 0xC0C0);
            e.update_batch(&pkts);
            e
        };
        let eng = ShardedEngine::with_factory(
            EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            },
            move || ElasticSketch::with_memory(128 * 1024, key_bytes, 0xC0C0),
        );
        let run = eng.run(&pkts);
        assert_eq!(run.processed, pkts.len() as u64);
        // Elastic makes no conservation claim (8-bit light counters),
        // but the sharded heavy part must still find the elephants the
        // single-threaded sketch finds.
        let mut top: Vec<(KeyBytes, u64)> = single.records();
        top.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v));
        for &(key, est) in top.iter().take(5) {
            let got = run.sketch.query(&key);
            let rel = (got as f64 - est as f64).abs() / est.max(1) as f64;
            assert!(
                rel < 0.25,
                "elephant {est} estimated {got} after shard merge"
            );
        }
    }

    #[test]
    fn generic_run_matches_coco_run_bit_for_bit() {
        // The generalization must not perturb the existing CocoSketch
        // path: a factory-built engine with the same parameters yields
        // the identical merged sketch.
        let pkts = packets(10_000);
        let cfg = EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        };
        let a = ShardedCocoSketch::new(cfg).run(&pkts);
        let b = ShardedEngine::with_factory(cfg, move || {
            BasicCocoSketch::new(cfg.d, cfg.buckets, cfg.key_bytes, cfg.seed)
        })
        .run(&pkts);
        let mut ra = a.sketch.records();
        let mut rb = b.sketch.records();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
    }
}

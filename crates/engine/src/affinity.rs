//! Shard-to-core pinning: a minimal, libc-free `sched_setaffinity(2)`
//! wrapper, Linux x86-64 only and a reported no-op everywhere else.
//!
//! Why the engine pins: the shard workers are busy-polling PMD-style
//! loops whose working set (the shard's bucket lines plus its ring) is
//! sized to stay cache-resident. Letting the scheduler migrate a worker
//! invalidates that working set and, on multi-socket hosts, can strand
//! the shard's pages on a remote NUMA node. Pinning each worker to one
//! core *before* the shard is allocated gives first-touch allocation on
//! the pinned core's node — the shard's memory is local for the whole
//! run.
//!
//! Why no libc: the workspace builds hermetically with zero external
//! crates, so the syscall is issued directly with inline assembly. The
//! surface is deliberately tiny — set the calling thread's affinity to
//! a single CPU — and the one `unsafe` block is SAFETY-audited below
//! and covered by cocolint's safety-comment rule.
//!
//! Pinning is always best-effort: a failed pin (container cpuset
//! restrictions, exotic kernels) degrades to unpinned ingestion, never
//! to an error the data plane has to handle mid-stream. Callers that
//! care inspect the returned [`PinError`].

use std::fmt;

/// Highest CPU index expressible in the affinity mask: 1024 CPUs, the
/// same set size glibc's `cpu_set_t` defaults to.
pub const MAX_CPUS: usize = 1024;

/// Why a pin request was not applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinError {
    /// The requested core index is `>= MAX_CPUS`.
    CoreOutOfRange(usize),
    /// The kernel rejected the call; the payload is the `errno` value
    /// (commonly `EINVAL` when the core is outside the cpuset cgroup).
    Os(i32),
    /// Not Linux x86-64: pinning is unsupported on this target and the
    /// engine runs unpinned.
    Unsupported,
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::CoreOutOfRange(core) => {
                write!(f, "core {core} out of range (max {MAX_CPUS})")
            }
            PinError::Os(errno) => write!(f, "sched_setaffinity failed with errno {errno}"),
            PinError::Unsupported => write!(f, "thread pinning unsupported on this target"),
        }
    }
}

impl std::error::Error for PinError {}

/// Pin the calling thread to `core`.
///
/// The affinity persists for the thread's lifetime (the engine pins
/// worker threads it owns; the single-thread path pins the caller,
/// which `measure --pin` opts into knowingly).
pub fn pin_current_thread(core: usize) -> Result<(), PinError> {
    if core >= MAX_CPUS {
        return Err(PinError::CoreOutOfRange(core));
    }
    imp::pin(core)
}

/// Usable cores on this host, minimum 1. Falls back to 1 when the
/// parallelism probe is unavailable (it needs no entropy or clock, so
/// this stays deterministic).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The core shard `shard` lands on under the engine's round-robin
/// layout: shard *i* → core `i % cores`. One shard per core until the
/// host runs out, then wrap — the layout the throughput bench records
/// in its JSON.
pub fn core_for_shard(shard: usize) -> usize {
    shard % available_cores().max(1)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::{PinError, MAX_CPUS};

    /// `sched_setaffinity` syscall number on x86-64.
    const SYS_SCHED_SETAFFINITY: i64 = 203;

    pub(super) fn pin(core: usize) -> Result<(), PinError> {
        let mut mask = [0u64; MAX_CPUS / 64];
        mask[core >> 6] |= 1u64 << (core & 63); // LINT: bounded(core < MAX_CPUS checked by the caller, so core >> 6 < MAX_CPUS/64 = mask.len())
        let ret: i64;
        // SAFETY: sched_setaffinity(pid=0, len, mask) only *reads*
        // `len` bytes from `mask`, which is a live local of exactly
        // `size_of_val(&mask)` bytes for the whole call; pid 0 means
        // the calling thread, so no other thread's state is touched.
        // The `syscall` instruction clobbers rcx/r11 (declared) and
        // writes only rax (the return slot). No Rust memory is written,
        // no allocation happens, and the stack is not used (nostack).
        #[allow(unsafe_code)]
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
                in("rdi") 0usize,
                in("rsi") core::mem::size_of_val(&mask),
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret < 0 {
            Err(PinError::Os(-ret as i32))
        } else {
            Ok(())
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::PinError;

    pub(super) fn pin(_core: usize) -> Result<(), PinError> {
        Err(PinError::Unsupported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_is_rejected_before_the_syscall() {
        assert_eq!(
            pin_current_thread(MAX_CPUS),
            Err(PinError::CoreOutOfRange(MAX_CPUS))
        );
        assert_eq!(
            pin_current_thread(usize::MAX),
            Err(PinError::CoreOutOfRange(usize::MAX))
        );
    }

    #[test]
    fn pinning_to_core_zero_works_on_linux() {
        // Core 0 exists on every host this runs on. On non-Linux
        // targets the call reports Unsupported instead.
        let r = pin_current_thread(0);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            // A cpuset-restricted container may exclude core 0; accept
            // an OS error but not out-of-range/unsupported.
            assert!(
                matches!(r, Ok(()) | Err(PinError::Os(_))),
                "unexpected pin result {r:?}"
            );
        } else {
            assert_eq!(r, Err(PinError::Unsupported));
        }
    }

    #[test]
    fn round_robin_layout_covers_all_cores() {
        let cores = available_cores();
        assert!(cores >= 1);
        for shard in 0..(2 * cores) {
            assert_eq!(core_for_shard(shard), shard % cores);
        }
    }

    #[test]
    fn errors_render() {
        assert!(PinError::CoreOutOfRange(9999).to_string().contains("9999"));
        assert!(PinError::Os(22).to_string().contains("22"));
        assert!(!PinError::Unsupported.to_string().is_empty());
    }
}

//! Exhaustive model-checking of the engine's unsafe data plane.
//!
//! Compiled only with `--features heavy-tests` (which enables the
//! `loom` feature): [`engine::SpscRing`] is then built against the
//! model checker's tracked primitives (see `engine/src/sync.rs`), so
//! every test here interleaves the *real* ring implementation under
//! all schedules within the checker's preemption bound, with
//! vector-clock race detection on every slot access. A missing
//! acquire/release edge or a slot handed to both sides at once fails
//! these tests on every schedule, not just the unlucky ones.
//!
//! Models stay tiny on purpose (capacity ≤ 4, a handful of items):
//! the schedule tree grows exponentially in the number of tracked
//! operations, and small models already cover the interesting index
//! arithmetic (wraparound included). Each test asserts
//! `Report::complete`, so the exhaustiveness claim is checked, not
//! assumed.

#![cfg(feature = "loom")]

use engine::{Cmd, SealSlot, SpscRing};
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::Builder;
use traffic::KeyBytes;

fn check_exhaustive(f: impl Fn() + Send + Sync + 'static) {
    let report = Builder::new().check(f);
    assert!(
        report.complete,
        "model did not exhaust its schedule tree ({} iterations)",
        report.iterations
    );
}

/// Concurrent push/pop with no retries: the producer's pushes always
/// fit, the consumer records whatever it manages to steal, and after
/// the join the drain must deliver the rest — FIFO, nothing lost,
/// nothing duplicated, on every schedule.
#[test]
fn concurrent_push_pop_preserves_fifo() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(2));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            r2.push(1).unwrap();
            r2.push(2).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Some(v) = ring.pop() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        while let Some(v) = ring.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2]);
    });
}

/// Wraparound under concurrency: the indices are pre-advanced past the
/// capacity so the concurrent phase exercises wrapped slot reuse, the
/// case where a missing tail-acquire would let the producer overwrite
/// a slot the consumer is still reading.
#[test]
fn wraparound_slot_reuse_is_race_free() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(2));
        // Advance head/tail to the wrap boundary, single-threaded.
        ring.push(90).unwrap();
        ring.push(91).unwrap();
        assert_eq!(ring.pop(), Some(90));
        assert_eq!(ring.pop(), Some(91));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            let mut sent = 0;
            for i in 0..3u64 {
                if r2.push(i).is_ok() {
                    sent += 1;
                } else {
                    // Full: the consumer has not caught up; don't spin.
                    break;
                }
            }
            sent
        });
        let mut got = Vec::new();
        if let Some(v) = ring.pop() {
            got.push(v);
        }
        let sent = producer.join().unwrap();
        while let Some(v) = ring.pop() {
            got.push(v);
        }
        let expect: Vec<u64> = (0..sent).collect();
        assert_eq!(got, expect, "wrapped transfer lost or reordered items");
    });
}

/// The bulk operations move whole batches under one head/tail update;
/// partial acceptance on a full ring and partial drains must still
/// compose to an exact FIFO transfer.
#[test]
fn bulk_push_slice_pop_chunk_preserve_fifo() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(4));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            let items = [1u64, 2, 3];
            let mut sent = r2.push_slice(&items);
            // One retry for the tail of the batch (bounded, no spin).
            if sent < items.len() {
                sent += r2.push_slice(&items[sent..]);
            }
            sent as u64
        });
        let mut got = Vec::new();
        ring.pop_chunk(&mut got, 2);
        let sent = producer.join().unwrap();
        ring.pop_chunk(&mut got, 8);
        let expect: Vec<u64> = (1..=sent).collect();
        assert_eq!(got, expect, "bulk transfer lost or reordered items");
    });
}

/// Dropping a ring that still holds items (a worker shutting down with
/// packets in flight) must be clean on every schedule.
#[test]
fn drop_non_empty_ring_after_handoff() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(4));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            r2.push(7).unwrap();
            r2.push(8).unwrap();
        });
        let first = ring.pop();
        producer.join().unwrap();
        if let Some(v) = first {
            assert_eq!(v, 7);
        }
        // 1–2 items still queued; both Arc clones drop here.
    });
}

/// The sharded-merge shutdown handoff (`engine::sharded`): the
/// producer flushes its staging buffer into the ring and then sets
/// `done` with Release; a worker that observes `done` with Acquire and
/// drains once more must see *every* item — the protocol's guarantee
/// that no packet is lost at collection time.
#[test]
fn sharded_handoff_drains_everything() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(2));
        let done = Arc::new(AtomicBool::new(false));
        let (r2, d2) = (ring.clone(), done.clone());
        let producer = loom::thread::spawn(move || {
            let items = [1u64, 2, 3];
            let mut sent = 0;
            while sent < items.len() {
                let pushed = r2.push_slice(&items[sent..]);
                sent += pushed;
                if pushed == 0 {
                    loom::thread::yield_now();
                }
            }
            d2.store(true, Ordering::Release);
        });
        // The worker loop from `sharded::run`, in miniature.
        let mut got = Vec::new();
        loop {
            let drained = ring.pop_chunk(&mut got, 8);
            if drained == 0 {
                if done.load(Ordering::Acquire) {
                    // Final drain: everything pushed before `done` was
                    // set is ordered before this by Release/Acquire.
                    ring.pop_chunk(&mut got, 8);
                    break;
                }
                loom::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2, 3], "handoff lost items at shutdown");
    });
}

fn pkt(w: u64) -> Cmd {
    Cmd::Pkt(KeyBytes::new(&[w as u8]), w)
}

/// The rotation protocol (`engine::session`) in miniature: the
/// producer pushes packets, an **in-band** seal marker, and more
/// packets, without ever pausing; the worker splits its stream at the
/// marker and hands epoch 0 through a [`SealSlot`] while epoch 1 keeps
/// accumulating. On every schedule the boundary must be exact (packets
/// pushed before the seal land in epoch 0, after it in epoch 1 — FIFO
/// through the ring) and the union must conserve the stream weight.
#[test]
fn seal_during_push_keeps_fifo_and_conservation() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<Cmd>> = Arc::new(SpscRing::new(4));
        let slot: Arc<SealSlot<Vec<u64>>> = Arc::new(SealSlot::new());
        let (r2, s2) = (ring.clone(), slot.clone());
        let worker = loom::thread::spawn(move || {
            let mut epoch = Vec::new();
            let mut seen = 0;
            while seen < 4 {
                if let Some(cmd) = r2.pop() {
                    seen += 1;
                    match cmd {
                        Cmd::Pkt(_, w) => epoch.push(w),
                        Cmd::Seal => s2.put(std::mem::take(&mut epoch)),
                    }
                } else {
                    loom::thread::yield_now();
                }
            }
            epoch // the next epoch's packets, still accumulating
        });
        // Producer: the seal marker queues behind packets 1 and 2 and
        // ahead of packet 3 — rotation without stopping ingestion.
        for cmd in [pkt(1), pkt(2), Cmd::Seal, pkt(3)] {
            let mut c = cmd;
            while let Err(back) = ring.push(c) {
                c = back;
                loom::thread::yield_now();
            }
        }
        // Collector: blocks until the worker hands epoch 0 over.
        let sealed = slot.take();
        let next = worker.join().unwrap();
        assert_eq!(sealed, vec![1, 2], "epoch boundary moved");
        assert_eq!(next, vec![3], "post-seal packet leaked into epoch 0");
        assert_eq!(
            sealed.iter().sum::<u64>() + next.iter().sum::<u64>(),
            6,
            "rotation lost weight"
        );
    });
}

/// Slot reuse across consecutive epochs: the one-deep cell must
/// alternate ownership cleanly — a second `put` waits for the first
/// `take`, and values never mix, on every schedule.
#[test]
fn seal_slot_reuse_across_epochs() {
    check_exhaustive(|| {
        let slot: Arc<SealSlot<u64>> = Arc::new(SealSlot::new());
        let s2 = slot.clone();
        let worker = loom::thread::spawn(move || {
            s2.put(10); // epoch 0
            s2.put(20); // epoch 1: waits until the collector drained 10
        });
        assert_eq!(slot.take(), 10, "epochs reordered in the slot");
        assert_eq!(slot.take(), 20);
        worker.join().unwrap();
    });
}

/// A worker that panics between `put`s must not corrupt the slot's
/// hand-off state for the value it already published.
#[test]
fn seal_slot_value_survives_collector_delay() {
    check_exhaustive(|| {
        let slot: Arc<SealSlot<Vec<u64>>> = Arc::new(SealSlot::new());
        let s2 = slot.clone();
        let worker = loom::thread::spawn(move || {
            s2.put(vec![1, 2, 3]);
        });
        worker.join().unwrap();
        // Taking strictly after the join: the release/acquire pair on
        // the slot state (not the join) is what publishes the vec's
        // heap contents; the drained value must be intact.
        assert_eq!(slot.take(), vec![1, 2, 3]);
    });
}

/// Ordering-weakening mutation, shown to fail: [`SealSlot`] publishes
/// with a release-store and takes after an acquire-load. This model
/// re-implements the hand-off with `Relaxed` on both sides — the
/// checker's vector-clock race detector must flag the unsynchronized
/// cell access pair, proving the orderings in the real implementation
/// are load-bearing rather than decorative.
#[test]
fn relaxed_seal_publish_mutation_fails() {
    use loom::cell::UnsafeCell;

    struct WeakSlot {
        state: AtomicUsize,
        value: UnsafeCell<u64>,
    }
    // SAFETY: test-only — deliberately unsound mutation under test; the
    // Relaxed hand-off below is the bug the checker must catch.
    unsafe impl Sync for WeakSlot {}

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Builder::new().check(|| {
            let slot = Arc::new(WeakSlot {
                state: AtomicUsize::new(0),
                value: UnsafeCell::new(0),
            });
            let s2 = slot.clone();
            let putter = loom::thread::spawn(move || {
                s2.value.with_mut(|p| {
                    // SAFETY: test-only — the racy write under test.
                    unsafe { *p = 7 };
                });
                s2.state.store(1, Ordering::Relaxed); // MUTATION: was Release
            });
            loop {
                // MUTATION: was Acquire.
                if slot.state.load(Ordering::Relaxed) == 1 {
                    let v = slot.value.with(|p| {
                        // SAFETY: test-only — the racy read under test.
                        unsafe { *p }
                    });
                    assert_eq!(v, 7);
                    break;
                }
                loom::thread::yield_now();
            }
            putter.join().unwrap();
        });
    }));
    assert!(
        result.is_err(),
        "the Relaxed hand-off mutation must be caught as a data race"
    );
}

//! Exhaustive model-checking of the engine's unsafe data plane.
//!
//! Compiled only with `--features heavy-tests` (which enables the
//! `loom` feature): [`engine::SpscRing`] is then built against the
//! model checker's tracked primitives (see `engine/src/sync.rs`), so
//! every test here interleaves the *real* ring implementation under
//! all schedules within the checker's preemption bound, with
//! vector-clock race detection on every slot access. A missing
//! acquire/release edge or a slot handed to both sides at once fails
//! these tests on every schedule, not just the unlucky ones.
//!
//! Models stay tiny on purpose (capacity ≤ 4, a handful of items):
//! the schedule tree grows exponentially in the number of tracked
//! operations, and small models already cover the interesting index
//! arithmetic (wraparound included). Each test asserts
//! `Report::complete`, so the exhaustiveness claim is checked, not
//! assumed.

#![cfg(feature = "loom")]

use engine::SpscRing;
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;
use loom::Builder;

fn check_exhaustive(f: impl Fn() + Send + Sync + 'static) {
    let report = Builder::new().check(f);
    assert!(
        report.complete,
        "model did not exhaust its schedule tree ({} iterations)",
        report.iterations
    );
}

/// Concurrent push/pop with no retries: the producer's pushes always
/// fit, the consumer records whatever it manages to steal, and after
/// the join the drain must deliver the rest — FIFO, nothing lost,
/// nothing duplicated, on every schedule.
#[test]
fn concurrent_push_pop_preserves_fifo() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(2));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            r2.push(1).unwrap();
            r2.push(2).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Some(v) = ring.pop() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        while let Some(v) = ring.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2]);
    });
}

/// Wraparound under concurrency: the indices are pre-advanced past the
/// capacity so the concurrent phase exercises wrapped slot reuse, the
/// case where a missing tail-acquire would let the producer overwrite
/// a slot the consumer is still reading.
#[test]
fn wraparound_slot_reuse_is_race_free() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(2));
        // Advance head/tail to the wrap boundary, single-threaded.
        ring.push(90).unwrap();
        ring.push(91).unwrap();
        assert_eq!(ring.pop(), Some(90));
        assert_eq!(ring.pop(), Some(91));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            let mut sent = 0;
            for i in 0..3u64 {
                if r2.push(i).is_ok() {
                    sent += 1;
                } else {
                    // Full: the consumer has not caught up; don't spin.
                    break;
                }
            }
            sent
        });
        let mut got = Vec::new();
        if let Some(v) = ring.pop() {
            got.push(v);
        }
        let sent = producer.join().unwrap();
        while let Some(v) = ring.pop() {
            got.push(v);
        }
        let expect: Vec<u64> = (0..sent).collect();
        assert_eq!(got, expect, "wrapped transfer lost or reordered items");
    });
}

/// The bulk operations move whole batches under one head/tail update;
/// partial acceptance on a full ring and partial drains must still
/// compose to an exact FIFO transfer.
#[test]
fn bulk_push_slice_pop_chunk_preserve_fifo() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(4));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            let items = [1u64, 2, 3];
            let mut sent = r2.push_slice(&items);
            // One retry for the tail of the batch (bounded, no spin).
            if sent < items.len() {
                sent += r2.push_slice(&items[sent..]);
            }
            sent as u64
        });
        let mut got = Vec::new();
        ring.pop_chunk(&mut got, 2);
        let sent = producer.join().unwrap();
        ring.pop_chunk(&mut got, 8);
        let expect: Vec<u64> = (1..=sent).collect();
        assert_eq!(got, expect, "bulk transfer lost or reordered items");
    });
}

/// Dropping a ring that still holds items (a worker shutting down with
/// packets in flight) must be clean on every schedule.
#[test]
fn drop_non_empty_ring_after_handoff() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(4));
        let r2 = ring.clone();
        let producer = loom::thread::spawn(move || {
            r2.push(7).unwrap();
            r2.push(8).unwrap();
        });
        let first = ring.pop();
        producer.join().unwrap();
        if let Some(v) = first {
            assert_eq!(v, 7);
        }
        // 1–2 items still queued; both Arc clones drop here.
    });
}

/// The sharded-merge shutdown handoff (`engine::sharded`): the
/// producer flushes its staging buffer into the ring and then sets
/// `done` with Release; a worker that observes `done` with Acquire and
/// drains once more must see *every* item — the protocol's guarantee
/// that no packet is lost at collection time.
#[test]
fn sharded_handoff_drains_everything() {
    check_exhaustive(|| {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(2));
        let done = Arc::new(AtomicBool::new(false));
        let (r2, d2) = (ring.clone(), done.clone());
        let producer = loom::thread::spawn(move || {
            let items = [1u64, 2, 3];
            let mut sent = 0;
            while sent < items.len() {
                let pushed = r2.push_slice(&items[sent..]);
                sent += pushed;
                if pushed == 0 {
                    loom::thread::yield_now();
                }
            }
            d2.store(true, Ordering::Release);
        });
        // The worker loop from `sharded::run`, in miniature.
        let mut got = Vec::new();
        loop {
            let drained = ring.pop_chunk(&mut got, 8);
            if drained == 0 {
                if done.load(Ordering::Acquire) {
                    // Final drain: everything pushed before `done` was
                    // set is ordered before this by Release/Acquire.
                    ring.pop_chunk(&mut got, 8);
                    break;
                }
                loom::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2, 3], "handoff lost items at shutdown");
    });
}

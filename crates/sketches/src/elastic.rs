//! Elastic Sketch (Yang et al., SIGCOMM 2018), software version.
//!
//! A *heavy part* (hash table of vote-based buckets) separates elephants
//! from mice; a *light part* (single-row 8-bit Count-Min) absorbs the
//! mice and the evicted prefixes of elephants. This is the strongest
//! single-key baseline in the CocoSketch evaluation and the comparison
//! point for the hardware experiments.

use hashkit::HashFamily;
use traffic::KeyBytes;

use crate::traits::{buckets_for, MergeIncompat, MergeSketch, Sketch, COUNTER_BYTES};

/// The eviction threshold λ: a resident flow is ousted once negative
/// votes reach λ× its positive votes (the value used in the Elastic
/// Sketch paper).
const LAMBDA: u64 = 8;

/// One heavy-part bucket.
#[derive(Debug, Clone, Copy, Default)]
struct HeavyBucket {
    key: KeyBytes,
    vote_pos: u64,
    vote_neg: u64,
    /// True when part of this flow's traffic may live in the light part
    /// (it took the bucket over from an evicted flow).
    flag: bool,
    occupied: bool,
}

/// Software Elastic sketch: heavy hash table + light 8-bit CM row.
#[derive(Debug, Clone)]
pub struct ElasticSketch {
    heavy: Vec<HeavyBucket>,
    light: Vec<u8>,
    hashes: HashFamily,
    key_bytes: usize,
}

impl ElasticSketch {
    /// Share of the budget given to the heavy part.
    const HEAVY_SHARE: f64 = 0.5;

    /// Explicit sizes: `heavy_buckets` vote buckets, `light_counters`
    /// 8-bit counters.
    pub fn new(heavy_buckets: usize, light_counters: usize, key_bytes: usize, seed: u64) -> Self {
        assert!(
            heavy_buckets > 0 && light_counters > 0,
            "Elastic parts must be non-empty"
        );
        Self {
            heavy: vec![HeavyBucket::default(); heavy_buckets],
            light: vec![0u8; light_counters],
            hashes: HashFamily::new(2, seed),
            key_bytes,
        }
    }

    /// Size to a memory budget. A heavy bucket stores the key, two vote
    /// counters and a flag bit (charged one byte); light counters are one
    /// byte each.
    pub fn with_memory(mem_bytes: usize, key_bytes: usize, seed: u64) -> Self {
        let heavy_mem = (mem_bytes as f64 * Self::HEAVY_SHARE) as usize;
        let heavy_bucket_bytes = key_bytes + 2 * COUNTER_BYTES + 1;
        let heavy = buckets_for(heavy_mem, heavy_bucket_bytes);
        let light = (mem_bytes - heavy * heavy_bucket_bytes).max(1);
        Self::new(heavy, light, key_bytes, seed)
    }

    fn heavy_bucket_bytes(&self) -> usize {
        self.key_bytes + 2 * COUNTER_BYTES + 1
    }

    #[inline]
    fn light_insert(&mut self, key: &KeyBytes, w: u64) {
        let j = self.hashes.index(1, key.as_slice(), self.light.len());
        self.light[j] = self.light[j].saturating_add(w.min(255) as u8); // LINT: bounded(j = fastrange(<light.len()))
    }

    #[inline]
    fn light_query(&self, key: &KeyBytes) -> u64 {
        let j = self.hashes.index(1, key.as_slice(), self.light.len());
        u64::from(self.light[j]) // LINT: bounded(j = fastrange(<light.len()))
    }
}

impl Sketch for ElasticSketch {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        let i = self.hashes.index(0, key.as_slice(), self.heavy.len());
        let b = &mut self.heavy[i]; // LINT: bounded(i = fastrange(<heavy.len()))
        if !b.occupied {
            *b = HeavyBucket {
                key: *key,
                vote_pos: w,
                vote_neg: 0,
                flag: false,
                occupied: true,
            };
            return;
        }
        if b.key == *key {
            b.vote_pos = b.vote_pos.wrapping_add(w);
            return;
        }
        b.vote_neg = b.vote_neg.wrapping_add(w);
        if b.vote_neg >= LAMBDA * b.vote_pos {
            // Ostracism: the resident flow is demoted to the light part
            // and the challenger takes the bucket. Its earlier packets
            // (if any) are in the light part, hence the flag.
            let evicted_key = b.key;
            let evicted_votes = b.vote_pos;
            *b = HeavyBucket {
                key: *key,
                vote_pos: w,
                vote_neg: 1,
                flag: true,
                occupied: true,
            };
            // Move the evicted flow's votes into the light part in
            // saturating 255-sized steps (8-bit counters).
            let mut rest = evicted_votes;
            while rest > 0 {
                let step = rest.min(255);
                self.light_insert(&evicted_key, step);
                rest -= step;
            }
        } else {
            self.light_insert(key, w);
        }
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        let i = self.hashes.index(0, key.as_slice(), self.heavy.len());
        let b = &self.heavy[i]; // LINT: bounded(i = fastrange(<heavy.len()))
        if b.occupied && b.key == *key {
            b.vote_pos
                .wrapping_add(if b.flag { self.light_query(key) } else { 0 })
        } else {
            self.light_query(key)
        }
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.heavy
            .iter()
            .filter(|b| b.occupied)
            .map(|b| {
                let light = if b.flag { self.light_query(&b.key) } else { 0 };
                (b.key, b.vote_pos.wrapping_add(light))
            })
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.heavy.len() * self.heavy_bucket_bytes() + self.light.len()
    }

    fn name(&self) -> &'static str {
        "Elastic"
    }
}

impl MergeSketch for ElasticSketch {
    /// Heavy buckets merge pairwise (Elastic's own TCAM-merge rule):
    /// same resident flow sums votes; colliding residents keep the one
    /// with more positive votes and demote the loser's votes to the
    /// light part, exactly as a runtime eviction would. Light counters
    /// add saturating at 255.
    ///
    /// `conserved_weight` stays `None`: once any 8-bit light counter
    /// saturates, weight is irrecoverably dropped, so Elastic cannot
    /// assert the conservation invariant.
    fn merge_shard(&mut self, other: Self) -> Result<(), MergeIncompat> {
        if self.heavy.len() != other.heavy.len()
            || self.light.len() != other.light.len()
            || self.key_bytes != other.key_bytes
        {
            return Err(MergeIncompat(format!(
                "Elastic {}h/{}l/{}B vs {}h/{}l/{}B",
                self.heavy.len(),
                self.light.len(),
                self.key_bytes,
                other.heavy.len(),
                other.light.len(),
                other.key_bytes
            )));
        }
        for i in 0..2 {
            if self.hashes.seed(i) != other.hashes.seed(i) {
                return Err(MergeIncompat(format!("Elastic hash-{i} seed differs")));
            }
        }
        for (mine, theirs) in self.light.iter_mut().zip(&other.light) {
            *mine = mine.saturating_add(*theirs);
        }
        for i in 0..self.heavy.len() {
            let theirs = other.heavy[i]; // LINT: bounded(i < heavy.len(), equal lengths checked above)
            if !theirs.occupied {
                continue;
            }
            let mine = self.heavy[i]; // LINT: bounded(i < heavy.len())
            if !mine.occupied {
                self.heavy[i] = theirs; // LINT: bounded(i < heavy.len())
                continue;
            }
            if mine.key == theirs.key {
                let b = &mut self.heavy[i]; // LINT: bounded(i < heavy.len())
                b.vote_pos = b.vote_pos.wrapping_add(theirs.vote_pos);
                b.vote_neg = b.vote_neg.wrapping_add(theirs.vote_neg);
                b.flag |= theirs.flag;
                continue;
            }
            // Colliding residents: larger vote_pos wins (ties keep the
            // incumbent, so merge order is deterministic); the loser is
            // demoted like a runtime eviction — its positive votes move
            // to the light part and count as votes against the winner.
            let (winner, loser) = if theirs.vote_pos > mine.vote_pos {
                (theirs, mine)
            } else {
                (mine, theirs)
            };
            // LINT: bounded(i < heavy.len())
            self.heavy[i] = HeavyBucket {
                vote_neg: winner
                    .vote_neg
                    .wrapping_add(loser.vote_neg)
                    .wrapping_add(loser.vote_pos),
                ..winner
            };
            let mut rest = loser.vote_pos;
            while rest > 0 {
                let step = rest.min(255);
                self.light_insert(&loser.key, step);
                rest -= step;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn single_flow_exact() {
        let mut e = ElasticSketch::new(64, 1024, 4, 1);
        for _ in 0..100 {
            e.update(&k(1), 1);
        }
        assert_eq!(e.query(&k(1)), 100);
    }

    #[test]
    fn heavy_flow_beats_challengers() {
        let mut e = ElasticSketch::new(1, 1024, 4, 2);
        // Interleave a dominant flow with scattered mice; with one bucket
        // everyone collides, but the elephant's votes grow faster than
        // λ× the mice's.
        for step in 0..10_000u32 {
            e.update(&k(1), 1);
            if step % 10 == 0 {
                e.update(&k(100 + step), 1);
            }
        }
        let est = e.query(&k(1));
        assert!(est >= 10_000, "elephant estimate {est}");
    }

    #[test]
    fn eviction_moves_votes_to_light() {
        let mut e = ElasticSketch::new(1, 1024, 4, 3);
        e.update(&k(1), 2); // resident with 2 votes
                            // Challenger floods: vote_neg reaches λ * vote_pos.
        for _ in 0..16 {
            e.update(&k(2), 1);
        }
        // k2 must now own the bucket; k1's votes live in the light part.
        let recs = e.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, k(2));
        assert!(e.query(&k(1)) >= 2, "evicted votes must be queryable");
    }

    #[test]
    fn flag_adds_light_share() {
        let mut e = ElasticSketch::new(1, 1024, 4, 4);
        // k1 becomes resident, k2 sends some pre-takeover packets (to the
        // light part), then evicts k1 and keeps counting.
        e.update(&k(1), 1);
        for _ in 0..8 {
            e.update(&k(2), 1);
        }
        for _ in 0..50 {
            e.update(&k(2), 1);
        }
        let est = e.query(&k(2));
        assert!(
            est >= 55,
            "flagged flow should add its light-part share, got {est}"
        );
    }

    #[test]
    fn mice_land_in_light_part() {
        let mut e = ElasticSketch::new(1, 4096, 4, 5);
        e.update(&k(1), 100); // strong resident
        e.update(&k(2), 3); // mouse, no eviction
        assert_eq!(e.query(&k(2)), 3);
        assert_eq!(e.query(&k(1)), 100);
    }

    #[test]
    fn light_counters_saturate() {
        let mut e = ElasticSketch::new(1, 1, 4, 6);
        e.update(&k(1), 1);
        for _ in 0..600 {
            e.update(&k(2), 1); // all overflow into the single light counter
        }
        // 8-bit counter: the light estimate cannot exceed 255.
        assert!(e.light_query(&k(2)) <= 255);
    }

    #[test]
    fn memory_within_budget() {
        let e = ElasticSketch::with_memory(100_000, 13, 7);
        let m = e.memory_bytes();
        assert!(m <= 100_000, "memory {m}");
        assert!(m >= 95_000, "memory {m} leaves too much unused");
    }

    #[test]
    fn merge_sums_same_resident() {
        let mut a = ElasticSketch::new(64, 1024, 4, 9);
        let mut b = ElasticSketch::new(64, 1024, 4, 9);
        // Same flow split across shards (not the engine's contract, but
        // the bucket-sum rule must still hold).
        for _ in 0..40 {
            a.update(&k(1), 1);
            b.update(&k(1), 2);
        }
        a.merge_shard(b).unwrap();
        assert_eq!(a.query(&k(1)), 120);
    }

    #[test]
    fn merge_demotes_colliding_loser_to_light() {
        // One bucket forces a collision between the shards' residents.
        let mut a = ElasticSketch::new(1, 1024, 4, 9);
        let mut b = ElasticSketch::new(1, 1024, 4, 9);
        a.update(&k(1), 100);
        b.update(&k(2), 7);
        a.merge_shard(b).unwrap();
        let recs = a.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, k(1), "larger vote_pos keeps the bucket");
        assert_eq!(a.query(&k(1)), 100);
        assert_eq!(a.query(&k(2)), 7, "loser queryable from the light part");
    }

    #[test]
    fn merge_fills_empty_buckets_and_adds_light() {
        let mut a = ElasticSketch::new(64, 256, 4, 9);
        let mut b = ElasticSketch::new(64, 256, 4, 9);
        a.update(&k(1), 100); // resident in a only
        b.update(&k(1), 3); // same flow, small, stays resident in b
        b.update(&k(50), 9); // resident in b, empty slot in a (likely)
        let before_50 = b.query(&k(50));
        a.merge_shard(b).unwrap();
        assert_eq!(a.query(&k(1)), 103);
        assert_eq!(a.query(&k(50)), before_50);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = ElasticSketch::new(64, 256, 4, 9);
        assert!(a.merge_shard(ElasticSketch::new(32, 256, 4, 9)).is_err());
        assert!(a.merge_shard(ElasticSketch::new(64, 128, 4, 9)).is_err());
        assert!(a.merge_shard(ElasticSketch::new(64, 256, 8, 9)).is_err());
        assert!(a.merge_shard(ElasticSketch::new(64, 256, 4, 10)).is_err());
        assert!(a.merge_shard(ElasticSketch::new(64, 256, 4, 9)).is_ok());
    }

    #[test]
    fn elastic_does_not_claim_conservation() {
        let e = ElasticSketch::new(64, 256, 4, 9);
        assert_eq!(e.conserved_weight(), None);
    }

    #[test]
    fn records_report_occupied_only() {
        let mut e = ElasticSketch::new(64, 64, 4, 8);
        e.update(&k(1), 5);
        e.update(&k(2), 7);
        let recs = e.records();
        assert_eq!(recs.len(), 2);
        let total: u64 = recs.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, 12);
    }
}

//! An indexed min-heap tracking the top-k flows by estimated size.
//!
//! Count-Min and Count sketches cannot enumerate flows, so their
//! heavy-hitter deployments pair them with a small heap of the largest
//! estimates seen so far (the paper's "CM-Heap"/"C-Heap" baselines).
//! The heap keeps the k largest estimates; the auxiliary position map
//! makes in-place estimate updates O(log k).

use hashkit::{fast_map_with_capacity, FastMap};
use traffic::KeyBytes;

use crate::traits::COUNTER_BYTES;

/// Min-heap of the top-`capacity` (key, estimate) pairs.
#[derive(Debug, Clone)]
pub struct TopK {
    /// Heap array: `heap[0]` is the smallest tracked estimate.
    heap: Vec<(KeyBytes, u64)>,
    /// Position of each tracked key inside `heap`.
    pos: FastMap<KeyBytes, usize>,
    capacity: usize,
    key_bytes: usize,
}

impl TopK {
    /// A heap tracking at most `capacity` flows of `key_bytes`-wide keys.
    pub fn new(capacity: usize, key_bytes: usize) -> Self {
        assert!(capacity > 0, "top-k capacity must be positive");
        Self {
            heap: Vec::with_capacity(capacity),
            pos: fast_map_with_capacity(capacity * 2),
            capacity,
            key_bytes,
        }
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Maximum number of flows this heap tracks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Encoded width of the tracked keys in bytes.
    pub fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    /// True when nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The smallest tracked estimate (0 when not yet full, so any new
    /// flow qualifies).
    pub fn min_tracked(&self) -> u64 {
        if self.heap.len() < self.capacity {
            0
        } else {
            self.heap[0].1
        }
    }

    /// Current estimate of `key`, if tracked.
    pub fn get(&self, key: &KeyBytes) -> Option<u64> {
        self.pos.get(key).map(|&i| self.heap[i].1) // LINT: bounded(pos values always index heap; kept in sync by swap/offer)
    }

    /// Report a fresh estimate for `key`.
    ///
    /// Tracked keys are updated in place. Untracked keys enter if there
    /// is room or if they beat the current minimum (which is evicted).
    pub fn offer(&mut self, key: KeyBytes, estimate: u64) {
        if let Some(&i) = self.pos.get(&key) {
            let old = self.heap[i].1; // LINT: bounded(pos values always index heap; kept in sync by swap/offer)
            self.heap[i].1 = estimate; // LINT: bounded(same pos-map invariant)
            if estimate > old {
                self.sift_down(i);
            } else {
                self.sift_up(i);
            }
            return;
        }
        if self.heap.len() < self.capacity {
            let i = self.heap.len();
            self.heap.push((key, estimate));
            self.pos.insert(key, i);
            self.sift_up(i);
        } else if estimate > self.heap[0].1 {
            let evicted = self.heap[0].0;
            self.pos.remove(&evicted);
            self.heap[0] = (key, estimate);
            self.pos.insert(key, 0);
            self.sift_down(0);
        }
    }

    /// All tracked (key, estimate) pairs in unspecified order.
    pub fn entries(&self) -> Vec<(KeyBytes, u64)> {
        self.heap.clone()
    }

    /// Modeled memory: each slot stores a key and a counter.
    pub fn memory_bytes(&self) -> usize {
        self.capacity * (self.key_bytes + COUNTER_BYTES)
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].0, a); // LINT: bounded(caller contract: a, b < heap.len())
        self.pos.insert(self.heap[b].0, b); // LINT: bounded(caller contract: a, b < heap.len())
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            // LINT: bounded(caller contract: i < heap.len(); parent < i)
            if self.heap[i].1 < self.heap[parent].1 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            // LINT: bounded(l guarded; smallest starts at i < heap.len())
            if l < self.heap.len() && self.heap[l].1 < self.heap[smallest].1 {
                smallest = l;
            }
            // LINT: bounded(r guarded; smallest in {i, l} already checked)
            if r < self.heap.len() && self.heap[r].1 < self.heap[smallest].1 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    /// Debug-only invariant check: heap order and position map agreement.
    #[cfg(test)]
    fn check_invariants(&self) {
        for i in 1..self.heap.len() {
            assert!(
                self.heap[(i - 1) / 2].1 <= self.heap[i].1,
                "heap order broken at {i}"
            );
        }
        assert_eq!(self.pos.len(), self.heap.len());
        for (k, &i) in &self.pos {
            assert_eq!(self.heap[i].0, *k, "pos map desynced at {i}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn tracks_largest() {
        let mut t = TopK::new(3, 4);
        for i in 1..=10u32 {
            t.offer(k(i), u64::from(i) * 10);
            t.check_invariants();
        }
        let mut vals: Vec<u64> = t.entries().iter().map(|e| e.1).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![80, 90, 100]);
    }

    #[test]
    fn updates_in_place() {
        let mut t = TopK::new(2, 4);
        t.offer(k(1), 10);
        t.offer(k(2), 20);
        t.offer(k(1), 50);
        t.check_invariants();
        assert_eq!(t.get(&k(1)), Some(50));
        assert_eq!(t.len(), 2);
        assert_eq!(t.min_tracked(), 20);
    }

    #[test]
    fn decreasing_update_sifts_up() {
        let mut t = TopK::new(3, 4);
        t.offer(k(1), 100);
        t.offer(k(2), 200);
        t.offer(k(3), 300);
        t.offer(k(3), 5);
        t.check_invariants();
        assert_eq!(t.min_tracked(), 5);
    }

    #[test]
    fn small_newcomer_rejected_when_full() {
        let mut t = TopK::new(2, 4);
        t.offer(k(1), 100);
        t.offer(k(2), 200);
        t.offer(k(3), 50);
        assert_eq!(t.get(&k(3)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn min_tracked_is_zero_until_full() {
        let mut t = TopK::new(3, 4);
        assert_eq!(t.min_tracked(), 0);
        t.offer(k(1), 100);
        assert_eq!(t.min_tracked(), 0, "not full yet");
        t.offer(k(2), 5);
        t.offer(k(3), 7);
        assert_eq!(t.min_tracked(), 5);
    }

    #[test]
    fn eviction_removes_index() {
        let mut t = TopK::new(1, 4);
        t.offer(k(1), 10);
        t.offer(k(2), 20);
        assert_eq!(t.get(&k(1)), None);
        assert_eq!(t.get(&k(2)), Some(20));
        t.check_invariants();
    }

    #[test]
    fn stress_against_reference() {
        use hashkit::XorShift64Star;
        let mut rng = XorShift64Star::new(42);
        let mut t = TopK::new(16, 4);
        let mut reference: std::collections::HashMap<u32, u64> = Default::default();
        // Monotonically growing estimates (as sketches produce): the heap
        // must end up holding exactly the 16 largest.
        for _ in 0..20_000 {
            let key = (rng.next_u64() % 200) as u32;
            let e = reference.entry(key).or_insert(0);
            *e += rng.next_u64() % 100;
            let snapshot = *e;
            // The sketch-style caller only offers when it may qualify.
            t.offer(k(key), snapshot);
            t.check_invariants();
        }
        let mut truth: Vec<(u64, u32)> = reference.iter().map(|(&k2, &v)| (v, k2)).collect();
        truth.sort_unstable_by(|a, b| b.cmp(a));
        let top_truth: std::collections::HashSet<u32> =
            truth.iter().take(16).map(|&(_, k2)| k2).collect();
        let tracked: std::collections::HashSet<u32> = t
            .entries()
            .iter()
            .map(|(kb, _)| u32::from_be_bytes(kb.as_slice().try_into().unwrap()))
            .collect();
        // Ties at the boundary can legitimately differ; require high overlap.
        let overlap = top_truth.intersection(&tracked).count();
        assert!(overlap >= 14, "only {overlap}/16 of true top flows tracked");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        TopK::new(0, 4);
    }

    #[test]
    fn memory_accounting() {
        let t = TopK::new(100, 13);
        assert_eq!(t.memory_bytes(), 100 * 17);
    }
}

//! Count sketch (Charikar, Chen & Farach-Colton 2004) and the C-Heap
//! heavy-hitter baseline.

use hashkit::HashFamily;
use traffic::KeyBytes;

use crate::topk::TopK;
use crate::traits::{buckets_for, Sketch, COUNTER_BYTES};

/// Count sketch: like Count-Min but each update is multiplied by a
/// per-row random sign, and the query is the *median* across rows —
/// an unbiased point estimate with two-sided error.
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: Vec<Vec<i64>>,
    index_hashes: HashFamily,
    sign_hashes: HashFamily,
    width: usize,
}

impl CountSketch {
    /// A `depth` x `width` Count sketch.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(
            depth > 0 && width > 0,
            "CountSketch dimensions must be positive"
        );
        Self {
            rows: vec![vec![0i64; width]; depth],
            index_hashes: HashFamily::new(depth, seed),
            sign_hashes: HashFamily::new(depth, seed ^ 0x5153_5153),
            width,
        }
    }

    /// Size to a memory budget with the given depth.
    pub fn with_memory(mem_bytes: usize, depth: usize, seed: u64) -> Self {
        let width = buckets_for(mem_bytes / depth.max(1), COUNTER_BYTES);
        Self::new(depth, width, seed)
    }

    #[inline]
    fn sign(&self, i: usize, key: &KeyBytes) -> i64 {
        if self.sign_hashes.hash(i, key.as_slice()) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Add `w` to `key`.
    #[inline]
    pub fn insert(&mut self, key: &KeyBytes, w: u64) {
        for i in 0..self.rows.len() {
            let j = self.index_hashes.index(i, key.as_slice(), self.width);
            self.rows[i][j] += self.sign(i, key) * w as i64; // LINT: bounded(i < rows.len(); j = fastrange(<width) = rows[i].len())
        }
    }

    /// Unbiased point estimate (median over rows, clamped at 0).
    #[inline]
    pub fn estimate(&self, key: &KeyBytes) -> u64 {
        let mut ests: Vec<i64> = (0..self.rows.len())
            .map(|i| {
                let j = self.index_hashes.index(i, key.as_slice(), self.width);
                self.rows[i][j] * self.sign(i, key) // LINT: bounded(i < rows.len(); j = fastrange(<width) = rows[i].len())
            })
            .collect();
        ests.sort_unstable();
        let n = ests.len();
        let med = if n % 2 == 1 {
            ests[n / 2] // LINT: bounded(n = len >= 1: depth >= 1; n/2 < n)
        } else {
            (ests[n / 2 - 1] + ests[n / 2]) / 2 // LINT: bounded(even n >= 2 here; n/2 - 1 and n/2 are < n)
        };
        med.max(0) as u64
    }

    /// Rows x width.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows.len(), self.width)
    }

    /// Modeled memory of the counter arrays.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * COUNTER_BYTES
    }
}

/// Count sketch + top-k heap: the paper's "C-Heap" baseline.
#[derive(Debug, Clone)]
pub struct CountHeap {
    cs: CountSketch,
    heap: TopK,
}

impl CountHeap {
    /// Rows used by the evaluation configuration.
    pub const DEFAULT_DEPTH: usize = 3;
    const HEAP_SHARE: f64 = 0.25;

    /// Build from a total memory budget.
    pub fn with_memory(mem_bytes: usize, key_bytes: usize, seed: u64) -> Self {
        let heap_mem = (mem_bytes as f64 * Self::HEAP_SHARE) as usize;
        let heap_cap = buckets_for(heap_mem, key_bytes + COUNTER_BYTES);
        Self {
            cs: CountSketch::with_memory(mem_bytes - heap_mem, Self::DEFAULT_DEPTH, seed),
            heap: TopK::new(heap_cap, key_bytes),
        }
    }
}

impl Sketch for CountHeap {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        self.cs.insert(key, w);
        let est = self.cs.estimate(key);
        if est > self.heap.min_tracked() || self.heap.get(key).is_some() {
            self.heap.offer(*key, est);
        }
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        self.heap.get(key).unwrap_or_else(|| self.cs.estimate(key))
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.heap.entries()
    }

    fn memory_bytes(&self) -> usize {
        self.cs.memory_bytes() + self.heap.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "C-Heap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn exact_when_alone() {
        let mut cs = CountSketch::new(3, 4096, 9);
        cs.insert(&k(1), 123);
        assert_eq!(cs.estimate(&k(1)), 123);
    }

    #[test]
    fn unbiased_under_load() {
        // Mean estimate over many flows should track true size closely
        // even with collisions (signs cancel in expectation).
        let mut cs = CountSketch::new(5, 256, 4);
        for i in 0..2_000u32 {
            cs.insert(&k(i), 10);
        }
        let mean: f64 = (0..2_000u32)
            .map(|i| cs.estimate(&k(i)) as f64)
            .sum::<f64>()
            / 2_000.0;
        assert!((mean - 10.0).abs() < 3.0, "mean estimate {mean}");
    }

    #[test]
    fn estimate_clamps_negative_to_zero() {
        let mut cs = CountSketch::new(1, 1, 5);
        // Everything lands in one bucket; some key's sign will make the
        // single-row estimate negative.
        cs.insert(&k(1), 100);
        let victim = (2..100u32)
            .find(|&i| cs.estimate(&k(i)) == 0)
            .expect("some key must see the negative or zero side");
        assert_eq!(cs.estimate(&k(victim)), 0);
    }

    #[test]
    fn heavy_hitters_found() {
        let mut s = CountHeap::with_memory(64 * 1024, 4, 77);
        for rep in 0..1000u32 {
            for h in 0..5u32 {
                s.update(&k(h), 1);
            }
            s.update(&k(1000 + rep % 500), 1);
        }
        for h in 0..5u32 {
            let est = s.query(&k(h));
            assert!(
                (800..=1200).contains(&est),
                "heavy flow {h} estimate {est} should be near 1000"
            );
        }
    }

    #[test]
    fn with_memory_dims() {
        let cs = CountSketch::with_memory(3_000, 3, 1);
        assert_eq!(cs.dims(), (3, 250));
        assert_eq!(cs.memory_bytes(), 3_000);
    }

    #[test]
    fn even_depth_median_averages() {
        let mut cs = CountSketch::new(2, 4096, 10);
        cs.insert(&k(5), 40);
        assert_eq!(cs.estimate(&k(5)), 40);
    }

    #[test]
    fn memory_within_budget() {
        let s = CountHeap::with_memory(100_000, 13, 2);
        assert!(s.memory_bytes() <= 100_000);
    }
}

//! Baseline single-key sketches from the CocoSketch evaluation (§7).
//!
//! Every algorithm CocoSketch is compared against is implemented here,
//! from scratch, behind the common [`Sketch`] trait:
//!
//! - [`cm::CmHeap`] — Count-Min sketch + top-k min-heap ("CM-Heap");
//! - [`count::CountHeap`] — Count sketch + top-k min-heap ("C-Heap");
//! - [`spacesaving::SpaceSaving`] — SpaceSaving on a Stream-Summary ("SS");
//! - [`uss::UnbiasedSpaceSaving`] — Unbiased SpaceSaving (Ting, SIGMOD'18),
//!   with the hash-table + ordered-bucket-list acceleration the paper
//!   grants it ("USS");
//! - [`elastic::ElasticSketch`] — the software Elastic sketch;
//! - [`univmon::UnivMon`] — UnivMon's level hierarchy of Count sketches;
//! - [`rhhh::Rhhh`] — Randomized HHH (one random level updated per packet).
//!
//! All constructors take a *memory budget in modeled device bytes*
//! (counters are charged 4 bytes, keys their encoded width, auxiliary
//! index structures at their real size) so that the "same memory" axes of
//! the paper's figures are apples-to-apples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cm;
pub mod count;
pub mod elastic;
pub mod rhhh;
pub mod spacesaving;
pub mod stream_summary;
pub mod topk;
pub mod traits;
pub mod univmon;
pub mod uss;

pub use cm::{CmHeap, CountMin};
pub use count::{CountHeap, CountSketch};
pub use elastic::ElasticSketch;
pub use rhhh::Rhhh;
pub use spacesaving::SpaceSaving;
pub use traits::{buckets_for, MergeIncompat, MergeSketch, Sketch, COUNTER_BYTES};
pub use univmon::UnivMon;
pub use uss::{NaiveUss, UnbiasedSpaceSaving};

//! The common sketch interface and the memory model.

use traffic::KeyBytes;

/// Modeled width of a hardware counter in bytes.
///
/// The paper's hardware configurations use 32-bit counters; all memory
/// budgets here charge 4 bytes per counter even though the Rust
/// implementations use `u64` arithmetic internally (the evaluation traces
/// never overflow 32 bits, so the accounting matches without the
/// implementations having to saturate).
pub const COUNTER_BYTES: usize = 4;

/// How many buckets of `bucket_bytes` fit a budget of `mem_bytes`.
///
/// Never returns zero: a sketch with no buckets is useless and every
/// caller would have to special-case it, so the floor is one bucket.
pub fn buckets_for(mem_bytes: usize, bucket_bytes: usize) -> usize {
    debug_assert!(bucket_bytes > 0);
    (mem_bytes / bucket_bytes.max(1)).max(1)
}

/// A streaming frequency sketch over one key.
///
/// The update path takes pre-projected keys ([`KeyBytes`]), so one sketch
/// instance serves any [`KeySpec`](traffic::KeySpec); multi-key
/// orchestration (one instance per key, or CocoSketch's single instance)
/// lives in the `tasks` crate.
pub trait Sketch {
    /// Process one packet: add `w` to flow `key`.
    fn update(&mut self, key: &KeyBytes, w: u64);

    /// Process a batch of packets.
    ///
    /// Must be observationally identical to updating each packet in
    /// order; implementations override it only to exploit batching
    /// (e.g. hashing a window of keys up front to hide hash latency)
    /// without changing results.
    fn update_batch(&mut self, batch: &[(KeyBytes, u64)]) {
        for (key, w) in batch {
            self.update(key, *w);
        }
    }

    /// Estimated size of `key`.
    fn query(&self, key: &KeyBytes) -> u64;

    /// The flows the sketch explicitly tracks, with their estimates —
    /// the "(Full Key, Size) table" of the paper's Step 3. Heavy-hitter
    /// reporting and partial-key aggregation both read this.
    fn records(&self) -> Vec<(KeyBytes, u64)>;

    /// Modeled memory footprint in bytes (see [`COUNTER_BYTES`]).
    fn memory_bytes(&self) -> usize;

    /// Short algorithm name for tables and figures.
    fn name(&self) -> &'static str;
}

/// Error returned when two shards cannot be merged (mismatched
/// dimensions, hash seeds, or key widths). The message names the
/// mismatch; callers treat any incompatibility as a deployment bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeIncompat(pub String);

impl std::fmt::Display for MergeIncompat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incompatible shards: {}", self.0)
    }
}

impl std::error::Error for MergeIncompat {}

/// The merge contract for sharded ingestion.
///
/// A sketch implementing this trait can be deployed as `N` private
/// per-thread shards over a partitioned stream (every packet of a flow
/// lands in the same shard) and folded back into one queryable sketch.
/// The contract:
///
/// - both operands were built by the same constructor call (identical
///   dimensions, key width, and hash seeds) — anything else returns
///   [`MergeIncompat`];
/// - after a successful merge, `self` answers queries for the *union*
///   stream with the sketch's usual semantics (unbiased for CocoSketch,
///   overestimating for Count-Min, vote-based for Elastic);
/// - [`conserved_weight`](MergeSketch::conserved_weight) keeps
///   reporting the exact union weight for sketches that conserve it.
pub trait MergeSketch: Sketch + Send {
    /// Merge a same-configuration shard into `self`, consuming it.
    fn merge_shard(&mut self, other: Self) -> Result<(), MergeIncompat>;

    /// The total stream weight this sketch provably accounts for, when
    /// the structure conserves it exactly: `Some(total)` means the sum
    /// of the sketch's counters equals the inserted (or merged) stream
    /// weight — the conservation invariant sharded-engine tests assert.
    /// `None` means the structure cannot make that claim (e.g. Elastic's
    /// 8-bit light counters saturate).
    fn conserved_weight(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_floor_is_one() {
        assert_eq!(buckets_for(0, 17), 1);
        assert_eq!(buckets_for(16, 17), 1);
    }

    #[test]
    fn buckets_divide() {
        assert_eq!(buckets_for(1700, 17), 100);
        assert_eq!(buckets_for(1716, 17), 100);
    }
}

//! The Stream-Summary structure behind SpaceSaving and Unbiased
//! SpaceSaving.
//!
//! A Stream-Summary (Metwally et al. 2005) tracks `m` (key, count) items
//! and supports O(1) *find the minimum count* — the operation a naive
//! USS implementation spends O(n) on, and the acceleration §7.2 of the
//! CocoSketch paper explicitly grants the USS baseline ("a hash table and
//! a double linked list").
//!
//! Layout: items live in an arena of slots and are grouped into
//! *buckets*, one per distinct count value, kept in a doubly-linked list
//! sorted by ascending count. A hash map indexes keys to slots. Unit
//! increments move an item at most one bucket forward, so updates are
//! O(1); weighted increments walk forward past the few intervening
//! distinct counts.
//!
//! Everything is index-based (`u32` into arenas) — no `Rc`, no unsafe,
//! and the whole structure is a handful of contiguous allocations.

use hashkit::{fast_map_with_capacity, FastMap};
use traffic::KeyBytes;

use crate::traits::COUNTER_BYTES;

const NIL: u32 = u32::MAX;

/// One tracked item.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: KeyBytes,
    count: u64,
    /// Bucket this slot belongs to.
    bucket: u32,
    /// Neighbours within the bucket's item list.
    prev: u32,
    next: u32,
}

/// One distinct count value and its items.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    count: u64,
    /// First item in this bucket (NIL never occurs for live buckets).
    head: u32,
    /// Neighbouring buckets in ascending count order.
    prev: u32,
    next: u32,
}

/// A capacity-bounded (key, count) summary with O(1) minimum lookup.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    slots: Vec<Slot>,
    buckets: Vec<Bucket>,
    /// Free bucket arena entries.
    free_buckets: Vec<u32>,
    /// Smallest-count bucket (NIL when empty).
    bucket_head: u32,
    index: FastMap<KeyBytes, u32>,
    capacity: usize,
    key_bytes: usize,
}

impl StreamSummary {
    /// A summary holding at most `capacity` items of `key_bytes`-wide keys.
    pub fn new(capacity: usize, key_bytes: usize) -> Self {
        assert!(capacity > 0, "StreamSummary capacity must be positive");
        Self {
            slots: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity + 1),
            free_buckets: Vec::new(),
            bucket_head: NIL,
            index: fast_map_with_capacity(capacity * 2),
            capacity,
            key_bytes,
        }
    }

    /// Modeled bytes per tracked item: the slot (key + counter + three
    /// links), its hash-table entry (key + slot reference), and an
    /// amortized share of a bucket node. This is what makes USS cost
    /// roughly 3–4x a raw (key, counter) pair — the overhead the paper
    /// charges it (§7.2).
    pub fn bytes_per_item(key_bytes: usize) -> usize {
        let slot = key_bytes + COUNTER_BYTES + 3 * 4;
        let index_entry = key_bytes + 8;
        let bucket_share = 16;
        slot + index_entry + bucket_share
    }

    /// Maximum number of tracked items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of tracked items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when no more fresh keys fit without replacement.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Slot by arena id. Ids are minted by `insert` (`slots.len()` at
    /// the time) and slots are never removed, so every stored id stays
    /// in bounds for the structure's lifetime.
    #[inline]
    fn slot(&self, s: u32) -> &Slot {
        &self.slots[s as usize] // LINT: bounded(arena ids minted by insert; slots are never removed)
    }

    #[inline]
    fn slot_mut(&mut self, s: u32) -> &mut Slot {
        &mut self.slots[s as usize] // LINT: bounded(arena ids minted by insert; slots are never removed)
    }

    /// Bucket by arena id. Ids come from `alloc_bucket` — an in-bounds
    /// push or a recycled id — so the same arena argument applies.
    #[inline]
    fn bucket(&self, b: u32) -> &Bucket {
        &self.buckets[b as usize] // LINT: bounded(arena ids minted by alloc_bucket; entries recycled, never removed)
    }

    #[inline]
    fn bucket_mut(&mut self, b: u32) -> &mut Bucket {
        &mut self.buckets[b as usize] // LINT: bounded(arena ids minted by alloc_bucket; entries recycled, never removed)
    }

    /// Count of `key`, if tracked.
    pub fn get(&self, key: &KeyBytes) -> Option<u64> {
        self.index.get(key).map(|&s| self.slot(s).count)
    }

    /// True when `key` is tracked.
    pub fn contains(&self, key: &KeyBytes) -> bool {
        self.index.contains_key(key)
    }

    /// The smallest tracked count (0 when empty — the SpaceSaving
    /// convention: an empty summary admits anything for free).
    pub fn min_count(&self) -> u64 {
        if self.bucket_head == NIL {
            0
        } else {
            self.bucket(self.bucket_head).count
        }
    }

    /// All (key, count) pairs, unspecified order.
    pub fn entries(&self) -> Vec<(KeyBytes, u64)> {
        self.slots.iter().map(|s| (s.key, s.count)).collect()
    }

    /// Modeled memory footprint.
    pub fn memory_bytes(&self) -> usize {
        self.capacity * Self::bytes_per_item(self.key_bytes)
    }

    /// Add `w` to an already-tracked `key`. Returns false if untracked.
    pub fn increment(&mut self, key: &KeyBytes, w: u64) -> bool {
        let Some(&slot) = self.index.get(key) else {
            return false;
        };
        let new_count = self.slot(slot).count.wrapping_add(w);
        self.move_slot(slot, new_count);
        true
    }

    /// Insert a fresh key with initial count `w`.
    ///
    /// # Panics
    /// Panics when full or when the key is already tracked; callers check
    /// with [`is_full`](Self::is_full) / [`contains`](Self::contains)
    /// first (both are O(1)).
    pub fn insert(&mut self, key: KeyBytes, w: u64) {
        assert!(!self.is_full(), "insert into full StreamSummary");
        assert!(!self.index.contains_key(&key), "duplicate insert");
        let slot = self.slots.len() as u32;
        self.slots.push(Slot {
            key,
            count: w,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        });
        self.index.insert(key, slot);
        let bucket = self.find_or_make_bucket_from_head(w);
        self.attach(slot, bucket);
    }

    /// The SpaceSaving/USS replacement primitive: pick a victim from the
    /// minimum bucket, add `w` to its count, and — if `replace_with` is
    /// given — re-key it. Returns `(old_key, count_before_increment)`.
    ///
    /// # Panics
    /// Panics when empty (a caller bug: with capacity ≥ 1 the caller
    /// inserts while not full and replaces only once full).
    pub fn bump_min(&mut self, w: u64, replace_with: Option<KeyBytes>) -> (KeyBytes, u64) {
        assert!(self.bucket_head != NIL, "bump_min on empty StreamSummary");
        let victim = self.bucket(self.bucket_head).head;
        let old_key = self.slot(victim).key;
        let old_count = self.slot(victim).count;
        if let Some(new_key) = replace_with {
            debug_assert!(
                !self.index.contains_key(&new_key),
                "replacement key already tracked"
            );
            self.index.remove(&old_key);
            self.slot_mut(victim).key = new_key;
            self.index.insert(new_key, victim);
        }
        self.move_slot(victim, old_count.wrapping_add(w));
        (old_key, old_count)
    }

    /// Detach `slot` from its bucket and re-attach it at `new_count`.
    fn move_slot(&mut self, slot: u32, new_count: u64) {
        let old_bucket = self.slot(slot).bucket;
        debug_assert!(new_count > self.bucket(old_bucket).count);
        self.detach(slot);
        // Counts only grow, so the target bucket is at or after the old
        // one; search forward from it.
        let target = self.find_or_make_bucket_after(old_bucket, new_count);
        self.attach(slot, target);
        // Free the old bucket if the move emptied it.
        if self.bucket(old_bucket).head == NIL {
            self.unlink_bucket(old_bucket);
        }
        self.slot_mut(slot).count = new_count;
    }

    /// Unlink `slot` from its bucket's item list (bucket kept even if
    /// emptied; the caller decides when to free it).
    fn detach(&mut self, slot: u32) {
        let Slot {
            prev, next, bucket, ..
        } = *self.slot(slot);
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.bucket_mut(bucket).head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        }
        let s = self.slot_mut(slot);
        s.prev = NIL;
        s.next = NIL;
        s.bucket = NIL;
    }

    /// Push `slot` onto `bucket`'s item list.
    fn attach(&mut self, slot: u32, bucket: u32) {
        let head = self.bucket(bucket).head;
        let count = self.bucket(bucket).count;
        let s = self.slot_mut(slot);
        s.next = head;
        s.prev = NIL;
        s.bucket = bucket;
        s.count = count;
        if head != NIL {
            self.slot_mut(head).prev = slot;
        }
        self.bucket_mut(bucket).head = slot;
    }

    /// Allocate a bucket node.
    fn alloc_bucket(&mut self, count: u64) -> u32 {
        if let Some(b) = self.free_buckets.pop() {
            *self.bucket_mut(b) = Bucket {
                count,
                head: NIL,
                prev: NIL,
                next: NIL,
            };
            b
        } else {
            self.buckets.push(Bucket {
                count,
                head: NIL,
                prev: NIL,
                next: NIL,
            });
            (self.buckets.len() - 1) as u32
        }
    }

    /// Remove an empty bucket from the ordered list and recycle it.
    fn unlink_bucket(&mut self, b: u32) {
        debug_assert_eq!(self.bucket(b).head, NIL);
        let Bucket { prev, next, .. } = *self.bucket(b);
        if prev != NIL {
            self.bucket_mut(prev).next = next;
        } else {
            self.bucket_head = next;
        }
        if next != NIL {
            self.bucket_mut(next).prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Insert bucket `b` into the ordered list right after `after`
    /// (`NIL` = at the head).
    fn link_bucket_after(&mut self, b: u32, after: u32) {
        if after == NIL {
            let old_head = self.bucket_head;
            let nb = self.bucket_mut(b);
            nb.next = old_head;
            nb.prev = NIL;
            if old_head != NIL {
                self.bucket_mut(old_head).prev = b;
            }
            self.bucket_head = b;
        } else {
            let next = self.bucket(after).next;
            let nb = self.bucket_mut(b);
            nb.prev = after;
            nb.next = next;
            self.bucket_mut(after).next = b;
            if next != NIL {
                self.bucket_mut(next).prev = b;
            }
        }
    }

    /// Find the bucket with exactly `count`, scanning forward from the
    /// list head; create and link it if missing.
    fn find_or_make_bucket_from_head(&mut self, count: u64) -> u32 {
        self.find_or_make_bucket_scan(self.bucket_head, NIL, count)
    }

    /// Same, but scanning forward from `start` (a live bucket whose count
    /// is `< count`) — the fast path for increments.
    fn find_or_make_bucket_after(&mut self, start: u32, count: u64) -> u32 {
        debug_assert!(self.bucket(start).count < count);
        self.find_or_make_bucket_scan(self.bucket(start).next, start, count)
    }

    fn find_or_make_bucket_scan(&mut self, mut cur: u32, mut last_below: u32, count: u64) -> u32 {
        while cur != NIL {
            let c = self.bucket(cur).count;
            if c == count {
                return cur;
            }
            if c > count {
                break;
            }
            last_below = cur;
            cur = self.bucket(cur).next;
        }
        let b = self.alloc_bucket(count);
        self.link_bucket_after(b, last_below);
        b
    }

    /// Exhaustive structural check, used by tests.
    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        // Buckets strictly ascending, all non-empty, doubly linked.
        let mut prev_count: Option<u64> = None;
        let mut prev_b = NIL;
        let mut seen_slots = 0usize;
        let mut b = self.bucket_head;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            if let Some(pc) = prev_count {
                assert!(bucket.count > pc, "bucket counts must strictly ascend");
            }
            assert_eq!(bucket.prev, prev_b, "bucket back-link broken");
            assert_ne!(bucket.head, NIL, "live bucket must be non-empty");
            // Walk items.
            let mut s = bucket.head;
            let mut prev_s = NIL;
            while s != NIL {
                let slot = &self.slots[s as usize];
                assert_eq!(slot.bucket, b, "slot bucket back-reference");
                assert_eq!(slot.count, bucket.count, "slot count matches bucket");
                assert_eq!(slot.prev, prev_s, "slot back-link broken");
                assert_eq!(self.index[&slot.key], s, "index points at slot");
                seen_slots += 1;
                prev_s = s;
                s = slot.next;
            }
            prev_count = Some(bucket.count);
            prev_b = b;
            b = bucket.next;
        }
        assert_eq!(seen_slots, self.slots.len(), "all slots reachable");
        assert_eq!(self.index.len(), self.slots.len(), "index size");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashkit::XorShift64Star;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn insert_and_get() {
        let mut ss = StreamSummary::new(4, 4);
        ss.insert(k(1), 5);
        ss.insert(k(2), 3);
        ss.check_invariants();
        assert_eq!(ss.get(&k(1)), Some(5));
        assert_eq!(ss.get(&k(2)), Some(3));
        assert_eq!(ss.get(&k(3)), None);
        assert_eq!(ss.min_count(), 3);
    }

    #[test]
    fn increment_moves_buckets() {
        let mut ss = StreamSummary::new(4, 4);
        ss.insert(k(1), 1);
        ss.insert(k(2), 1);
        ss.increment(&k(1), 1);
        ss.check_invariants();
        assert_eq!(ss.get(&k(1)), Some(2));
        assert_eq!(ss.min_count(), 1);
        ss.increment(&k(2), 5);
        ss.check_invariants();
        assert_eq!(ss.min_count(), 2);
    }

    #[test]
    fn increment_untracked_returns_false() {
        let mut ss = StreamSummary::new(2, 4);
        ss.insert(k(1), 1);
        assert!(!ss.increment(&k(9), 1));
        assert!(ss.increment(&k(1), 1));
    }

    #[test]
    fn bump_min_without_replace() {
        let mut ss = StreamSummary::new(2, 4);
        ss.insert(k(1), 10);
        ss.insert(k(2), 3);
        let (old, before) = ss.bump_min(4, None);
        ss.check_invariants();
        assert_eq!(old, k(2));
        assert_eq!(before, 3);
        assert_eq!(ss.get(&k(2)), Some(7), "key kept, count bumped");
    }

    #[test]
    fn bump_min_with_replace() {
        let mut ss = StreamSummary::new(2, 4);
        ss.insert(k(1), 10);
        ss.insert(k(2), 3);
        let (old, before) = ss.bump_min(4, Some(k(9)));
        ss.check_invariants();
        assert_eq!(old, k(2));
        assert_eq!(before, 3);
        assert_eq!(ss.get(&k(2)), None, "old key evicted");
        assert_eq!(ss.get(&k(9)), Some(7), "new key owns the counter");
    }

    #[test]
    fn min_tracks_smallest() {
        let mut ss = StreamSummary::new(8, 4);
        for i in 1..=8u32 {
            ss.insert(k(i), u64::from(i));
        }
        assert_eq!(ss.min_count(), 1);
        ss.increment(&k(1), 100);
        assert_eq!(ss.min_count(), 2);
        ss.check_invariants();
    }

    #[test]
    fn empty_and_full_flags() {
        let mut ss = StreamSummary::new(1, 4);
        assert!(ss.is_empty());
        assert_eq!(ss.min_count(), 0);
        ss.insert(k(1), 1);
        assert!(ss.is_full());
        assert_eq!(ss.len(), 1);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_when_full_panics() {
        let mut ss = StreamSummary::new(1, 4);
        ss.insert(k(1), 1);
        ss.insert(k(2), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_insert_panics() {
        let mut ss = StreamSummary::new(2, 4);
        ss.insert(k(1), 1);
        ss.insert(k(1), 1);
    }

    #[test]
    fn merging_into_shared_bucket_counts() {
        // Two items reaching the same count share one bucket.
        let mut ss = StreamSummary::new(4, 4);
        ss.insert(k(1), 2);
        ss.insert(k(2), 1);
        ss.increment(&k(2), 1);
        ss.check_invariants();
        assert_eq!(ss.get(&k(1)), Some(2));
        assert_eq!(ss.get(&k(2)), Some(2));
        // Bucket list should hold exactly one live bucket.
        assert_eq!(ss.min_count(), 2);
    }

    #[test]
    fn stress_against_reference_model() {
        // Random interleaving of insert/increment/bump_min, checked
        // against a naive map + full scans.
        let mut rng = XorShift64Star::new(0xBEEF);
        let mut ss = StreamSummary::new(32, 4);
        let mut model: std::collections::HashMap<KeyBytes, u64> = std::collections::HashMap::new();
        let mut next_key = 0u32;
        for step in 0..30_000 {
            let op = rng.next_u64() % 100;
            if op < 50 && !model.is_empty() {
                // Increment a random tracked key.
                let keys: Vec<KeyBytes> = model.keys().copied().collect();
                let key = keys[(rng.next_u64() as usize) % keys.len()];
                let w = 1 + rng.next_u64() % 5;
                assert!(ss.increment(&key, w));
                *model.get_mut(&key).unwrap() += w;
            } else if !ss.is_full() {
                next_key += 1;
                let w = 1 + rng.next_u64() % 5;
                ss.insert(k(next_key), w);
                model.insert(k(next_key), w);
            } else {
                next_key += 1;
                let w = 1 + rng.next_u64() % 5;
                let replace = rng.next_u64() % 2 == 0;
                let min_model = *model.values().min().unwrap();
                let (old, before) = ss.bump_min(w, if replace { Some(k(next_key)) } else { None });
                assert_eq!(before, min_model, "victim must hold the global min");
                if replace {
                    model.remove(&old);
                    model.insert(k(next_key), before + w);
                } else {
                    *model.get_mut(&old).unwrap() += w;
                }
            }
            if step % 500 == 0 {
                ss.check_invariants();
            }
        }
        ss.check_invariants();
        // Final state identical to the model.
        let mut got = ss.entries();
        let mut want: Vec<(KeyBytes, u64)> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn memory_model_overhead() {
        // The auxiliary structures should cost ~3x a bare (key, counter)
        // pair — the overhead the paper charges USS.
        let bare = 13 + COUNTER_BYTES;
        let full = StreamSummary::bytes_per_item(13);
        let factor = full as f64 / bare as f64;
        assert!((2.5..4.5).contains(&factor), "overhead factor {factor}");
    }
}

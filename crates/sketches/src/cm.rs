//! Count-Min sketch (Cormode & Muthukrishnan 2005) and the CM-Heap
//! heavy-hitter baseline.

use hashkit::HashFamily;
use traffic::KeyBytes;

use crate::topk::TopK;
use crate::traits::{buckets_for, MergeIncompat, MergeSketch, Sketch, COUNTER_BYTES};

/// Plain Count-Min: `depth` rows of `width` counters; query = min over
/// rows. Estimates never undercount.
#[derive(Debug, Clone)]
pub struct CountMin {
    rows: Vec<Vec<u64>>,
    hashes: HashFamily,
    width: usize,
}

impl CountMin {
    /// A `depth` x `width` Count-Min seeded from `seed`.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(
            depth > 0 && width > 0,
            "CountMin dimensions must be positive"
        );
        Self {
            rows: vec![vec![0u64; width]; depth],
            hashes: HashFamily::new(depth, seed),
            width,
        }
    }

    /// Size a Count-Min of `depth` rows to a memory budget.
    pub fn with_memory(mem_bytes: usize, depth: usize, seed: u64) -> Self {
        let width = buckets_for(mem_bytes / depth.max(1), COUNTER_BYTES);
        Self::new(depth, width, seed)
    }

    /// Add `w` to `key`.
    #[inline]
    pub fn insert(&mut self, key: &KeyBytes, w: u64) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            let j = self.hashes.index(i, key.as_slice(), self.width);
            row[j] += w; // LINT: bounded(j = fastrange(<width) = row.len())
        }
    }

    /// Point estimate: minimum across rows (an overestimate).
    #[inline]
    pub fn estimate(&self, key: &KeyBytes) -> u64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| row[self.hashes.index(i, key.as_slice(), self.width)]) // LINT: bounded(fastrange(<width) = row.len())
            .min()
            .unwrap_or(0)
    }

    /// Rows x width.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows.len(), self.width)
    }

    /// Sum of one counter row.
    ///
    /// Every insert adds `w` to *every* row, so each row independently
    /// sums to the total inserted weight — Count-Min conserves the
    /// stream weight exactly, per row.
    pub fn counter_total(&self) -> u64 {
        self.rows[0].iter().sum()
    }

    /// Fold a same-configuration Count-Min into `self` by element-wise
    /// counter addition (the classic CM merge: estimates over the union
    /// stream keep the never-undercount guarantee).
    pub fn merge_from(&mut self, other: &CountMin) -> Result<(), MergeIncompat> {
        if self.dims() != other.dims() {
            return Err(MergeIncompat(format!(
                "CountMin dims {:?} vs {:?}",
                self.dims(),
                other.dims()
            )));
        }
        for i in 0..self.rows.len() {
            if self.hashes.seed(i) != other.hashes.seed(i) {
                return Err(MergeIncompat(format!("CountMin row-{i} hash seed differs")));
            }
        }
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        Ok(())
    }

    /// Modeled memory of the counter arrays.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * COUNTER_BYTES
    }
}

/// Count-Min sketch plus a top-k heap: the paper's "CM-Heap" baseline.
///
/// Every update refreshes the CM estimate and offers it to the heap, so
/// the heap converges on the flows with the largest estimates.
#[derive(Debug, Clone)]
pub struct CmHeap {
    cm: CountMin,
    heap: TopK,
}

impl CmHeap {
    /// Default row count used in the evaluation (the paper's Tofino
    /// configuration uses 3-row CM sketches; §7.1).
    pub const DEFAULT_DEPTH: usize = 3;
    /// Fraction of the budget given to the heap.
    const HEAP_SHARE: f64 = 0.25;

    /// Build from a total memory budget for keys of `key_bytes` width.
    pub fn with_memory(mem_bytes: usize, key_bytes: usize, seed: u64) -> Self {
        let heap_mem = (mem_bytes as f64 * Self::HEAP_SHARE) as usize;
        let heap_cap = buckets_for(heap_mem, key_bytes + COUNTER_BYTES);
        let cm = CountMin::with_memory(mem_bytes - heap_mem, Self::DEFAULT_DEPTH, seed);
        Self {
            cm,
            heap: TopK::new(heap_cap, key_bytes),
        }
    }

    /// Explicit-dimension constructor for tests.
    pub fn new(depth: usize, width: usize, heap_cap: usize, key_bytes: usize, seed: u64) -> Self {
        Self {
            cm: CountMin::new(depth, width, seed),
            heap: TopK::new(heap_cap, key_bytes),
        }
    }
}

impl Sketch for CmHeap {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        self.cm.insert(key, w);
        let est = self.cm.estimate(key);
        if est > self.heap.min_tracked() || self.heap.get(key).is_some() {
            self.heap.offer(*key, est);
        }
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        // Prefer the heap's snapshot (identical to CM here, but cheap);
        // fall back to the sketch for untracked flows.
        self.heap.get(key).unwrap_or_else(|| self.cm.estimate(key))
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.heap.entries()
    }

    fn memory_bytes(&self) -> usize {
        self.cm.memory_bytes() + self.heap.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "CM-Heap"
    }
}

impl MergeSketch for CmHeap {
    /// Element-wise CM addition, then a heap rebuild: the union of both
    /// shards' tracked keys is re-estimated against the merged CM and
    /// re-offered into a fresh heap. Under the sharded-engine contract
    /// (every flow lands wholly in one shard) a flow heavy in the union
    /// stream is heavy in its own shard, so it is in one of the two
    /// heaps and survives the rebuild.
    fn merge_shard(&mut self, other: Self) -> Result<(), MergeIncompat> {
        if self.heap.capacity() != other.heap.capacity()
            || self.heap.key_bytes() != other.heap.key_bytes()
        {
            return Err(MergeIncompat(format!(
                "CM-Heap heap {}x{}B vs {}x{}B",
                self.heap.capacity(),
                self.heap.key_bytes(),
                other.heap.capacity(),
                other.heap.key_bytes()
            )));
        }
        self.cm.merge_from(&other.cm)?;
        let mut heap = TopK::new(self.heap.capacity(), self.heap.key_bytes());
        for (key, _) in self.heap.entries().into_iter().chain(other.heap.entries()) {
            heap.offer(key, self.cm.estimate(&key));
        }
        self.heap = heap;
        Ok(())
    }

    fn conserved_weight(&self) -> Option<u64> {
        Some(self.cm.counter_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(3, 64, 1);
        for i in 0..500u32 {
            cm.insert(&k(i), u64::from(i % 7) + 1);
        }
        for i in 0..500u32 {
            assert!(cm.estimate(&k(i)) >= u64::from(i % 7) + 1, "flow {i}");
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cm = CountMin::new(4, 4096, 2);
        for rep in 1..=5u64 {
            for i in 0..10u32 {
                cm.insert(&k(i), rep);
            }
        }
        // With 10 flows in 4096 buckets, collisions across all 4 rows are
        // essentially impossible, so the min is exact.
        for i in 0..10u32 {
            assert_eq!(cm.estimate(&k(i)), 15);
        }
    }

    #[test]
    fn unseen_flow_small_estimate() {
        let mut cm = CountMin::new(3, 1024, 3);
        for i in 0..100u32 {
            cm.insert(&k(i), 1);
        }
        assert!(
            cm.estimate(&k(99_999)) <= 2,
            "mostly-empty sketch should say ~0"
        );
    }

    #[test]
    fn with_memory_sizing() {
        let cm = CountMin::with_memory(12_000, 3, 1);
        let (d, w) = cm.dims();
        assert_eq!(d, 3);
        assert_eq!(w, 1000);
        assert_eq!(cm.memory_bytes(), 12_000);
    }

    #[test]
    fn heap_finds_heavy_hitters() {
        let mut s = CmHeap::with_memory(64 * 1024, 4, 42);
        // 5 heavy flows of 1000, 2000 light flows of 1.
        for rep in 0..1000u32 {
            for h in 0..5u32 {
                s.update(&k(h), 1);
            }
            for l in 0..2u32 {
                s.update(&k(1000 + (rep * 2 + l) % 2000), 1);
            }
        }
        let recs = s.records();
        for h in 0..5u32 {
            let est = recs.iter().find(|(kb, _)| *kb == k(h)).map(|&(_, v)| v);
            let est = est.expect("heavy flow should be tracked");
            assert!(est >= 1000, "CM never underestimates, got {est}");
            assert!(est < 1200, "estimate {est} too inflated");
        }
    }

    #[test]
    fn query_matches_records() {
        let mut s = CmHeap::with_memory(16 * 1024, 4, 7);
        for _ in 0..100 {
            s.update(&k(1), 1);
        }
        let rec = s.records().into_iter().find(|(kb, _)| *kb == k(1)).unwrap();
        assert_eq!(s.query(&k(1)), rec.1);
    }

    #[test]
    fn memory_within_budget() {
        let s = CmHeap::with_memory(500_000, 13, 1);
        let m = s.memory_bytes();
        assert!(m <= 500_000, "memory {m} over budget");
        assert!(m > 450_000, "memory {m} leaves too much unused");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_depth_panics() {
        CountMin::new(0, 10, 1);
    }

    #[test]
    fn merged_cm_equals_union_stream() {
        // Two shards over a partitioned stream, merged, must produce the
        // exact counter arrays of one sketch over the whole stream.
        let mut whole = CountMin::new(3, 256, 9);
        let mut a = CountMin::new(3, 256, 9);
        let mut b = CountMin::new(3, 256, 9);
        for i in 0..400u32 {
            let w = u64::from(i % 5) + 1;
            whole.insert(&k(i), w);
            if i % 2 == 0 {
                a.insert(&k(i), w);
            } else {
                b.insert(&k(i), w);
            }
        }
        a.merge_from(&b).unwrap();
        for i in 0..400u32 {
            assert_eq!(a.estimate(&k(i)), whole.estimate(&k(i)), "flow {i}");
        }
        assert_eq!(a.counter_total(), whole.counter_total());
    }

    #[test]
    fn cm_merge_rejects_mismatches() {
        let mut a = CountMin::new(3, 256, 9);
        assert!(a.merge_from(&CountMin::new(2, 256, 9)).is_err());
        assert!(a.merge_from(&CountMin::new(3, 128, 9)).is_err());
        assert!(a.merge_from(&CountMin::new(3, 256, 10)).is_err());
        assert!(a.merge_from(&CountMin::new(3, 256, 9)).is_ok());
    }

    #[test]
    fn cm_heap_merge_conserves_and_finds_heavies() {
        // Flow-partitioned shards: evens in shard a, odds in shard b.
        let mut a = CmHeap::with_memory(64 * 1024, 4, 42);
        let mut b = CmHeap::with_memory(64 * 1024, 4, 42);
        let mut total = 0u64;
        for rep in 0..1000u32 {
            for h in 0..6u32 {
                let s = if h % 2 == 0 { &mut a } else { &mut b };
                s.update(&k(h), 1);
                total += 1;
            }
            let l = 1000 + rep % 500;
            let s = if l % 2 == 0 { &mut a } else { &mut b };
            s.update(&k(l), 1);
            total += 1;
        }
        a.merge_shard(b).unwrap();
        assert_eq!(a.conserved_weight(), Some(total));
        let recs = a.records();
        for h in 0..6u32 {
            let est = recs.iter().find(|(kb, _)| *kb == k(h)).map(|&(_, v)| v);
            let est = est.expect("heavy flow must survive the heap rebuild");
            assert!(est >= 1000, "CM never underestimates, got {est}");
        }
        // Rebuilt heap answers queries from the merged CM.
        assert_eq!(a.query(&k(0)), a.cm.estimate(&k(0)));
    }

    #[test]
    fn cm_heap_merge_rejects_heap_mismatch() {
        let mut a = CmHeap::new(3, 64, 8, 4, 1);
        let b = CmHeap::new(3, 64, 16, 4, 1);
        assert!(a.merge_shard(b).is_err());
    }
}

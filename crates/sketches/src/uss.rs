//! Unbiased SpaceSaving (Ting, SIGMOD 2018) — the theoretical basis of
//! CocoSketch.
//!
//! USS keeps SpaceSaving's counter layout but randomizes the key
//! replacement: an unseen flow bumps the minimum counter to `c_min + w`
//! and takes it over only with probability `w / (c_min + w)` (Eq. 3 of
//! the CocoSketch paper, the variance-minimizing choice of Theorem 1).
//! That single change makes every flow's estimate *unbiased*, which is
//! what lets partial-key sums be recovered from full-key records.
//!
//! This implementation is the accelerated variant the paper benchmarks
//! against: the [`StreamSummary`] gives O(1) access to the global
//! minimum instead of the naive O(n) scan. The cost is the auxiliary
//! hash table + bucket list, charged to its memory budget.

use hashkit::XorShift64Star;
use traffic::KeyBytes;

use crate::stream_summary::StreamSummary;
use crate::traits::Sketch;

/// Unbiased SpaceSaving over a [`StreamSummary`].
#[derive(Debug, Clone)]
pub struct UnbiasedSpaceSaving {
    summary: StreamSummary,
    rng: XorShift64Star,
}

impl UnbiasedSpaceSaving {
    /// Track at most `capacity` flows.
    pub fn new(capacity: usize, key_bytes: usize, seed: u64) -> Self {
        Self {
            summary: StreamSummary::new(capacity, key_bytes),
            rng: XorShift64Star::new(seed),
        }
    }

    /// Size to a memory budget (auxiliary structures charged; see
    /// [`StreamSummary::bytes_per_item`]).
    pub fn with_memory(mem_bytes: usize, key_bytes: usize, seed: u64) -> Self {
        let cap = (mem_bytes / StreamSummary::bytes_per_item(key_bytes)).max(1); // LINT: bounded(bytes_per_item sums positive constants)
        Self::new(cap, key_bytes, seed)
    }

    /// Tracked-flow capacity.
    pub fn capacity(&self) -> usize {
        self.summary.capacity()
    }
}

impl Sketch for UnbiasedSpaceSaving {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        if self.summary.increment(key, w) {
            return;
        }
        if !self.summary.is_full() {
            self.summary.insert(*key, w);
            return;
        }
        // Unseen flow, summary full: bump the min to c_min + w and take
        // the key over with probability w / (c_min + w).
        let c_min = self.summary.min_count();
        let replace = self.rng.coin(w, c_min + w);
        self.summary.bump_min(w, replace.then_some(*key));
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        self.summary.get(key).unwrap_or(0)
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.summary.entries()
    }

    fn memory_bytes(&self) -> usize {
        self.summary.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "USS"
    }
}

/// The *naive* USS implementation: identical algorithm, but the
/// minimum counter is found by a linear scan over all tracked flows —
/// O(n) per unseen packet, exactly what §2.3 of the CocoSketch paper
/// calls impractical ("throughput of a naive USS implementation is
/// <0.1 Mpps"). Kept as the reference point for the Figure 16
/// discussion and the update-cost benches; not used in the accuracy
/// figures (it computes the same distribution as the accelerated
/// version).
#[derive(Debug, Clone)]
pub struct NaiveUss {
    entries: Vec<(KeyBytes, u64)>,
    capacity: usize,
    key_bytes: usize,
    rng: XorShift64Star,
}

impl NaiveUss {
    /// Track at most `capacity` flows.
    pub fn new(capacity: usize, key_bytes: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            key_bytes,
            rng: XorShift64Star::new(seed),
        }
    }

    /// Same sizing as the accelerated USS, for honest comparisons: the
    /// naive version would not need the auxiliary structures, but the
    /// paper's point is per-packet cost at equal accuracy, so give it
    /// the same number of counters.
    pub fn with_memory(mem_bytes: usize, key_bytes: usize, seed: u64) -> Self {
        let cap = (mem_bytes / StreamSummary::bytes_per_item(key_bytes)).max(1); // LINT: bounded(bytes_per_item sums positive constants)
        Self::new(cap, key_bytes, seed)
    }
}

impl Sketch for NaiveUss {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        // Linear probe for the key (the naive version has no index).
        for entry in &mut self.entries {
            if entry.0 == *key {
                entry.1 += w;
                return;
            }
        }
        if self.entries.len() < self.capacity {
            self.entries.push((*key, w));
            return;
        }
        // Linear scan for the global minimum — the O(n) step. The
        // entries are non-empty here: `capacity > 0` is asserted at
        // construction and the branch above returns while there is
        // room, so a full table has at least one entry.
        let (min_idx, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(_, v))| v)
            .unwrap_or_else(|| hashkit::invariant::violated("a full USS table is non-empty"));
        let entry = &mut self.entries[min_idx]; // LINT: bounded(min_idx comes from enumerate() over entries)
        entry.1 += w;
        let value_after = entry.1;
        if self.rng.coin(w, value_after) {
            entry.0 = *key;
        }
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.entries.clone()
    }

    fn memory_bytes(&self) -> usize {
        self.capacity * StreamSummary::bytes_per_item(self.key_bytes)
    }

    fn name(&self) -> &'static str {
        "USS-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn exact_until_full() {
        let mut uss = UnbiasedSpaceSaving::new(8, 4, 1);
        for i in 0..8u32 {
            uss.update(&k(i), 10);
            uss.update(&k(i), 5);
        }
        for i in 0..8u32 {
            assert_eq!(uss.query(&k(i)), 15);
        }
    }

    #[test]
    fn counter_sum_equals_stream_weight() {
        // Invariant: every update adds exactly w to exactly one counter,
        // so the counter total equals the stream total regardless of the
        // random replacement choices.
        let mut uss = UnbiasedSpaceSaving::new(16, 4, 2);
        let mut rng = hashkit::XorShift64Star::new(9);
        let mut total = 0u64;
        for _ in 0..20_000 {
            let key = (rng.next_u64() % 500) as u32;
            let w = 1 + rng.next_u64() % 4;
            uss.update(&k(key), w);
            total += w;
        }
        let sum: u64 = uss.records().iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn estimates_are_unbiased() {
        // Average the estimate of one mid-sized flow across many
        // independent runs; the mean must approach the true size. (A
        // plain SpaceSaving overestimates systematically here.)
        let true_size = 60u64;
        let trials = 300;
        let mut acc = 0f64;
        for trial in 0..trials {
            let mut uss = UnbiasedSpaceSaving::new(16, 4, 1000 + trial);
            let mut rng = hashkit::XorShift64Star::new(50_000 + trial);
            // Interleave: the watched flow (id 0) plus heavy churn.
            let mut sent = 0u64;
            while sent < true_size {
                uss.update(&k(0), 1);
                sent += 1;
                for _ in 0..20 {
                    uss.update(&k(1 + (rng.next_u64() % 2_000) as u32), 1);
                }
            }
            acc += uss.query(&k(0)) as f64;
        }
        let mean = acc / f64::from(trials as u32);
        let rel = (mean - true_size as f64).abs() / true_size as f64;
        assert!(rel < 0.15, "mean estimate {mean} vs true {true_size}");
    }

    #[test]
    fn subset_sum_is_unbiased() {
        // The USS design goal: the total weight attributed to a *subset*
        // of flows is unbiased. Group flows by id parity and compare.
        let mut uss = UnbiasedSpaceSaving::new(64, 4, 3);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let mut rng = hashkit::XorShift64Star::new(8);
        for _ in 0..50_000 {
            let key = (rng.next_u64() % 1_000) as u32;
            uss.update(&k(key), 1);
            *truth.entry(key).or_insert(0) += 1;
        }
        let true_even: u64 = truth
            .iter()
            .filter(|(id, _)| *id % 2 == 0)
            .map(|(_, &v)| v)
            .sum();
        let est_even: u64 = uss
            .records()
            .iter()
            .filter(|(key, _)| u32::from_be_bytes(key.as_slice().try_into().unwrap()) % 2 == 0)
            .map(|&(_, v)| v)
            .sum();
        let rel = (est_even as f64 - true_even as f64).abs() / true_even as f64;
        assert!(rel < 0.10, "subset estimate {est_even} vs true {true_even}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut uss = UnbiasedSpaceSaving::new(8, 4, seed);
            for i in 0..1_000u32 {
                uss.update(&k(i % 50), 1);
            }
            let mut r = uss.records();
            r.sort_unstable();
            r
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn naive_uss_matches_accelerated_distributionally() {
        // Same algorithm, different data structure: over many runs the
        // naive and accelerated implementations give statistically
        // matching estimates for a mid-sized flow.
        let watched = 40u64;
        let trials = 200u32;
        let mut acc_fast = 0f64;
        let mut acc_naive = 0f64;
        for t in 0..trials {
            let mut fast = UnbiasedSpaceSaving::new(8, 4, u64::from(t));
            let mut naive = NaiveUss::new(8, 4, u64::from(t) + 10_000);
            let mut rng = hashkit::XorShift64Star::new(u64::from(t) + 77);
            for _ in 0..watched {
                fast.update(&k(0), 1);
                naive.update(&k(0), 1);
                for _ in 0..10 {
                    let noise = k(1 + (rng.next_u64() % 400) as u32);
                    fast.update(&noise, 1);
                    naive.update(&noise, 1);
                }
            }
            acc_fast += fast.query(&k(0)) as f64;
            acc_naive += naive.query(&k(0)) as f64;
        }
        let mean_fast = acc_fast / f64::from(trials);
        let mean_naive = acc_naive / f64::from(trials);
        let gap = (mean_fast - mean_naive).abs() / watched as f64;
        assert!(gap < 0.25, "fast {mean_fast} vs naive {mean_naive}");
    }

    #[test]
    fn naive_uss_conserves_weight() {
        let mut naive = NaiveUss::new(16, 4, 1);
        let mut rng = hashkit::XorShift64Star::new(2);
        let mut total = 0u64;
        for _ in 0..10_000 {
            let w = 1 + rng.next_u64() % 3;
            naive.update(&k((rng.next_u64() % 200) as u32), w);
            total += w;
        }
        let sum: u64 = naive.records().iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn heavy_flow_retained() {
        let mut uss = UnbiasedSpaceSaving::new(8, 4, 6);
        let mut rng = hashkit::XorShift64Star::new(31);
        for step in 0..60_000u64 {
            if step % 3 == 0 {
                uss.update(&k(7), 1);
            } else {
                uss.update(&k(1000 + (rng.next_u64() % 100_000) as u32), 1);
            }
        }
        let est = uss.query(&k(7));
        let true_size = 20_000u64;
        let rel = (est as f64 - true_size as f64).abs() / true_size as f64;
        assert!(rel < 0.5, "heavy flow estimate {est} vs {true_size}");
    }
}

//! UnivMon (Liu et al., SIGCOMM 2016): universal streaming with a
//! hierarchy of sampled Count sketches.
//!
//! Level 0 sees every packet; level *i* sees a flow only if *i*
//! independent hash coins all come up heads, halving the expected flow
//! population per level. Each level pairs a Count sketch with a top-k
//! heap. G-sum statistics combine the levels; for the heavy-hitter
//! tasks evaluated here, level 0's heap carries the answers, and the
//! deeper levels are the (memory) price of UnivMon's generality — which
//! is exactly why it trails purpose-built sketches in the paper's
//! fixed-memory comparisons.

use hashkit::bob_hash64;
use traffic::KeyBytes;

use crate::count::CountSketch;
use crate::topk::TopK;
use crate::traits::{buckets_for, Sketch, COUNTER_BYTES};

/// One sketch level: Count sketch + heap of that level's heavy flows.
#[derive(Debug, Clone)]
struct Level {
    cs: CountSketch,
    heap: TopK,
}

/// UnivMon with `levels` sampled Count-sketch layers.
#[derive(Debug, Clone)]
pub struct UnivMon {
    levels: Vec<Level>,
    sample_seed: u32,
}

impl UnivMon {
    /// Levels used by default (UnivMon uses ~log(n) levels; 14 covers
    /// the 10k–1M flow range of the evaluation traces).
    pub const DEFAULT_LEVELS: usize = 14;
    /// Count-sketch rows per level.
    const DEPTH: usize = 3;
    /// Heap share of each level's budget.
    const HEAP_SHARE: f64 = 0.25;

    /// Build with an explicit level count from a total memory budget.
    pub fn with_levels(mem_bytes: usize, levels: usize, key_bytes: usize, seed: u64) -> Self {
        assert!(levels > 0, "UnivMon needs at least one level");
        let per_level = (mem_bytes / levels).max(1); // LINT: bounded(levels > 0 asserted above)
        let heap_mem = (per_level as f64 * Self::HEAP_SHARE) as usize;
        let heap_cap = buckets_for(heap_mem, key_bytes + COUNTER_BYTES);
        let levels = (0..levels)
            .map(|i| Level {
                cs: CountSketch::with_memory(
                    per_level - heap_mem,
                    Self::DEPTH,
                    seed.wrapping_add(i as u64 * 0x9e37),
                ),
                heap: TopK::new(heap_cap, key_bytes),
            })
            .collect();
        Self {
            levels,
            sample_seed: (seed >> 32) as u32 ^ seed as u32 ^ 0x1234_5678,
        }
    }

    /// Build with the default level count.
    pub fn with_memory(mem_bytes: usize, key_bytes: usize, seed: u64) -> Self {
        Self::with_levels(mem_bytes, Self::DEFAULT_LEVELS, key_bytes, seed)
    }

    /// The deepest level this key reaches: the number of consecutive
    /// ones in its sampling hash (each level-halving coin is one bit).
    #[inline]
    fn max_level(&self, key: &KeyBytes) -> usize {
        let h = bob_hash64(key.as_slice(), self.sample_seed);
        (h.trailing_ones() as usize).min(self.levels.len() - 1)
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }
}

impl Sketch for UnivMon {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        let z = self.max_level(key);
        // LINT: bounded(max_level() returns z < levels.len())
        for level in self.levels[..=z].iter_mut() {
            level.cs.insert(key, w);
            let est = level.cs.estimate(key);
            if est > level.heap.min_tracked() || level.heap.get(key).is_some() {
                level.heap.offer(*key, est);
            }
        }
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        self.levels[0]
            .heap
            .get(key)
            .unwrap_or_else(|| self.levels[0].cs.estimate(key))
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.levels[0].heap.entries()
    }

    fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.cs.memory_bytes() + l.heap.memory_bytes())
            .sum()
    }

    fn name(&self) -> &'static str {
        "UnivMon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn finds_heavy_hitters_at_level_zero() {
        let mut u = UnivMon::with_memory(256 * 1024, 4, 1);
        for rep in 0..1_000u32 {
            for h in 0..5u32 {
                u.update(&k(h), 1);
            }
            u.update(&k(1_000 + rep % 300), 1);
        }
        for h in 0..5u32 {
            let est = u.query(&k(h));
            assert!((900..=1100).contains(&est), "heavy flow {h} estimate {est}");
        }
    }

    #[test]
    fn sampling_halves_population() {
        // Roughly half of keys reach level 1, a quarter level 2, ...
        let u = UnivMon::with_memory(64 * 1024, 4, 3);
        let n = 20_000u32;
        let mut reach1 = 0u32;
        let mut reach2 = 0u32;
        for i in 0..n {
            let z = u.max_level(&k(i));
            if z >= 1 {
                reach1 += 1;
            }
            if z >= 2 {
                reach2 += 1;
            }
        }
        let f1 = f64::from(reach1) / f64::from(n);
        let f2 = f64::from(reach2) / f64::from(n);
        assert!((f1 - 0.5).abs() < 0.03, "level-1 fraction {f1}");
        assert!((f2 - 0.25).abs() < 0.03, "level-2 fraction {f2}");
    }

    #[test]
    fn level_membership_is_consistent() {
        // A key's level is a pure function of the key.
        let u = UnivMon::with_memory(64 * 1024, 4, 4);
        for i in 0..100u32 {
            assert_eq!(u.max_level(&k(i)), u.max_level(&k(i)));
        }
    }

    #[test]
    fn memory_spread_across_levels() {
        let u = UnivMon::with_memory(500_000, 13, 5);
        assert_eq!(u.levels(), UnivMon::DEFAULT_LEVELS);
        assert!(u.memory_bytes() <= 500_000);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        UnivMon::with_levels(1024, 0, 4, 1);
    }
}

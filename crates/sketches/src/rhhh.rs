//! Randomized Hierarchical Heavy Hitters (Ben-Basat et al., SIGCOMM
//! 2017) — "R-HHH".
//!
//! R-HHH keeps one heavy-hitter structure per hierarchy level but, to
//! reach constant update time, flips a uniform die per packet and
//! updates only the selected level. Estimates are scaled back by the
//! number of levels `H`. The constant-time update is bought with
//! sampling noise: reaching a given error bound needs ~H× the memory —
//! the tradeoff Figures 11 and 12 of the CocoSketch paper demonstrate.
//!
//! Per-level structures are SpaceSaving instances, as in the original
//! R-HHH design.

use hashkit::XorShift64Star;
use traffic::{FiveTuple, KeyBytes, KeySpec};

use crate::spacesaving::SpaceSaving;
use crate::stream_summary::StreamSummary;
use crate::traits::Sketch;

/// R-HHH over an explicit list of hierarchy levels.
#[derive(Debug, Clone)]
pub struct Rhhh {
    levels: Vec<SpaceSaving>,
    specs: Vec<KeySpec>,
    rng: XorShift64Star,
    /// Packets seen (all levels together), for diagnostics.
    packets: u64,
}

impl Rhhh {
    /// Build one SpaceSaving per level, splitting `mem_bytes` evenly.
    ///
    /// `specs` is the hierarchy (e.g. the 33 source-IP prefix lengths for
    /// 1-d HHH, or the 33x33 grid for 2-d).
    pub fn with_memory(mem_bytes: usize, specs: Vec<KeySpec>, seed: u64) -> Self {
        assert!(!specs.is_empty(), "R-HHH needs at least one level");
        let per_level = mem_bytes / specs.len(); // LINT: bounded(specs non-empty, asserted above)
        let levels = specs
            .iter()
            .map(|spec| {
                let key_bytes = spec.encoded_len().max(1);
                let cap = (per_level / StreamSummary::bytes_per_item(key_bytes)).max(1); // LINT: bounded(bytes_per_item sums positive constants)
                SpaceSaving::new(cap, key_bytes)
            })
            .collect();
        Self {
            levels,
            specs,
            rng: XorShift64Star::new(seed),
            packets: 0,
        }
    }

    /// Number of hierarchy levels `H`.
    pub fn num_levels(&self) -> usize {
        self.specs.len()
    }

    /// Process one packet: exactly one uniformly chosen level is updated
    /// (the R-HHH constant-time trick).
    pub fn update(&mut self, flow: &FiveTuple, w: u64) {
        self.packets += 1;
        let lvl = self.rng.below(self.levels.len() as u64) as usize;
        let key = self.specs[lvl].project(flow); // LINT: bounded(lvl = below(levels.len()) and levels.len() == specs.len())
        self.levels[lvl].update(&key, w); // LINT: bounded(same lvl bound)
    }

    /// Estimated size of `key` at hierarchy level `level`, unscaled
    /// sample count multiplied by `H` to undo the per-packet sampling.
    pub fn query(&self, level: usize, key: &KeyBytes) -> u64 {
        self.levels[level].query(key) * self.num_levels() as u64 // LINT: bounded(caller contract: level < num_levels())
    }

    /// Recorded flows of one level, estimates rescaled by `H`.
    pub fn records_for(&self, level: usize) -> Vec<(KeyBytes, u64)> {
        let h = self.num_levels() as u64;
        self.levels[level] // LINT: bounded(caller contract: level < num_levels())
            .records()
            .into_iter()
            .map(|(k, v)| (k, v * h))
            .collect()
    }

    /// The hierarchy this instance was built for.
    pub fn specs(&self) -> &[KeySpec] {
        &self.specs
    }

    /// Modeled memory across all levels.
    pub fn memory_bytes(&self) -> usize {
        self.levels.iter().map(Sketch::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_hierarchy() -> Vec<KeySpec> {
        // 8 levels is enough structure for unit tests (full runs use 33).
        (0..8u8).map(|b| KeySpec::src_prefix(32 - b * 4)).collect()
    }

    fn flow(ip: u32) -> FiveTuple {
        FiveTuple::new(ip, 1, 1, 1, 6)
    }

    #[test]
    fn scaling_unbiases_sampling() {
        // One dominant source: its estimate at the full-IP level should
        // approach the true size despite 1/H sampling.
        let mut r = Rhhh::with_memory(64 * 1024, src_hierarchy(), 42);
        let n = 80_000u64;
        for _ in 0..n {
            r.update(&flow(0x0A000001), 1);
        }
        let key = KeySpec::src_prefix(32).project(&flow(0x0A000001));
        let est = r.query(0, &key);
        let rel = (est as f64 - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "estimate {est} vs true {n}");
    }

    #[test]
    fn levels_split_updates_roughly_evenly() {
        let mut r = Rhhh::with_memory(64 * 1024, src_hierarchy(), 7);
        for i in 0..40_000u32 {
            r.update(&flow(i), 1);
        }
        // Every level should have recorded something; the raw per-level
        // totals should be near n/H.
        for lvl in 0..r.num_levels() {
            let total: u64 = r.levels[lvl].records().iter().map(|&(_, v)| v).sum();
            let expect = 40_000.0 / 8.0;
            assert!(
                (total as f64 - expect).abs() < expect * 0.25,
                "level {lvl} saw {total}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn prefix_levels_aggregate() {
        // Two /32 sources under one /28: the /28 level should see both.
        let mut r = Rhhh::with_memory(64 * 1024, src_hierarchy(), 3);
        for _ in 0..30_000 {
            r.update(&flow(0x0A000001), 1);
            r.update(&flow(0x0A000002), 1);
        }
        let spec28 = KeySpec::src_prefix(28);
        let lvl = r.specs().iter().position(|s| *s == spec28).unwrap();
        let key = spec28.project(&flow(0x0A000001));
        let est = r.query(lvl, &key);
        let true_size = 60_000f64;
        assert!(
            (est as f64 - true_size).abs() / true_size < 0.1,
            "/28 estimate {est} vs {true_size}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = Rhhh::with_memory(16 * 1024, src_hierarchy(), seed);
            for i in 0..5_000u32 {
                r.update(&flow(i % 100), 1);
            }
            let mut recs = r.records_for(0);
            recs.sort_unstable();
            recs
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_panics() {
        Rhhh::with_memory(1024, vec![], 1);
    }

    #[test]
    fn memory_split_across_levels() {
        let r = Rhhh::with_memory(330_000, src_hierarchy(), 1);
        assert!(r.memory_bytes() <= 330_000);
    }
}

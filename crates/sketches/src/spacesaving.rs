//! SpaceSaving (Metwally, Agrawal & El Abbadi 2005): the classic
//! deterministic top-k counter scheme.
//!
//! On a full summary, an unseen flow always steals the minimum counter
//! and inherits its count (the overestimate that gives SpaceSaving its
//! `f(e) ≤ f̂(e) ≤ f(e) + N/m` guarantee). Estimates are biased upward —
//! that bias is exactly what Unbiased SpaceSaving (and CocoSketch)
//! remove for subset-sum workloads.

use traffic::KeyBytes;

use crate::stream_summary::StreamSummary;
use crate::traits::Sketch;

/// SpaceSaving over a [`StreamSummary`].
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    summary: StreamSummary,
}

impl SpaceSaving {
    /// Track at most `capacity` flows.
    pub fn new(capacity: usize, key_bytes: usize) -> Self {
        Self {
            summary: StreamSummary::new(capacity, key_bytes),
        }
    }

    /// Size to a memory budget (charged at the Stream-Summary's real
    /// per-item cost, auxiliary structures included).
    pub fn with_memory(mem_bytes: usize, key_bytes: usize) -> Self {
        let cap = (mem_bytes / StreamSummary::bytes_per_item(key_bytes)).max(1); // LINT: bounded(bytes_per_item sums positive constants)
        Self::new(cap, key_bytes)
    }

    /// Tracked-flow capacity.
    pub fn capacity(&self) -> usize {
        self.summary.capacity()
    }
}

impl Sketch for SpaceSaving {
    fn update(&mut self, key: &KeyBytes, w: u64) {
        if self.summary.increment(key, w) {
            return;
        }
        if !self.summary.is_full() {
            self.summary.insert(*key, w);
        } else {
            // Steal the minimum counter: new count = c_min + w.
            self.summary.bump_min(w, Some(*key));
        }
    }

    fn query(&self, key: &KeyBytes) -> u64 {
        self.summary.get(key).unwrap_or(0)
    }

    fn records(&self) -> Vec<(KeyBytes, u64)> {
        self.summary.entries()
    }

    fn memory_bytes(&self) -> usize {
        self.summary.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "SS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> KeyBytes {
        KeyBytes::new(&i.to_be_bytes())
    }

    #[test]
    fn tracks_exact_until_full() {
        let mut ss = SpaceSaving::new(4, 4);
        for rep in 0..3 {
            for i in 0..4u32 {
                ss.update(&k(i), u64::from(i) + 1);
            }
            let _ = rep;
        }
        for i in 0..4u32 {
            assert_eq!(ss.query(&k(i)), 3 * (u64::from(i) + 1));
        }
    }

    #[test]
    fn overestimates_never_underestimate() {
        // SpaceSaving guarantee: estimate >= true count for tracked flows.
        let mut ss = SpaceSaving::new(8, 4);
        let mut truth = std::collections::HashMap::new();
        let mut rng = hashkit::XorShift64Star::new(3);
        for _ in 0..10_000 {
            let key = (rng.next_u64() % 64) as u32;
            ss.update(&k(key), 1);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (key, est) in ss.records() {
            let id = u32::from_be_bytes(key.as_slice().try_into().unwrap());
            assert!(
                est >= truth[&id],
                "flow {id}: est {est} < true {}",
                truth[&id]
            );
        }
    }

    #[test]
    fn error_bound_n_over_m() {
        // Estimate error is at most N/m.
        let mut ss = SpaceSaving::new(16, 4);
        let mut rng = hashkit::XorShift64Star::new(5);
        let mut truth = std::collections::HashMap::new();
        let n = 20_000u64;
        for _ in 0..n {
            let key = (rng.next_u64() % 100) as u32;
            ss.update(&k(key), 1);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        let bound = n / 16;
        for (key, est) in ss.records() {
            let id = u32::from_be_bytes(key.as_slice().try_into().unwrap());
            assert!(
                est - truth[&id] <= bound,
                "flow {id}: overshoot {} > bound {bound}",
                est - truth[&id]
            );
        }
    }

    #[test]
    fn heavy_flows_survive_churn() {
        let mut ss = SpaceSaving::new(8, 4);
        let mut rng = hashkit::XorShift64Star::new(11);
        for step in 0..50_000u64 {
            // One dominant flow amid a storm of one-hit wonders.
            if step % 3 == 0 {
                ss.update(&k(7), 1);
            } else {
                ss.update(&k(1000 + (rng.next_u64() % 100_000) as u32), 1);
            }
        }
        assert!(
            ss.query(&k(7)) >= 50_000 / 3,
            "heavy flow must stay tracked"
        );
    }

    #[test]
    fn with_memory_capacity() {
        let ss = SpaceSaving::with_memory(10_000, 13);
        assert_eq!(ss.capacity(), 10_000 / StreamSummary::bytes_per_item(13));
    }

    #[test]
    fn untracked_queries_zero() {
        let ss = SpaceSaving::new(4, 4);
        assert_eq!(ss.query(&k(1)), 0);
        assert!(ss.records().is_empty());
    }
}

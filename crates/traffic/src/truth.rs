//! Exact ground truth for accuracy evaluation.
//!
//! Every accuracy metric in the paper (recall, precision, F1, ARE)
//! compares a sketch's answers against exact per-key counts. This module
//! computes those with plain (deterministic, fast-hashed) hash maps — memory-hungry but exact, which
//! is fine offline.

use crate::key::KeyBytes;
use crate::keyspec::KeySpec;
use crate::packet::Trace;
use hashkit::{fast_map_with_capacity, FastMap, FastSet};

/// Exact flow sizes of `trace` under `spec`.
pub fn exact_counts(trace: &Trace, spec: &KeySpec) -> FastMap<KeyBytes, u64> {
    let mut counts: FastMap<KeyBytes, u64> = FastMap::default();
    for p in &trace.packets {
        *counts.entry(spec.project(&p.flow)).or_insert(0) += u64::from(p.weight);
    }
    counts
}

/// Exact counts for several keys at once (single pass over the trace).
pub fn exact_counts_multi(trace: &Trace, specs: &[KeySpec]) -> Vec<FastMap<KeyBytes, u64>> {
    let mut out: Vec<FastMap<KeyBytes, u64>> = specs.iter().map(|_| FastMap::default()).collect();
    for p in &trace.packets {
        for (spec, counts) in specs.iter().zip(&mut out) {
            *counts.entry(spec.project(&p.flow)).or_insert(0) += u64::from(p.weight);
        }
    }
    out
}

/// Project a full-key count table down to a partial key, aggregating
/// counts — equivalent to [`exact_counts`]`(trace, spec)` when
/// `full_counts` is `exact_counts(trace, full)` and `spec ≺ full`, but
/// it runs over the distinct-flow table instead of the packet stream.
/// For deep hierarchies (the 1089-level 2-d HHH ground truth) this is
/// orders of magnitude faster.
pub fn project_counts(
    full_counts: &FastMap<KeyBytes, u64>,
    full: &KeySpec,
    spec: &KeySpec,
) -> FastMap<KeyBytes, u64> {
    assert!(
        spec.is_partial_of(full),
        "{spec:?} is not partial of {full:?}"
    );
    let proj = spec.projector(full);
    let mut out: FastMap<KeyBytes, u64> = fast_map_with_capacity(full_counts.len());
    for (key, &count) in full_counts {
        *out.entry(proj.project(key)).or_insert(0) += count;
    }
    out
}

/// Multi-level exact counts via one packet pass for the full key and
/// level-to-level rollup of the resulting count tables.
///
/// Each level is aggregated from the smallest already-computed ancestor
/// level rather than from the full table (falling back to the full
/// table for levels with no in-hierarchy ancestor). Projection
/// composes — `g_{P2←F} = g_{P2←P1} ∘ g_{P1←F}` — and the per-key sums
/// are exact `u64` additions, so the result is identical to projecting
/// every level from the full table; for deep hierarchies (the
/// 1089-level 2-d HHH grid) the rollup maps shrink level over level and
/// the work drops by orders of magnitude.
pub fn exact_counts_hierarchy(
    trace: &Trace,
    full: &KeySpec,
    hierarchy: &[KeySpec],
) -> Vec<FastMap<KeyBytes, u64>> {
    let full_counts = exact_counts(trace, full);
    let mut out: Vec<FastMap<KeyBytes, u64>> = Vec::with_capacity(hierarchy.len());
    for (i, spec) in hierarchy.iter().enumerate() {
        let parent = (0..i)
            .filter(|&j| spec.is_partial_of(&hierarchy[j]))
            .min_by_key(|&j| out[j].len());
        let counts = match parent {
            Some(j) if out[j].len() < full_counts.len() => {
                project_counts(&out[j], &hierarchy[j], spec)
            }
            _ => project_counts(&full_counts, full, spec),
        };
        out.push(counts);
    }
    out
}

/// Flows whose exact size is at least `threshold`.
pub fn heavy_hitters(counts: &FastMap<KeyBytes, u64>, threshold: u64) -> FastSet<KeyBytes> {
    counts
        .iter()
        .filter(|(_, &v)| v >= threshold)
        .map(|(k, _)| *k)
        .collect()
}

/// Flows whose size changed by at least `threshold` between two windows.
///
/// Flows absent from a window count as size 0 there, so births and deaths
/// of large flows are changes too.
pub fn heavy_changes(
    before: &FastMap<KeyBytes, u64>,
    after: &FastMap<KeyBytes, u64>,
    threshold: u64,
) -> FastSet<KeyBytes> {
    let mut out = FastSet::default();
    for (k, &v1) in before {
        let v2 = after.get(k).copied().unwrap_or(0);
        if v1.abs_diff(v2) >= threshold {
            out.insert(*k);
        }
    }
    for (k, &v2) in after {
        if !before.contains_key(k) && v2 >= threshold {
            out.insert(*k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FiveTuple;
    use crate::packet::Packet;

    fn tiny_trace() -> Trace {
        // Flow A (10.0.0.1) x3, flow B (10.0.0.2) x1, same /24.
        let a = FiveTuple::new(0x0A000001, 1, 1, 1, 6);
        let b = FiveTuple::new(0x0A000002, 1, 1, 1, 6);
        Trace {
            packets: vec![
                Packet::count(a),
                Packet::count(b),
                Packet::count(a),
                Packet::count(a),
            ],
        }
    }

    #[test]
    fn exact_counts_full_key() {
        let counts = exact_counts(&tiny_trace(), &KeySpec::FIVE_TUPLE);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts.values().copied().max(), Some(3));
        assert_eq!(counts.values().copied().sum::<u64>(), 4);
    }

    #[test]
    fn partial_key_aggregates() {
        // Both flows share the /24, so the prefix key has a single flow of 4.
        let counts = exact_counts(&tiny_trace(), &KeySpec::src_prefix(24));
        assert_eq!(counts.len(), 1);
        assert_eq!(counts.values().next(), Some(&4));
    }

    #[test]
    fn definition1_consistency() {
        // Sum over full-key flows mapping to a partial flow == partial count.
        let t = tiny_trace();
        let full = exact_counts(&t, &KeySpec::FIVE_TUPLE);
        let spec = KeySpec::src_prefix(24);
        let partial = exact_counts(&t, &spec);
        for (pk, &pv) in &partial {
            let agg: u64 = full
                .iter()
                .filter(|(fk, _)| spec.project_key(&KeySpec::FIVE_TUPLE, fk) == *pk)
                .map(|(_, &v)| v)
                .sum();
            assert_eq!(agg, pv);
        }
    }

    #[test]
    fn multi_matches_single() {
        let t = tiny_trace();
        let specs = [KeySpec::FIVE_TUPLE, KeySpec::SRC_IP];
        let multi = exact_counts_multi(&t, &specs);
        for (spec, m) in specs.iter().zip(&multi) {
            assert_eq!(*m, exact_counts(&t, spec));
        }
    }

    #[test]
    fn project_counts_matches_direct_counting() {
        let t = tiny_trace();
        let full_counts = exact_counts(&t, &KeySpec::FIVE_TUPLE);
        for spec in [KeySpec::SRC_IP, KeySpec::src_prefix(24), KeySpec::EMPTY] {
            let projected = project_counts(&full_counts, &KeySpec::FIVE_TUPLE, &spec);
            assert_eq!(projected, exact_counts(&t, &spec), "{spec:?}");
        }
    }

    #[test]
    fn hierarchy_counts_match_multi() {
        let t = tiny_trace();
        let hierarchy = [KeySpec::SRC_IP, KeySpec::src_prefix(16), KeySpec::EMPTY];
        let fast = exact_counts_hierarchy(&t, &KeySpec::SRC_IP, &hierarchy);
        let slow = exact_counts_multi(&t, &hierarchy);
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic(expected = "not partial")]
    fn project_counts_rejects_non_partial() {
        let full_counts = exact_counts(&tiny_trace(), &KeySpec::SRC_IP);
        let _ = project_counts(&full_counts, &KeySpec::SRC_IP, &KeySpec::SRC_DST);
    }

    #[test]
    fn heavy_hitters_threshold() {
        let counts = exact_counts(&tiny_trace(), &KeySpec::FIVE_TUPLE);
        assert_eq!(heavy_hitters(&counts, 3).len(), 1);
        assert_eq!(heavy_hitters(&counts, 1).len(), 2);
        assert_eq!(heavy_hitters(&counts, 5).len(), 0);
    }

    #[test]
    fn heavy_changes_includes_births_and_deaths() {
        let a = KeyBytes::new(&[1]);
        let b = KeyBytes::new(&[2]);
        let c = KeyBytes::new(&[3]);
        let before: FastMap<_, _> = [(a, 100u64), (b, 50)].into_iter().collect();
        let after: FastMap<_, _> = [(b, 45u64), (c, 80)].into_iter().collect();
        let changes = heavy_changes(&before, &after, 20);
        assert!(changes.contains(&a), "death of a is a change");
        assert!(changes.contains(&c), "birth of c is a change");
        assert!(!changes.contains(&b), "b moved only 5");
    }

    #[test]
    fn heavy_changes_empty_when_identical() {
        let counts = exact_counts(&tiny_trace(), &KeySpec::FIVE_TUPLE);
        assert!(heavy_changes(&counts, &counts, 1).is_empty());
    }
}

//! Named workload presets mirroring the paper's two traces.
//!
//! The paper's CAIDA slice has ~27M packets over 60s; the MAWI slice has
//! ~13M over 15min with a flatter flow-size law. Running the full sizes
//! takes minutes per experiment point, so the presets take a `scale`
//! divisor: `caida_like(10, seed)` is a 1/10-size workload with identical
//! skew. The figure harness defaults to `scale = 10`; pass `--scale 1`
//! for full-size runs.

use crate::gen::{self, TraceConfig};
use crate::packet::Trace;

/// Full-size packet count of the CAIDA-like preset.
pub const CAIDA_FULL_PACKETS: usize = 27_000_000;
/// Full-size distinct flows of the CAIDA-like preset.
pub const CAIDA_FULL_FLOWS: usize = 1_300_000;
/// Full-size packet count of the MAWI-like preset.
pub const MAWI_FULL_PACKETS: usize = 13_000_000;
/// Full-size distinct flows of the MAWI-like preset.
pub const MAWI_FULL_FLOWS: usize = 800_000;

/// Config of a CAIDA-like workload at `1/scale` of the paper's size.
pub fn caida_config(scale: usize, seed: u64) -> TraceConfig {
    assert!(scale > 0);
    TraceConfig {
        packets: (CAIDA_FULL_PACKETS / scale).max(1_000),
        flows: (CAIDA_FULL_FLOWS / scale).max(100),
        alpha: 1.05,
        ip_skew: 1.0,
        seed,
    }
}

/// Config of a MAWI-like workload: flatter size law, relatively more
/// small flows.
pub fn mawi_config(scale: usize, seed: u64) -> TraceConfig {
    assert!(scale > 0);
    TraceConfig {
        packets: (MAWI_FULL_PACKETS / scale).max(1_000),
        flows: (MAWI_FULL_FLOWS / scale).max(100),
        alpha: 0.9,
        ip_skew: 0.8,
        seed,
    }
}

/// Generate the CAIDA-like trace.
pub fn caida_like(scale: usize, seed: u64) -> Trace {
    gen::generate(&caida_config(scale, seed))
}

/// Generate the MAWI-like trace.
pub fn mawi_like(scale: usize, seed: u64) -> Trace {
    gen::generate(&mawi_config(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sizes() {
        let c = caida_config(100, 1);
        assert_eq!(c.packets, 270_000);
        assert_eq!(c.flows, 13_000);
        let m = mawi_config(100, 1);
        assert_eq!(m.packets, 130_000);
        assert_eq!(m.flows, 8_000);
    }

    #[test]
    fn floors_apply_at_extreme_scale() {
        let c = caida_config(usize::MAX, 1);
        assert_eq!(c.packets, 1_000);
        assert_eq!(c.flows, 100);
    }

    #[test]
    fn caida_preset_generates() {
        let t = caida_like(1_000, 7);
        assert_eq!(t.distinct_flows(), 1_300);
        assert!(t.len() >= 26_000);
    }

    #[test]
    fn mawi_flatter_than_caida() {
        // At matched sizes, MAWI-like top flow should carry a smaller
        // share than CAIDA-like (alpha 0.9 vs 1.05).
        use crate::gen::zipf_sizes;
        let c = zipf_sizes(100_000, 10_000, 1.05);
        let m = zipf_sizes(100_000, 10_000, 0.9);
        assert!(c[0] > m[0], "caida head {} vs mawi head {}", c[0], m[0]);
    }
}

//! Minimal libpcap-format reader: feed real captures to the sketches.
//!
//! Parses classic `.pcap` files (the 24-byte global header followed by
//! 16-byte per-record headers), Ethernet II framing, IPv4, and the
//! TCP/UDP port fields — exactly the fields a [`FiveTuple`] needs.
//! Non-IPv4 packets, fragments without a transport header, and
//! truncated captures are skipped and counted rather than failing the
//! whole file, which is how measurement pipelines treat dirty
//! captures.
//!
//! Both endiannesses of the magic are supported; nanosecond-precision
//! variants (magic `0xa1b23c4d`) parse identically since we ignore
//! timestamps. The `weight` of each produced packet is the captured
//! IP total length, so byte-count measurement works out of the box
//! (use [`Packet::count`]-style re-weighting for packet counting).

use crate::key::FiveTuple;
use crate::packet::{Packet, Trace};
use std::io;
use std::path::Path;

const MAGIC_US_BE: u32 = 0xa1b2_c3d4;
const MAGIC_US_LE: u32 = 0xd4c3_b2a1;
const MAGIC_NS_BE: u32 = 0xa1b2_3c4d;
const MAGIC_NS_LE: u32 = 0x4d3c_b2a1;

/// Outcome of parsing a capture.
#[derive(Debug, Clone, Default)]
pub struct PcapStats {
    /// Records successfully turned into packets.
    pub parsed: usize,
    /// Records skipped (non-IPv4, truncated, fragment, non-TCP/UDP
    /// kept — see note below).
    pub skipped: usize,
}

/// Read `u16`/`u32` helpers honoring the file's endianness.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    little_endian: bool,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = self.data.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }

    fn u32_file(&mut self) -> Option<u32> {
        let b: [u8; 4] = self.take(4)?.try_into().ok()?;
        Some(if self.little_endian {
            u32::from_le_bytes(b)
        } else {
            u32::from_be_bytes(b)
        })
    }
}

/// Parse one captured frame into a packet (`None` = skip).
fn parse_frame(frame: &[u8]) -> Option<Packet> {
    // Ethernet II: 14-byte header; EtherType 0x0800 = IPv4 (802.1Q
    // single-tagged frames are unwrapped).
    if frame.len() < 14 {
        return None;
    }
    let (ethertype, mut ip) = {
        let et = u16::from_be_bytes([frame[12], frame[13]]);
        if et == 0x8100 {
            if frame.len() < 18 {
                return None;
            }
            (u16::from_be_bytes([frame[16], frame[17]]), &frame[18..])
        } else {
            (et, &frame[14..])
        }
    };
    if ethertype != 0x0800 {
        return None;
    }
    // IPv4 header.
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(ip[0] & 0x0F) * 4;
    if ihl < 20 || ip.len() < ihl {
        return None;
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]);
    let proto = ip[9];
    let src_ip = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
    let dst_ip = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
    // Fragment with offset > 0: no transport header present.
    let frag_offset = u16::from_be_bytes([ip[6], ip[7]]) & 0x1FFF;
    ip = &ip[ihl..];
    let (src_port, dst_port) = if frag_offset == 0 && (proto == 6 || proto == 17) && ip.len() >= 4 {
        (
            u16::from_be_bytes([ip[0], ip[1]]),
            u16::from_be_bytes([ip[2], ip[3]]),
        )
    } else {
        // ICMP and friends still carry measurable IPv4 flows; ports 0.
        (0, 0)
    };
    Some(Packet {
        flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto),
        weight: u32::from(total_len).max(1),
    })
}

/// Decode a pcap byte buffer into a [`Trace`] plus parse statistics.
pub fn decode(data: &[u8]) -> io::Result<(Trace, PcapStats)> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.len() < 24 {
        return Err(err("truncated pcap global header"));
    }
    let magic = u32::from_be_bytes(data[0..4].try_into().unwrap());
    let little_endian = match magic {
        MAGIC_US_BE | MAGIC_NS_BE => false,
        MAGIC_US_LE | MAGIC_NS_LE => true,
        _ => return Err(err("not a pcap file (bad magic)")),
    };
    let mut r = Reader {
        data,
        pos: 24,
        little_endian,
    };
    let mut trace = Trace::new();
    let mut stats = PcapStats::default();
    while r.remaining() > 0 {
        if r.remaining() < 16 {
            return Err(err("truncated record header"));
        }
        let _ts_sec = r.u32_file().unwrap();
        let _ts_frac = r.u32_file().unwrap();
        let incl_len = r.u32_file().unwrap() as usize;
        let _orig_len = r.u32_file().unwrap();
        let frame = r
            .take(incl_len)
            .ok_or_else(|| err("truncated record body"))?;
        match parse_frame(frame) {
            Some(p) => {
                trace.packets.push(p);
                stats.parsed += 1;
            }
            None => stats.skipped += 1,
        }
    }
    Ok((trace, stats))
}

/// Read a `.pcap` file from disk.
pub fn load(path: &Path) -> io::Result<(Trace, PcapStats)> {
    decode(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a pcap file in memory with the given frames.
    fn pcap(frames: &[Vec<u8>], little_endian: bool) -> Vec<u8> {
        let mut out = Vec::new();
        let magic: u32 = 0xa1b2c3d4;
        let push32 = |out: &mut Vec<u8>, v: u32| {
            out.extend_from_slice(&if little_endian {
                v.to_le_bytes()
            } else {
                v.to_be_bytes()
            })
        };
        push32(&mut out, magic);
        // version 2.4, zone 0, sigfigs 0, snaplen, linktype 1 (Ethernet)
        let push16 = |out: &mut Vec<u8>, v: u16| {
            out.extend_from_slice(&if little_endian {
                v.to_le_bytes()
            } else {
                v.to_be_bytes()
            })
        };
        push16(&mut out, 2);
        push16(&mut out, 4);
        push32(&mut out, 0);
        push32(&mut out, 0);
        push32(&mut out, 65535);
        push32(&mut out, 1);
        for f in frames {
            push32(&mut out, 0); // ts_sec
            push32(&mut out, 0); // ts_usec
            push32(&mut out, f.len() as u32);
            push32(&mut out, f.len() as u32);
            out.extend_from_slice(f);
        }
        out
    }

    /// A TCP/IPv4/Ethernet frame.
    fn tcp_frame(src: u32, dst: u32, sport: u16, dport: u16, payload: usize) -> Vec<u8> {
        let mut f = vec![0u8; 14];
        f[12] = 0x08; // IPv4
        let total_len = (20 + 20 + payload) as u16;
        let mut ip = vec![0u8; 20];
        ip[0] = 0x45;
        ip[2..4].copy_from_slice(&total_len.to_be_bytes());
        ip[8] = 64; // TTL
        ip[9] = 6; // TCP
        ip[12..16].copy_from_slice(&src.to_be_bytes());
        ip[16..20].copy_from_slice(&dst.to_be_bytes());
        f.extend_from_slice(&ip);
        let mut tcp = vec![0u8; 20];
        tcp[0..2].copy_from_slice(&sport.to_be_bytes());
        tcp[2..4].copy_from_slice(&dport.to_be_bytes());
        f.extend_from_slice(&tcp);
        f.extend(std::iter::repeat(0u8).take(payload));
        f
    }

    #[test]
    fn parses_tcp_flows_both_endiannesses() {
        for le in [false, true] {
            let frames = vec![
                tcp_frame(0x0A000001, 0x0A000002, 1234, 80, 100),
                tcp_frame(0x0A000001, 0x0A000002, 1234, 80, 50),
            ];
            let bytes = pcap(&frames, le);
            let (trace, stats) = decode(&bytes).unwrap();
            assert_eq!(stats.parsed, 2, "le={le}");
            assert_eq!(stats.skipped, 0);
            assert_eq!(trace.packets[0].flow.src_ip, 0x0A000001);
            assert_eq!(trace.packets[0].flow.dst_port, 80);
            assert_eq!(trace.packets[0].flow.proto, 6);
            assert_eq!(trace.packets[0].weight, 140, "IP total length");
            assert_eq!(trace.distinct_flows(), 1);
        }
    }

    #[test]
    fn skips_non_ipv4() {
        let mut arp = vec![0u8; 42];
        arp[12] = 0x08;
        arp[13] = 0x06; // ARP
        let bytes = pcap(&[arp, tcp_frame(1, 2, 3, 4, 0)], false);
        let (trace, stats) = decode(&bytes).unwrap();
        assert_eq!(stats.parsed, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn vlan_tagged_frames_unwrap() {
        let inner = tcp_frame(5, 6, 7, 8, 10);
        // Insert a 4-byte 802.1Q tag after the MACs.
        let mut tagged = inner[..12].to_vec();
        tagged.extend_from_slice(&[0x81, 0x00, 0x00, 0x2A]);
        tagged.extend_from_slice(&inner[12..]);
        let (trace, stats) = decode(&pcap(&[tagged], false)).unwrap();
        assert_eq!(stats.parsed, 1);
        assert_eq!(trace.packets[0].flow.dst_port, 8);
    }

    #[test]
    fn fragments_keep_ips_zero_ports() {
        let mut frag = tcp_frame(9, 10, 11, 12, 0);
        // Set a non-zero fragment offset in the IP header (bytes 6-7
        // after the 14-byte Ethernet header).
        frag[14 + 6] = 0x00;
        frag[14 + 7] = 0x08;
        let (trace, stats) = decode(&pcap(&[frag], false)).unwrap();
        assert_eq!(stats.parsed, 1);
        assert_eq!(trace.packets[0].flow.src_port, 0);
        assert_eq!(trace.packets[0].flow.src_ip, 9);
    }

    #[test]
    fn rejects_non_pcap() {
        assert!(decode(b"definitely not a pcap file, sorry!").is_err());
        assert!(decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn rejects_truncated_record() {
        let mut bytes = pcap(&[tcp_frame(1, 2, 3, 4, 0)], false);
        bytes.truncate(bytes.len() - 5);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn icmp_counts_with_zero_ports() {
        let mut f = tcp_frame(1, 2, 0, 0, 0);
        f[14 + 9] = 1; // ICMP
        let (trace, stats) = decode(&pcap(&[f], false)).unwrap();
        assert_eq!(stats.parsed, 1);
        assert_eq!(trace.packets[0].flow.proto, 1);
    }

    #[test]
    fn empty_capture_is_empty_trace() {
        let (trace, stats) = decode(&pcap(&[], false)).unwrap();
        assert!(trace.is_empty());
        assert_eq!(stats.parsed + stats.skipped, 0);
    }
}

//! Packets and traces.

use crate::key::FiveTuple;

/// One measured packet: a full-key flow identity plus an increment weight.
///
/// The weight is the packet count (1) or byte size depending on what the
/// experiment measures; the paper's default tasks count packets, so the
/// generators emit `weight = 1` unless asked otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// The packet's 5-tuple.
    pub flow: FiveTuple,
    /// The increment this packet contributes (1 for packet counting).
    pub weight: u32,
}

impl Packet {
    /// A unit-weight packet of the given flow.
    pub fn count(flow: FiveTuple) -> Self {
        Self { flow, weight: 1 }
    }
}

/// A replayable packet trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Packets in arrival order.
    pub packets: Vec<Packet>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total weight across all packets.
    pub fn total_weight(&self) -> u64 {
        self.packets.iter().map(|p| u64::from(p.weight)).sum()
    }

    /// Number of distinct 5-tuple flows.
    pub fn distinct_flows(&self) -> usize {
        let mut set: std::collections::HashSet<FiveTuple> =
            std::collections::HashSet::with_capacity(self.packets.len() / 4);
        for p in &self.packets {
            set.insert(p.flow);
        }
        set.len()
    }

    /// Split into `n` equal-length windows (last window takes the
    /// remainder). Used by heavy-change experiments that compare
    /// adjacent measurement windows.
    pub fn windows(&self, n: usize) -> Vec<Trace> {
        assert!(n > 0, "window count must be positive");
        let per = self.packets.len() / n;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let start = i * per;
            let end = if i == n - 1 {
                self.packets.len()
            } else {
                start + per
            };
            out.push(Trace {
                packets: self.packets[start..end].to_vec(),
            });
        }
        out
    }
}

impl FromIterator<Packet> for Trace {
    fn from_iter<T: IntoIterator<Item = Packet>>(iter: T) -> Self {
        Trace {
            packets: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(n: u32) -> Trace {
        (0..n)
            .map(|i| Packet::count(FiveTuple::new(i % 5, 0, 0, 0, 6)))
            .collect()
    }

    #[test]
    fn totals_and_distincts() {
        let t = trace_of(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.total_weight(), 10);
        assert_eq!(t.distinct_flows(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn windows_partition_exactly() {
        let t = trace_of(10);
        let w = t.windows(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].len(), 3);
        assert_eq!(w[1].len(), 3);
        assert_eq!(w[2].len(), 4, "last window takes the remainder");
        let total: usize = w.iter().map(Trace::len).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn windows_preserve_order() {
        let t = trace_of(6);
        let w = t.windows(2);
        assert_eq!(w[0].packets, t.packets[..3]);
        assert_eq!(w[1].packets, t.packets[3..]);
    }

    #[test]
    #[should_panic(expected = "window count")]
    fn zero_windows_panics() {
        trace_of(4).windows(0);
    }

    #[test]
    fn weighted_total() {
        let t: Trace = (1..=4u32)
            .map(|w| Packet {
                flow: FiveTuple::default(),
                weight: w,
            })
            .collect();
        assert_eq!(t.total_weight(), 10);
        assert_eq!(t.distinct_flows(), 1);
    }
}

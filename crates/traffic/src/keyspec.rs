//! Key specifications and the partial-key mapping `g(·)`.
//!
//! A [`KeySpec`] names one *key* in the paper's sense: a subset of the
//! 5-tuple fields, where the two IP fields may additionally be truncated
//! to a prefix. `KeySpec::FIVE_TUPLE` is the usual full key; `SrcIP/24` or
//! `(SrcIP, DstIP)` are partial keys of it.
//!
//! Definition 1 of the paper requires, for `k_P ≺ k_F`, a mapping `g` from
//! full-key flows to partial-key flows such that sizes aggregate. Here
//! `g` is [`KeySpec::project`] (from a [`FiveTuple`]) or
//! [`KeySpec::project_key`] (from an encoded full key): drop the fields
//! the partial key omits and mask the IPs to the prefix length.

use crate::key::{FiveTuple, KeyBytes, MAX_KEY_BYTES};
use std::fmt;

/// Mask keeping the top `bits` of a 32-bit value.
#[inline]
fn prefix_mask(bits: u8) -> u32 {
    debug_assert!(bits <= 32);
    if bits == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(bits))
    }
}

/// A measurement key: which 5-tuple fields participate, and at what IP
/// prefix granularity.
///
/// `src_ip_bits`/`dst_ip_bits` of 0 mean the field is absent; 1–32 keep
/// that many leading bits. Ports and protocol are either present or not.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KeySpec {
    /// Leading bits of the source IP included in the key (0 = absent).
    pub src_ip_bits: u8,
    /// Leading bits of the destination IP included in the key (0 = absent).
    pub dst_ip_bits: u8,
    /// Whether the source port participates.
    pub src_port: bool,
    /// Whether the destination port participates.
    pub dst_port: bool,
    /// Whether the protocol number participates.
    pub proto: bool,
}

impl KeySpec {
    /// The classic 104-bit 5-tuple (the paper's default full key).
    pub const FIVE_TUPLE: KeySpec = KeySpec {
        src_ip_bits: 32,
        dst_ip_bits: 32,
        src_port: true,
        dst_port: true,
        proto: true,
    };
    /// (SrcIP, DstIP) pair.
    pub const SRC_DST: KeySpec = KeySpec {
        src_ip_bits: 32,
        dst_ip_bits: 32,
        src_port: false,
        dst_port: false,
        proto: false,
    };
    /// (SrcIP, SrcPort) pair.
    pub const SRC_IP_PORT: KeySpec = KeySpec {
        src_ip_bits: 32,
        dst_ip_bits: 0,
        src_port: true,
        dst_port: false,
        proto: false,
    };
    /// (DstIP, DstPort) pair.
    pub const DST_IP_PORT: KeySpec = KeySpec {
        src_ip_bits: 0,
        dst_ip_bits: 32,
        src_port: false,
        dst_port: true,
        proto: false,
    };
    /// Source IP alone.
    pub const SRC_IP: KeySpec = KeySpec {
        src_ip_bits: 32,
        dst_ip_bits: 0,
        src_port: false,
        dst_port: false,
        proto: false,
    };
    /// Destination IP alone.
    pub const DST_IP: KeySpec = KeySpec {
        src_ip_bits: 0,
        dst_ip_bits: 32,
        src_port: false,
        dst_port: false,
        proto: false,
    };
    /// The empty key: every packet maps to the single empty-key flow
    /// (the root level of HHH hierarchies).
    pub const EMPTY: KeySpec = KeySpec {
        src_ip_bits: 0,
        dst_ip_bits: 0,
        src_port: false,
        dst_port: false,
        proto: false,
    };

    /// The six partial keys evaluated throughout §7 of the paper, in the
    /// order they are added as "number of keys" grows from 1 to 6.
    pub const PAPER_SIX: [KeySpec; 6] = [
        KeySpec::FIVE_TUPLE,
        KeySpec::SRC_DST,
        KeySpec::SRC_IP_PORT,
        KeySpec::DST_IP_PORT,
        KeySpec::SRC_IP,
        KeySpec::DST_IP,
    ];

    /// Source-IP prefix key of the given length (1..=32).
    pub const fn src_prefix(bits: u8) -> KeySpec {
        KeySpec {
            src_ip_bits: bits,
            dst_ip_bits: 0,
            src_port: false,
            dst_port: false,
            proto: false,
        }
    }

    /// (SrcIP/a, DstIP/b) two-dimensional prefix key.
    pub const fn src_dst_prefix(src_bits: u8, dst_bits: u8) -> KeySpec {
        KeySpec {
            src_ip_bits: src_bits,
            dst_ip_bits: dst_bits,
            src_port: false,
            dst_port: false,
            proto: false,
        }
    }

    /// Encoded key width in bytes under this spec.
    ///
    /// IP fields always occupy 4 bytes when present (masked, not packed),
    /// so the same spec always produces the same width.
    pub fn encoded_len(&self) -> usize {
        let mut n = 0usize;
        if self.src_ip_bits > 0 {
            n += 4;
        }
        if self.dst_ip_bits > 0 {
            n += 4;
        }
        if self.src_port {
            n += 2;
        }
        if self.dst_port {
            n += 2;
        }
        if self.proto {
            n += 1;
        }
        n
    }

    /// The paper charges memory per bucket by key width; this is the
    /// number of key bytes a hardware bucket for this spec stores.
    pub fn key_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// The mapping `g(·)`: project a packet's 5-tuple onto this key.
    #[inline]
    pub fn project(&self, ft: &FiveTuple) -> KeyBytes {
        let mut buf = [0u8; MAX_KEY_BYTES];
        let mut n = 0usize;
        if self.src_ip_bits > 0 {
            let v = ft.src_ip & prefix_mask(self.src_ip_bits);
            buf[n..n + 4].copy_from_slice(&v.to_be_bytes()); // LINT: bounded(n tracks encoded_len() <= MAX_KEY_BYTES = buf.len())
            n += 4;
        }
        if self.dst_ip_bits > 0 {
            let v = ft.dst_ip & prefix_mask(self.dst_ip_bits);
            buf[n..n + 4].copy_from_slice(&v.to_be_bytes()); // LINT: bounded(n tracks encoded_len() <= MAX_KEY_BYTES = buf.len())
            n += 4;
        }
        if self.src_port {
            buf[n..n + 2].copy_from_slice(&ft.src_port.to_be_bytes()); // LINT: bounded(n tracks encoded_len() <= MAX_KEY_BYTES = buf.len())
            n += 2;
        }
        if self.dst_port {
            buf[n..n + 2].copy_from_slice(&ft.dst_port.to_be_bytes()); // LINT: bounded(n tracks encoded_len() <= MAX_KEY_BYTES = buf.len())
            n += 2;
        }
        if self.proto {
            buf[n] = ft.proto; // LINT: bounded(n tracks encoded_len() <= MAX_KEY_BYTES = buf.len())
            n += 1;
        }
        KeyBytes::new(&buf[..n]) // LINT: bounded(n = encoded_len() <= MAX_KEY_BYTES = buf.len())
    }

    /// Decode a key encoded under this spec back into a [`FiveTuple`]
    /// with absent fields zeroed.
    ///
    /// # Panics
    /// Panics if `key` does not have this spec's [`encoded_len`].
    ///
    /// [`encoded_len`]: KeySpec::encoded_len
    pub fn decode(&self, key: &KeyBytes) -> FiveTuple {
        assert_eq!(
            key.len(),
            self.encoded_len(),
            "key width {} does not match spec {:?}",
            key.len(),
            self
        );
        let b = key.as_slice();
        let mut n = 0usize;
        let mut ft = FiveTuple::default();
        if self.src_ip_bits > 0 {
            ft.src_ip = u32::from_be_bytes(b[n..n + 4].try_into().unwrap());
            n += 4;
        }
        if self.dst_ip_bits > 0 {
            ft.dst_ip = u32::from_be_bytes(b[n..n + 4].try_into().unwrap());
            n += 4;
        }
        if self.src_port {
            ft.src_port = u16::from_be_bytes(b[n..n + 2].try_into().unwrap());
            n += 2;
        }
        if self.dst_port {
            ft.dst_port = u16::from_be_bytes(b[n..n + 2].try_into().unwrap());
            n += 2;
        }
        if self.proto {
            ft.proto = b[n];
        }
        ft
    }

    /// Project a key recorded under `full` down to this (partial) spec.
    ///
    /// This is `g(·)` applied at query time to the full keys a sketch has
    /// recorded. The caller must ensure `self.is_partial_of(full)`.
    ///
    /// One-shot convenience over [`KeySpec::projector`]: compiles the
    /// projection plan and applies it once. Query loops that project
    /// many keys under the same `(full, partial)` pair should compile
    /// the [`Projector`] once and reuse it instead.
    #[inline]
    pub fn project_key(&self, full: &KeySpec, key: &KeyBytes) -> KeyBytes {
        debug_assert!(
            self.is_partial_of(full),
            "{self:?} is not partial of {full:?}"
        );
        assert_eq!(
            key.len(),
            full.encoded_len(),
            "key width {} does not match spec {:?}",
            key.len(),
            full
        );
        self.projector(full).project(key)
    }

    /// Compile the projection `g(·)` from `full`-encoded keys down to
    /// this (partial) spec: a byte gather-and-mask plan built once per
    /// `(full, partial)` pair and applied per key with no [`FiveTuple`]
    /// decode, no allocation, and no branching over the spec structure.
    ///
    /// # Panics
    /// Panics unless `self.is_partial_of(full)`.
    pub fn projector(&self, full: &KeySpec) -> Projector {
        assert!(
            self.is_partial_of(full),
            "{self:?} is not a partial key of {full:?}"
        );
        let mut src = [0u8; MAX_KEY_BYTES];
        let mut mask = [0u8; MAX_KEY_BYTES];
        // Field offsets within the full-key encoding (fields are laid
        // out in declaration order; IPs occupy 4 bytes whenever any
        // prefix of them is present).
        let src_ip_at = 0usize;
        let dst_ip_at = src_ip_at + if full.src_ip_bits > 0 { 4 } else { 0 };
        let src_port_at = dst_ip_at + if full.dst_ip_bits > 0 { 4 } else { 0 };
        let dst_port_at = src_port_at + if full.src_port { 2 } else { 0 };
        let proto_at = dst_port_at + if full.dst_port { 2 } else { 0 };

        let mut n = 0usize;
        let mut field = |at: usize, width: usize, field_mask: &[u8]| {
            for i in 0..width {
                src[n + i] = (at + i) as u8; // LINT: bounded(n + width tracks encoded_len() <= MAX_KEY_BYTES)
                mask[n + i] = field_mask[i]; // LINT: bounded(same n + width bound; i < width = field_mask.len())
            }
            n += width;
        };
        if self.src_ip_bits > 0 {
            field(src_ip_at, 4, &prefix_mask(self.src_ip_bits).to_be_bytes());
        }
        if self.dst_ip_bits > 0 {
            field(dst_ip_at, 4, &prefix_mask(self.dst_ip_bits).to_be_bytes());
        }
        if self.src_port {
            field(src_port_at, 2, &[0xFF; 2]);
        }
        if self.dst_port {
            field(dst_port_at, 2, &[0xFF; 2]);
        }
        if self.proto {
            field(proto_at, 1, &[0xFF; 1]);
        }
        debug_assert_eq!(n, self.encoded_len());
        Projector {
            full_len: full.encoded_len() as u8,
            out_len: n as u8,
            src,
            mask,
        }
    }

    /// Upper bound, in bits, on the number of distinct keys this spec
    /// can produce: the sum of the participating field widths. A /8
    /// source-prefix key has at most 2^8 values no matter how many
    /// flows were recorded — query result maps are sized accordingly.
    pub fn cardinality_bits(&self) -> u32 {
        u32::from(self.src_ip_bits)
            + u32::from(self.dst_ip_bits)
            + if self.src_port { 16 } else { 0 }
            + if self.dst_port { 16 } else { 0 }
            + if self.proto { 8 } else { 0 }
    }

    /// The partial-key relation `self ≺ other` (non-strict: every key is a
    /// partial key of itself).
    ///
    /// Holds iff every field of `self` is derivable from `other`: present
    /// fields are present there, and prefixes are no longer than the full
    /// key's.
    pub fn is_partial_of(&self, other: &KeySpec) -> bool {
        self.src_ip_bits <= other.src_ip_bits
            && self.dst_ip_bits <= other.dst_ip_bits
            && (!self.src_port || other.src_port)
            && (!self.dst_port || other.dst_port)
            && (!self.proto || other.proto)
    }
}

/// A compiled projection plan from one key encoding to another — the
/// query-plane hot path of `g(·)`.
///
/// [`KeySpec::projector`] lowers a `(full, partial)` spec pair into a
/// per-output-byte gather-and-mask table: output byte `i` is full-key
/// byte `src[i]` ANDed with `mask[i]`. Applying the plan is a fixed
/// [`MAX_KEY_BYTES`]-iteration loop — branch-free over the spec
/// structure, allocation-free, and trivially unrollable — so a query
/// scan pays per row only the bytes it copies, not a [`FiveTuple`]
/// decode/re-encode round trip.
///
/// Bytes at or past the output length have `mask[i] == 0`, which both
/// keeps the gather in bounds (index 0 is always valid) and
/// re-establishes [`KeyBytes`]'s zero-tail invariant when a scratch key
/// is reused across projections of different widths.
#[derive(Clone, Copy, Debug)]
pub struct Projector {
    full_len: u8,
    out_len: u8,
    src: [u8; MAX_KEY_BYTES],
    mask: [u8; MAX_KEY_BYTES],
}

impl Projector {
    /// Width of the keys this plan consumes.
    #[inline]
    pub fn full_len(&self) -> usize {
        usize::from(self.full_len)
    }

    /// Width of the keys this plan produces.
    #[inline]
    pub fn out_len(&self) -> usize {
        usize::from(self.out_len)
    }

    /// Project `key` into the caller-owned `out`, overwriting it.
    ///
    /// `out` may be any scratch [`KeyBytes`] (typically reused across a
    /// whole scan); its previous length and contents are irrelevant.
    #[inline]
    pub fn project_into(&self, key: &KeyBytes, out: &mut KeyBytes) {
        debug_assert_eq!(
            key.len(),
            self.full_len(),
            "key width does not match the projector's full-key spec"
        );
        let src_buf = key.raw();
        let out_buf = out.raw_mut();
        for i in 0..MAX_KEY_BYTES {
            out_buf[i] = src_buf[usize::from(self.src[i])] & self.mask[i]; // LINT: bounded(i < MAX_KEY_BYTES, every array here is [u8; MAX_KEY_BYTES], and src entries are < full_len)
        }
        out.set_len(self.out_len);
    }

    /// Project `key` into a fresh [`KeyBytes`].
    #[inline]
    // LINT: hot
    pub fn project(&self, key: &KeyBytes) -> KeyBytes {
        let mut out = KeyBytes::EMPTY;
        self.project_into(key, &mut out);
        out
    }

    /// True when this projection is monotone under lexicographic byte
    /// order: `a <= b` implies `project(a) <= project(b)`, so projecting
    /// a sorted key sequence yields a sorted sequence and equal outputs
    /// sit adjacent.
    ///
    /// That holds exactly when the plan keeps a leading run of the
    /// input's bits in place: every byte it emits is gathered from the
    /// same position it came from (`src[i] == i`), and the concatenated
    /// mask is one contiguous high-bit prefix (`0xFF… 0xF0 0x00…`-style)
    /// — then projection is the floor function onto that bit prefix,
    /// which is order-preserving. Prefix hierarchies over a common field
    /// order (e.g. SrcIP/32 → SrcIP/24) qualify; field-reordering
    /// projections (e.g. (SrcIP, DstIP) → DstIP) do not.
    pub fn preserves_order(&self) -> bool {
        let mut seen_partial = false;
        for i in 0..MAX_KEY_BYTES {
            let m = self.mask[i]; // LINT: bounded(i < MAX_KEY_BYTES = mask.len())
                                  // LINT: bounded(i < MAX_KEY_BYTES = src.len())
            if m != 0 && (seen_partial || usize::from(self.src[i]) != i) {
                return false;
            }
            if m.leading_ones() + m.trailing_zeros() != 8 {
                return false; // not a high-bit prefix within the byte
            }
            if m != 0xFF {
                seen_partial = true;
            }
        }
        true
    }
}

impl fmt::Display for KeySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        match self.src_ip_bits {
            0 => {}
            32 => parts.push("SrcIP".into()),
            b => parts.push(format!("SrcIP/{b}")),
        }
        match self.dst_ip_bits {
            0 => {}
            32 => parts.push("DstIP".into()),
            b => parts.push(format!("DstIP/{b}")),
        }
        if self.src_port {
            parts.push("SrcPort".into());
        }
        if self.dst_port {
            parts.push("DstPort".into());
        }
        if self.proto {
            parts.push("Proto".into());
        }
        if parts.is_empty() {
            write!(f, "(empty)")
        } else {
            write!(f, "({})", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple::new(0xC0A80A01, 0x08080404, 32000, 443, 6)
    }

    #[test]
    fn five_tuple_projection_matches_encode() {
        assert_eq!(KeySpec::FIVE_TUPLE.project(&ft()), ft().encode());
    }

    #[test]
    fn encoded_lengths() {
        assert_eq!(KeySpec::FIVE_TUPLE.encoded_len(), 13);
        assert_eq!(KeySpec::SRC_DST.encoded_len(), 8);
        assert_eq!(KeySpec::SRC_IP_PORT.encoded_len(), 6);
        assert_eq!(KeySpec::DST_IP_PORT.encoded_len(), 6);
        assert_eq!(KeySpec::SRC_IP.encoded_len(), 4);
        assert_eq!(KeySpec::EMPTY.encoded_len(), 0);
        assert_eq!(KeySpec::src_prefix(24).encoded_len(), 4);
    }

    #[test]
    fn prefix_projection_masks_low_bits() {
        let k = KeySpec::src_prefix(24).project(&ft());
        assert_eq!(k.as_slice(), &[0xC0, 0xA8, 0x0A, 0x00]);
        let k8 = KeySpec::src_prefix(8).project(&ft());
        assert_eq!(k8.as_slice(), &[0xC0, 0, 0, 0]);
    }

    #[test]
    fn partial_relation() {
        for spec in KeySpec::PAPER_SIX {
            assert!(spec.is_partial_of(&KeySpec::FIVE_TUPLE), "{spec}");
            assert!(KeySpec::EMPTY.is_partial_of(&spec));
        }
        assert!(!KeySpec::FIVE_TUPLE.is_partial_of(&KeySpec::SRC_DST));
        assert!(KeySpec::src_prefix(8).is_partial_of(&KeySpec::src_prefix(24)));
        assert!(!KeySpec::src_prefix(24).is_partial_of(&KeySpec::src_prefix(8)));
        assert!(!KeySpec::SRC_IP_PORT.is_partial_of(&KeySpec::SRC_DST));
    }

    #[test]
    fn decode_roundtrip_zeroes_absent_fields() {
        let spec = KeySpec::SRC_IP_PORT;
        let k = spec.project(&ft());
        let back = spec.decode(&k);
        assert_eq!(back.src_ip, ft().src_ip);
        assert_eq!(back.src_port, ft().src_port);
        assert_eq!(back.dst_ip, 0);
        assert_eq!(back.dst_port, 0);
        assert_eq!(back.proto, 0);
    }

    #[test]
    fn project_key_composes_with_project() {
        // g_{P←F}(g_F(pkt)) == g_P(pkt) for all paper keys.
        let full = KeySpec::FIVE_TUPLE;
        let fk = full.project(&ft());
        for part in KeySpec::PAPER_SIX {
            assert_eq!(part.project_key(&full, &fk), part.project(&ft()), "{part}");
        }
        // And through an intermediate key: SrcIP/8 ≺ SrcIP ≺ 5-tuple.
        let mid = KeySpec::SRC_IP;
        let p8 = KeySpec::src_prefix(8);
        let via_mid = p8.project_key(&mid, &mid.project_key(&full, &fk));
        assert_eq!(via_mid, p8.project(&ft()));
    }

    #[test]
    fn empty_spec_maps_everything_to_one_flow() {
        let a = KeySpec::EMPTY.project(&ft());
        let b = KeySpec::EMPTY.project(&FiveTuple::new(1, 2, 3, 4, 5));
        assert_eq!(a, b);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match spec")]
    fn decode_rejects_wrong_width() {
        let k = KeySpec::SRC_IP.project(&ft());
        let _ = KeySpec::SRC_DST.decode(&k);
    }

    #[test]
    fn projector_matches_project_key_for_all_pairs() {
        // The compiled plan and the decode/re-encode reference agree on
        // every (full, partial) pair drawn from the paper keys and a
        // sweep of prefix specs.
        let mut specs: Vec<KeySpec> = KeySpec::PAPER_SIX.to_vec();
        specs.push(KeySpec::EMPTY);
        specs.extend((1..=32).map(KeySpec::src_prefix));
        specs.extend([
            KeySpec::src_dst_prefix(12, 20),
            KeySpec::src_dst_prefix(8, 8),
        ]);
        let flows = [
            ft(),
            FiveTuple::new(0xFFFFFFFF, 0xFFFFFFFF, 65535, 65535, 255),
            FiveTuple::new(0, 0, 0, 0, 0),
            FiveTuple::new(0xDEADBEEF, 0x01020304, 7, 65000, 17),
        ];
        for full in &specs {
            for part in &specs {
                if !part.is_partial_of(full) {
                    continue;
                }
                let proj = part.projector(full);
                assert_eq!(proj.full_len(), full.encoded_len());
                assert_eq!(proj.out_len(), part.encoded_len());
                for flow in &flows {
                    let fk = full.project(flow);
                    let via_decode = part.project(&full.decode(&fk));
                    assert_eq!(proj.project(&fk), via_decode, "{part} ≺ {full}");
                }
            }
        }
    }

    #[test]
    fn projector_scratch_reuse_restores_zero_tail() {
        // A wide projection followed by a narrower one into the same
        // scratch key must not leave stale bytes that break equality.
        let full = KeySpec::FIVE_TUPLE;
        let fk = full.project(&ft());
        let mut scratch = KeyBytes::EMPTY;
        KeySpec::SRC_DST
            .projector(&full)
            .project_into(&fk, &mut scratch);
        assert_eq!(scratch, KeySpec::SRC_DST.project(&ft()));
        KeySpec::src_prefix(8)
            .projector(&full)
            .project_into(&fk, &mut scratch);
        assert_eq!(scratch, KeySpec::src_prefix(8).project(&ft()));
        KeySpec::EMPTY
            .projector(&full)
            .project_into(&fk, &mut scratch);
        assert_eq!(scratch, KeyBytes::EMPTY);
    }

    #[test]
    #[should_panic(expected = "not a partial key")]
    fn projector_rejects_non_partial() {
        let _ = KeySpec::SRC_DST.projector(&KeySpec::SRC_IP_PORT);
    }

    #[test]
    fn preserves_order_classifies_and_holds() {
        let full = KeySpec::FIVE_TUPLE;
        // Leading-prefix plans: prefix hierarchies and identity.
        for (part, of) in [
            (KeySpec::src_prefix(24), KeySpec::SRC_IP),
            (KeySpec::src_prefix(9), full),
            (KeySpec::SRC_IP, KeySpec::SRC_DST),
            (full, full),
            (KeySpec::EMPTY, full),
        ] {
            assert!(part.projector(&of).preserves_order(), "{part} ≺ {of}");
        }
        // Field-reordering plans are not monotone.
        for (part, of) in [
            (KeySpec::DST_IP, full),
            (KeySpec::DST_IP, KeySpec::SRC_DST),
            (KeySpec::DST_IP_PORT, full),
        ] {
            assert!(!part.projector(&of).preserves_order(), "{part} ≺ {of}");
        }
        // The claimed invariant, exhaustively on a sorted key sample:
        // projection of a sorted sequence stays sorted.
        let proj = KeySpec::src_prefix(11).projector(&KeySpec::SRC_IP);
        let mut keys: Vec<KeyBytes> = (0..4096u32)
            .map(|i| {
                KeySpec::SRC_IP.project(&FiveTuple::new(i.wrapping_mul(0x9E3779B9), 0, 0, 0, 0))
            })
            .collect();
        keys.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
        let projected: Vec<KeyBytes> = keys.iter().map(|k| proj.project(k)).collect();
        assert!(projected
            .windows(2)
            .all(|w| w[0].as_slice() <= w[1].as_slice()));
    }

    #[test]
    fn cardinality_bits_counts_fields() {
        assert_eq!(KeySpec::EMPTY.cardinality_bits(), 0);
        assert_eq!(KeySpec::src_prefix(8).cardinality_bits(), 8);
        assert_eq!(KeySpec::SRC_DST.cardinality_bits(), 64);
        assert_eq!(KeySpec::FIVE_TUPLE.cardinality_bits(), 104);
        assert_eq!(KeySpec::SRC_IP_PORT.cardinality_bits(), 48);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            KeySpec::FIVE_TUPLE.to_string(),
            "(SrcIP,DstIP,SrcPort,DstPort,Proto)"
        );
        assert_eq!(KeySpec::src_prefix(24).to_string(), "(SrcIP/24)");
        assert_eq!(KeySpec::EMPTY.to_string(), "(empty)");
    }
}

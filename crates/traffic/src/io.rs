//! Binary trace serialization.
//!
//! A minimal fixed-record format so generated workloads can be archived
//! and replayed bit-identically (e.g. to compare two sketch builds on
//! exactly the same packets):
//!
//! ```text
//! magic   4 bytes  b"CCT1"
//! count   u64 LE
//! record  17 bytes x count:
//!   src_ip u32 BE | dst_ip u32 BE | src_port u16 BE | dst_port u16 BE |
//!   proto u8 | weight u32 LE
//! ```

use crate::key::FiveTuple;
use crate::packet::{Packet, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CCT1";
const RECORD: usize = 17;

/// Encode a trace into a byte buffer.
pub fn encode(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + trace.len() * RECORD);
    buf.put_slice(MAGIC);
    buf.put_u64_le(trace.len() as u64);
    for p in &trace.packets {
        buf.put_u32(p.flow.src_ip);
        buf.put_u32(p.flow.dst_ip);
        buf.put_u16(p.flow.src_port);
        buf.put_u16(p.flow.dst_port);
        buf.put_u8(p.flow.proto);
        buf.put_u32_le(p.weight);
    }
    buf.freeze()
}

/// Decode a trace from bytes.
pub fn decode(mut data: &[u8]) -> io::Result<Trace> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.len() < 12 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let count = data.get_u64_le() as usize;
    if data.remaining() != count * RECORD {
        return Err(err("record section length mismatch"));
    }
    let mut packets = Vec::with_capacity(count);
    for _ in 0..count {
        let src_ip = data.get_u32();
        let dst_ip = data.get_u32();
        let src_port = data.get_u16();
        let dst_port = data.get_u16();
        let proto = data.get_u8();
        let weight = data.get_u32_le();
        packets.push(Packet {
            flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto),
            weight,
        });
    }
    Ok(Trace { packets })
}

/// Write a trace to a file.
pub fn save(trace: &Trace, path: &Path) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(&encode(trace))
}

/// Read a trace from a file.
pub fn load(path: &Path) -> io::Result<Trace> {
    let mut f = File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TraceConfig};

    #[test]
    fn roundtrip_bytes() {
        let t = generate(&TraceConfig {
            packets: 5_000,
            flows: 500,
            ..TraceConfig::default()
        });
        let bytes = encode(&t);
        let back = decode(&bytes).unwrap();
        assert_eq!(t.packets, back.packets);
    }

    #[test]
    fn roundtrip_file() {
        let t = generate(&TraceConfig {
            packets: 1_000,
            flows: 100,
            ..TraceConfig::default()
        });
        let dir = std::env::temp_dir().join("cocosketch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.cct");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(t.packets, back.packets);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        assert_eq!(decode(&encode(&t)).unwrap().packets, t.packets);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&Trace::new()).to_vec();
        bytes[0] = b'X';
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let t = generate(&TraceConfig {
            packets: 100,
            flows: 10,
            ..TraceConfig::default()
        });
        let bytes = encode(&t);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&bytes[..8]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&Trace::new()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn preserves_weights() {
        let t = Trace {
            packets: vec![Packet {
                flow: FiveTuple::new(1, 2, 3, 4, 5),
                weight: 1500,
            }],
        };
        assert_eq!(decode(&encode(&t)).unwrap().packets[0].weight, 1500);
    }
}

//! Binary trace serialization.
//!
//! A minimal fixed-record format so generated workloads can be archived
//! and replayed bit-identically (e.g. to compare two sketch builds on
//! exactly the same packets):
//!
//! ```text
//! magic   4 bytes  b"CCT1"
//! count   u64 LE
//! record  17 bytes x count:
//!   src_ip u32 BE | dst_ip u32 BE | src_port u16 BE | dst_port u16 BE |
//!   proto u8 | weight u32 LE
//! ```

use crate::key::FiveTuple;
use crate::packet::{Packet, Trace};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CCT1";
const RECORD: usize = 17;

/// Encode a trace into a byte buffer.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + trace.len() * RECORD);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for p in &trace.packets {
        buf.extend_from_slice(&p.flow.src_ip.to_be_bytes());
        buf.extend_from_slice(&p.flow.dst_ip.to_be_bytes());
        buf.extend_from_slice(&p.flow.src_port.to_be_bytes());
        buf.extend_from_slice(&p.flow.dst_port.to_be_bytes());
        buf.push(p.flow.proto);
        buf.extend_from_slice(&p.weight.to_le_bytes());
    }
    buf
}

/// Decode a trace from bytes.
pub fn decode(data: &[u8]) -> io::Result<Trace> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.len() < 12 {
        return Err(err("truncated header"));
    }
    if &data[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    let count = u64::from_le_bytes(data[4..12].try_into().unwrap()) as usize;
    let records = &data[12..];
    if records.len()
        != count
            .checked_mul(RECORD)
            .ok_or_else(|| err("count overflow"))?
    {
        return Err(err("record section length mismatch"));
    }
    let mut packets = Vec::with_capacity(count);
    for rec in records.chunks_exact(RECORD) {
        let src_ip = u32::from_be_bytes(rec[0..4].try_into().unwrap());
        let dst_ip = u32::from_be_bytes(rec[4..8].try_into().unwrap());
        let src_port = u16::from_be_bytes(rec[8..10].try_into().unwrap());
        let dst_port = u16::from_be_bytes(rec[10..12].try_into().unwrap());
        let proto = rec[12];
        let weight = u32::from_le_bytes(rec[13..17].try_into().unwrap());
        packets.push(Packet {
            flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto),
            weight,
        });
    }
    Ok(Trace { packets })
}

/// Write a trace to a file.
pub fn save(trace: &Trace, path: &Path) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(&encode(trace))
}

/// Read a trace from a file.
pub fn load(path: &Path) -> io::Result<Trace> {
    let mut f = File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TraceConfig};

    #[test]
    fn roundtrip_bytes() {
        let t = generate(&TraceConfig {
            packets: 5_000,
            flows: 500,
            ..TraceConfig::default()
        });
        let bytes = encode(&t);
        let back = decode(&bytes).unwrap();
        assert_eq!(t.packets, back.packets);
    }

    #[test]
    fn roundtrip_file() {
        let t = generate(&TraceConfig {
            packets: 1_000,
            flows: 100,
            ..TraceConfig::default()
        });
        let dir = std::env::temp_dir().join("cocosketch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.cct");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(t.packets, back.packets);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        assert_eq!(decode(&encode(&t)).unwrap().packets, t.packets);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&Trace::new()).to_vec();
        bytes[0] = b'X';
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let t = generate(&TraceConfig {
            packets: 100,
            flows: 10,
            ..TraceConfig::default()
        });
        let bytes = encode(&t);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&bytes[..8]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&Trace::new()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn preserves_weights() {
        let t = Trace {
            packets: vec![Packet {
                flow: FiveTuple::new(1, 2, 3, 4, 5),
                weight: 1500,
            }],
        };
        assert_eq!(decode(&encode(&t)).unwrap().packets[0].weight, 1500);
    }
}

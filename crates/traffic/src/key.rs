//! Packet identifiers and their byte encodings.

use std::fmt;
use std::net::Ipv4Addr;

/// Maximum encoded key length in bytes.
///
/// The widest key we support is the full 5-tuple: 4 (SrcIP) + 4 (DstIP) +
/// 2 (SrcPort) + 2 (DstPort) + 1 (proto) = 13 bytes; 16 leaves headroom
/// for experimental keys while keeping [`KeyBytes`] two machine words of
/// payload.
pub const MAX_KEY_BYTES: usize = 16;

/// A compact, fixed-capacity encoded flow key.
///
/// Sketches store these directly in their bucket arrays: the type is
/// `Copy`, compares by value, and exposes its bytes for hashing. The
/// length is part of the value, so keys produced by different
/// [`KeySpec`](crate::KeySpec)s of different widths never compare equal by
/// accident.
/// The layout is pinned to `#[repr(C)]` (17 bytes: length prefix then
/// payload) because sketch buckets embed the key directly and assert
/// their own size/alignment at compile time — see `Bucket` in
/// `cocosketch::basic`, which packs two `(KeyBytes, u64)` buckets per
/// 64-byte cache line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct KeyBytes {
    len: u8,
    buf: [u8; MAX_KEY_BYTES],
}

impl KeyBytes {
    /// An empty key (length 0) — the encoding of the "empty key" level in
    /// HHH hierarchies, and the `Default` bucket state in sketches.
    pub const EMPTY: KeyBytes = KeyBytes {
        len: 0,
        buf: [0; MAX_KEY_BYTES],
    };

    /// Build from a byte slice.
    ///
    /// # Panics
    /// Panics if `bytes.len() > MAX_KEY_BYTES`; key widths are decided by
    /// `KeySpec`s, which are all within bounds, so a violation is a
    /// programming error.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= MAX_KEY_BYTES,
            "key of {} bytes exceeds MAX_KEY_BYTES",
            bytes.len()
        );
        let mut buf = [0u8; MAX_KEY_BYTES];
        buf[..bytes.len()].copy_from_slice(bytes); // LINT: bounded(bytes.len() <= MAX_KEY_BYTES asserted above)
        Self {
            len: bytes.len() as u8,
            buf,
        }
    }

    /// The encoded bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize] // LINT: bounded(len <= MAX_KEY_BYTES is the type invariant)
    }

    /// The full backing array. Bytes past [`len`](Self::len) are always
    /// zero (an invariant every constructor and in-place writer keeps,
    /// and which `PartialEq`/`Hash` — derived over the whole array —
    /// rely on). Used by the compiled projector, whose byte-gather plan
    /// reads fixed positions regardless of the key's length.
    #[inline]
    pub(crate) fn raw(&self) -> &[u8; MAX_KEY_BYTES] {
        &self.buf
    }

    /// Mutable access to the backing array for in-place encoders
    /// (`Projector::project_into`). Callers must re-establish the
    /// zero-tail invariant before the key is next compared or hashed.
    #[inline]
    pub(crate) fn raw_mut(&mut self) -> &mut [u8; MAX_KEY_BYTES] {
        &mut self.buf
    }

    /// Set the encoded length without touching the bytes.
    #[inline]
    pub(crate) fn set_len(&mut self, len: u8) {
        debug_assert!(usize::from(len) <= MAX_KEY_BYTES);
        self.len = len;
    }

    /// Encoded length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the zero-length key.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for KeyBytes {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl fmt::Debug for KeyBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyBytes(")?;
        for b in self.as_slice() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// A packet's full flow identity: the classic 5-tuple.
///
/// IPs and ports are stored in host order; encodings are big-endian so
/// that IP prefixes are leading bits of the encoded bytes (which is what
/// makes prefix keys simple masks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, ...).
    pub proto: u8,
}

impl FiveTuple {
    /// Construct from parts.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// Encode the complete 13-byte 5-tuple key.
    #[inline]
    pub fn encode(&self) -> KeyBytes {
        let mut buf = [0u8; MAX_KEY_BYTES];
        buf[0..4].copy_from_slice(&self.src_ip.to_be_bytes()); // LINT: bounded(constant range, MAX_KEY_BYTES = 16)
        buf[4..8].copy_from_slice(&self.dst_ip.to_be_bytes()); // LINT: bounded(constant range, MAX_KEY_BYTES = 16)
        buf[8..10].copy_from_slice(&self.src_port.to_be_bytes()); // LINT: bounded(constant range, MAX_KEY_BYTES = 16)
        buf[10..12].copy_from_slice(&self.dst_port.to_be_bytes()); // LINT: bounded(constant range, MAX_KEY_BYTES = 16)
        buf[12] = self.proto;
        KeyBytes { len: 13, buf }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            Ipv4Addr::from(self.src_ip),
            self.src_port,
            Ipv4Addr::from(self.dst_ip),
            self.dst_port,
            self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_roundtrip_layout() {
        let ft = FiveTuple::new(0x0A000001, 0xC0A80001, 443, 51234, 6);
        let k = ft.encode();
        assert_eq!(k.len(), 13);
        assert_eq!(&k.as_slice()[0..4], &[0x0A, 0, 0, 1]);
        assert_eq!(&k.as_slice()[4..8], &[0xC0, 0xA8, 0, 1]);
        assert_eq!(&k.as_slice()[8..10], &443u16.to_be_bytes());
        assert_eq!(&k.as_slice()[10..12], &51234u16.to_be_bytes());
        assert_eq!(k.as_slice()[12], 6);
    }

    #[test]
    fn keybytes_equality_includes_length() {
        let a = KeyBytes::new(&[1, 2]);
        let b = KeyBytes::new(&[1, 2, 0]);
        assert_ne!(a, b, "same bytes, different length must differ");
    }

    #[test]
    fn empty_key() {
        assert!(KeyBytes::EMPTY.is_empty());
        assert_eq!(KeyBytes::default(), KeyBytes::EMPTY);
        assert_eq!(KeyBytes::EMPTY.as_slice(), &[] as &[u8]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_KEY_BYTES")]
    fn oversized_key_panics() {
        let _ = KeyBytes::new(&[0u8; MAX_KEY_BYTES + 1]);
    }

    #[test]
    fn display_is_human_readable() {
        let ft = FiveTuple::new(0x0A000001, 0x08080808, 1234, 53, 17);
        assert_eq!(ft.to_string(), "10.0.0.1:1234 -> 8.8.8.8:53 proto 17");
    }

    #[test]
    fn distinct_tuples_encode_distinct() {
        let a = FiveTuple::new(1, 2, 3, 4, 5).encode();
        let b = FiveTuple::new(1, 2, 3, 4, 6).encode();
        let c = FiveTuple::new(1, 2, 4, 3, 5).encode();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}

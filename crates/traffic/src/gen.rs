//! Seeded synthetic trace generation.
//!
//! The paper evaluates on CAIDA and MAWI captures. Those traces are not
//! redistributable, so this module generates their statistical stand-ins
//! (see DESIGN.md): flow sizes follow a Zipf law (heavy-tailed, as §3.2 of
//! the paper assumes), and IP addresses are drawn octet-by-octet from
//! nested skewed distributions so that prefix aggregates also have
//! heavy-hitter structure — the property that the HHH experiments
//! (Figures 11 and 12) exercise.
//!
//! All generation is driven by a single seed; the same config + seed
//! yields a bit-identical [`Trace`].

use crate::key::FiveTuple;
use crate::packet::{Packet, Trace};
use hashkit::SplitMix64;
use std::collections::HashSet;

/// Configuration for the synthetic trace generator.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Target number of packets (the output length is within one flow of
    /// this because flow sizes are rounded).
    pub packets: usize,
    /// Number of distinct 5-tuple flows.
    pub flows: usize,
    /// Zipf exponent of the flow-size distribution (≈1.0–1.3 for
    /// Internet traces; higher = more skewed).
    pub alpha: f64,
    /// Skew of the per-octet IP distributions; higher concentrates
    /// traffic in fewer prefixes (drives HHH structure).
    pub ip_skew: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            packets: 100_000,
            flows: 10_000,
            alpha: 1.1,
            ip_skew: 1.0,
            seed: 0xC0C0,
        }
    }
}

/// A discrete Zipf-like sampler over `0..n` with exponent `alpha`,
/// composed with a seeded permutation so the heavy ranks land on
/// arbitrary values rather than always the smallest ones.
struct SkewedSampler {
    cdf: Vec<f64>,
    perm: Vec<u32>,
}

impl SkewedSampler {
    fn new(n: usize, alpha: f64, rng: &mut SplitMix64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut perm);
        Self { cdf, perm }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u32 {
        let u: f64 = rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.perm[idx.min(self.perm.len() - 1)]
    }
}

/// Generator of structured random 5-tuples.
///
/// Octets are sampled independently from skewed distributions, which
/// makes *prefix* aggregates heavy-tailed too: a hot first octet is
/// shared by many flows, a hot /16 by fewer, and so on.
struct FlowSampler {
    src_octets: [SkewedSampler; 4],
    dst_octets: [SkewedSampler; 4],
    src_port: SkewedSampler,
    common_dst_ports: Vec<u16>,
}

impl FlowSampler {
    fn new(ip_skew: f64, rng: &mut SplitMix64) -> Self {
        // Deeper octets get less skew: /8s are few and hot, /32s diverse.
        let mk = |scale: f64, rng: &mut SplitMix64| SkewedSampler::new(256, ip_skew * scale, rng);
        Self {
            src_octets: [mk(1.2, rng), mk(1.0, rng), mk(0.8, rng), mk(0.6, rng)],
            dst_octets: [mk(1.2, rng), mk(1.0, rng), mk(0.8, rng), mk(0.6, rng)],
            src_port: SkewedSampler::new(60_000, 0.5, rng),
            common_dst_ports: vec![80, 443, 53, 22, 123, 8080, 25, 993],
        }
    }

    fn sample_ip(octets: &[SkewedSampler; 4], rng: &mut SplitMix64) -> u32 {
        let mut ip = 0u32;
        for sampler in octets {
            ip = (ip << 8) | sampler.sample(rng);
        }
        ip
    }

    fn sample(&self, rng: &mut SplitMix64) -> FiveTuple {
        let src_ip = Self::sample_ip(&self.src_octets, rng);
        let dst_ip = Self::sample_ip(&self.dst_octets, rng);
        let src_port = 1024 + self.src_port.sample(rng) as u16 % 60000;
        let dst_port = if rng.chance(0.7) {
            *rng.choose(&self.common_dst_ports).unwrap()
        } else {
            rng.range(1024, 65535) as u16
        };
        let proto = match rng.below(100) {
            0..=84 => 6,
            85..=97 => 17,
            _ => 1,
        };
        FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto)
    }
}

/// Draw `n` *distinct* structured flows.
fn distinct_flows(n: usize, sampler: &FlowSampler, rng: &mut SplitMix64) -> Vec<FiveTuple> {
    let mut seen = HashSet::with_capacity(n * 2);
    let mut flows = Vec::with_capacity(n);
    // The octet samplers concentrate mass, so collisions happen; bound the
    // retry loop generously and widen ports on pathological configs.
    let mut attempts = 0usize;
    while flows.len() < n {
        let mut ft = sampler.sample(rng);
        attempts += 1;
        if attempts > 50 * n {
            // Extremely skewed config: disambiguate via the source port so
            // generation always terminates.
            ft.src_port = rng.next_u64() as u16;
        }
        if seen.insert(ft) {
            flows.push(ft);
        }
    }
    flows
}

/// Zipf flow sizes by rank, scaled so they sum to ~`packets` (each flow
/// gets at least one packet).
pub fn zipf_sizes(packets: usize, flows: usize, alpha: f64) -> Vec<u64> {
    assert!(flows > 0, "need at least one flow");
    let weights: Vec<f64> = (0..flows)
        .map(|i| 1.0 / ((i + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<u64> = weights
        .iter()
        .map(|w| ((w / total) * packets as f64).round().max(1.0) as u64)
        .collect();
    // Rounding drift is absorbed by the largest flow, keeping the total
    // close to the requested packet count.
    let sum: u64 = sizes.iter().sum();
    let target = packets as u64;
    if sum < target {
        sizes[0] += target - sum;
    } else if sum > target && sizes[0] > (sum - target) {
        sizes[0] -= sum - target;
    }
    sizes
}

/// Generate a trace from `cfg`.
///
/// Packet order is a seeded uniform shuffle, so flows interleave the way
/// sketch algorithms expect of real traffic.
pub fn generate(cfg: &TraceConfig) -> Trace {
    assert!(cfg.flows > 0 && cfg.packets >= cfg.flows, "config: {cfg:?}");
    let mut rng = SplitMix64::new(cfg.seed);
    let sampler = FlowSampler::new(cfg.ip_skew, &mut rng);
    let flows = distinct_flows(cfg.flows, &sampler, &mut rng);
    let sizes = zipf_sizes(cfg.packets, cfg.flows, cfg.alpha);

    let total: u64 = sizes.iter().sum();
    let mut packets = Vec::with_capacity(total as usize);
    for (flow, &size) in flows.iter().zip(&sizes) {
        for _ in 0..size {
            packets.push(Packet::count(*flow));
        }
    }
    rng.shuffle(&mut packets);
    Trace { packets }
}

/// Generate a pair of adjacent measurement windows with guaranteed heavy
/// changes, for the heavy-change experiments (Figure 10).
///
/// Both windows share the flow population of `cfg`. In the second window,
/// each of the top `churn_top` flows either surges (×4) or collapses
/// (÷8) with the given probability, so the ground-truth heavy-change set
/// is non-trivial at the paper's 1e-4 threshold.
pub fn heavy_change_pair(cfg: &TraceConfig, churn_top: usize, churn_prob: f64) -> (Trace, Trace) {
    let mut rng = SplitMix64::new(cfg.seed);
    let sampler = FlowSampler::new(cfg.ip_skew, &mut rng);
    let flows = distinct_flows(cfg.flows, &sampler, &mut rng);
    let sizes1 = zipf_sizes(cfg.packets, cfg.flows, cfg.alpha);

    let mut sizes2 = sizes1.clone();
    for size in sizes2.iter_mut().take(churn_top.min(cfg.flows)) {
        if rng.chance(churn_prob) {
            *size = if rng.chance(0.5) {
                *size * 4
            } else {
                (*size / 8).max(1)
            };
        }
    }

    let build = |sizes: &[u64], rng: &mut SplitMix64| -> Trace {
        let total: u64 = sizes.iter().sum();
        let mut packets = Vec::with_capacity(total as usize);
        for (flow, &size) in flows.iter().zip(sizes) {
            for _ in 0..size {
                packets.push(Packet::count(*flow));
            }
        }
        rng.shuffle(&mut packets);
        Trace { packets }
    };
    let w1 = build(&sizes1, &mut rng);
    let w2 = build(&sizes2, &mut rng);
    (w1, w2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspec::KeySpec;
    use crate::truth;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            packets: 20_000,
            flows: 2_000,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn different_seed_differs() {
        let a = generate(&small_cfg());
        let b = generate(&TraceConfig {
            seed: 999,
            ..small_cfg()
        });
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn respects_flow_and_packet_counts() {
        let t = generate(&small_cfg());
        assert_eq!(t.distinct_flows(), 2_000);
        let n = t.len() as i64;
        assert!((n - 20_000).unsigned_abs() < 100, "packets {n}");
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let sizes = zipf_sizes(100_000, 10_000, 1.1);
        assert_eq!(sizes.len(), 10_000);
        assert!(
            sizes[0] > 100 * sizes[9_999],
            "head {} tail {}",
            sizes[0],
            sizes[9_999]
        );
        assert!(sizes.iter().all(|&s| s >= 1));
        let total: u64 = sizes.iter().sum();
        assert!(
            (total as i64 - 100_000).unsigned_abs() < 10,
            "total {total}"
        );
    }

    #[test]
    fn sizes_monotone_nonincreasing() {
        let sizes = zipf_sizes(50_000, 1_000, 1.2);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn prefixes_aggregate_mass() {
        // The hierarchical IP sampler should concentrate a macroscopic
        // fraction of traffic in the top /8: that is what makes the HHH
        // experiments meaningful.
        let t = generate(&small_cfg());
        let counts = truth::exact_counts(&t, &KeySpec::src_prefix(8));
        let max = counts.values().copied().max().unwrap();
        assert!(
            max as f64 > 0.05 * t.len() as f64,
            "top /8 holds only {max} of {} packets",
            t.len()
        );
        assert!(counts.len() > 1, "more than one /8 should appear");
    }

    #[test]
    fn heavy_change_pair_has_changes() {
        let (w1, w2) = heavy_change_pair(&small_cfg(), 50, 0.6);
        let c1 = truth::exact_counts(&w1, &KeySpec::FIVE_TUPLE);
        let c2 = truth::exact_counts(&w2, &KeySpec::FIVE_TUPLE);
        let threshold = (w1.total_weight().max(w2.total_weight()) as f64 * 1e-3) as u64;
        let changes = truth::heavy_changes(&c1, &c2, threshold);
        assert!(!changes.is_empty(), "churn should produce heavy changes");
    }

    #[test]
    fn heavy_change_windows_share_population() {
        let (w1, w2) = heavy_change_pair(&small_cfg(), 10, 1.0);
        assert_eq!(w1.distinct_flows(), w2.distinct_flows());
    }

    #[test]
    #[should_panic(expected = "config")]
    fn rejects_more_flows_than_packets() {
        generate(&TraceConfig {
            packets: 10,
            flows: 100,
            ..TraceConfig::default()
        });
    }
}

//! Flow keys, partial-key projection, and synthetic traffic generation.
//!
//! This crate is the workload substrate for the CocoSketch reproduction:
//!
//! - [`FiveTuple`] / [`KeyBytes`]: packet identifiers and their compact
//!   byte encodings (the sketches store [`KeyBytes`] values — fixed-size,
//!   `Copy`, no allocation on the hot path);
//! - [`KeySpec`]: a *key* in the paper's sense — a subset of 5-tuple
//!   fields with optional per-IP prefix lengths. [`KeySpec::project`]
//!   implements the mapping `g(·)` from Definition 1 of the paper, and
//!   [`KeySpec::is_partial_of`] the partial-key relation `k_P ≺ k_F`.
//!   [`KeySpec::projector`] compiles `g(·)` for a `(full, partial)`
//!   pair into a [`Projector`] — a branch-free byte gather-and-mask
//!   plan that query scans apply per row with no decode and no
//!   allocation;
//! - [`Trace`] and the [`gen`] / [`presets`] modules: seeded synthetic
//!   traces with Zipf flow-size skew and hierarchical IP structure,
//!   standing in for the CAIDA/MAWI captures the paper uses (see
//!   DESIGN.md for the substitution argument);
//! - [`truth`]: exact ground-truth counting for any key, heavy-hitter /
//!   heavy-change sets, used by the accuracy metrics;
//! - [`io`]: a small binary trace format so generated workloads can be
//!   saved and replayed bit-identically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod io;
pub mod key;
pub mod keyspec;
pub mod packet;
pub mod pcap;
pub mod presets;
pub mod truth;

pub use key::{FiveTuple, KeyBytes, MAX_KEY_BYTES};
pub use keyspec::{KeySpec, Projector};
pub use packet::{Packet, Trace};

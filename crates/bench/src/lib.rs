//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin` (`table2`, `fig8` ... `fig18b`, plus `ablation` and
//! `run_all`). Each binary:
//!
//! 1. parses the common CLI ([`Cli`]): `--scale N` (trace size divisor
//!    vs. the paper's, default 20), `--seed S`, `--out DIR`;
//! 2. generates its workload from the [`traffic::presets`];
//! 3. runs the sweep and prints a markdown table to stdout;
//! 4. writes the same rows as CSV into `--out` (default `results/`).
//!
//! Absolute throughput numbers depend on the host; accuracy numbers are
//! deterministic given `--seed`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Common command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Divisor applied to the paper's trace sizes (1 = full 27M-packet
    /// CAIDA-like run; default 20 keeps every binary in laptop range).
    pub scale: usize,
    /// Master seed for workload and sketches.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            scale: 20,
            seed: 0xC0C0,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Cli {
    /// Parse from the process arguments; unknown flags abort with usage.
    pub fn parse() -> Self {
        let mut cli = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    cli.scale = need_value(i).parse().expect("--scale takes an integer");
                    i += 2;
                }
                "--seed" => {
                    cli.seed = need_value(i).parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--out" => {
                    cli.out_dir = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--scale N] [--seed S] [--out DIR]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        assert!(cli.scale > 0, "--scale must be positive");
        cli
    }
}

/// A result table: header plus stringified rows.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Experiment id ("fig8a", "table2", ...), used as the CSV name.
    pub id: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Start a table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Render as a GitHub-style markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {} — {}\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout and persist the CSV under `dir`.
    pub fn emit(&self, dir: &Path) -> std::io::Result<()> {
        print!("{}", self.to_markdown());
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Format a float with 4 significant decimals (figure-friendly).
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = ResultTable::new("figX", "demo", &["algo", "f1"]);
        t.push(vec!["Ours".into(), "0.99".into()]);
        t.push(vec!["UnivMon".into(), "0.5".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| algo    | f1   |"));
        assert!(md.contains("| Ours    | 0.99 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = ResultTable::new("x", "t", &["a"]);
        t.push(vec!["v,w".into()]);
        assert!(t.to_csv().contains("\"v,w\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ResultTable::new("x", "t", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(123.456), "123.5");
    }
}

//! Figure 15d: Tofino (P4) resource usage — CocoSketch vs one Elastic
//! sketch vs four Elastic sketches (the most a Tofino can host), as
//! fractions of the 12-stage pipeline's totals.

use cocosketch_bench::{Cli, ResultTable};
use hwsim::program::library;
use hwsim::rmt::{fit_count, ResourceUsage, RmtConfig};

const COCO_MEM: usize = 520 * 1024;
const ELASTIC_MEM: usize = 560 * 1024;

fn main() {
    let cli = Cli::parse();
    let cfg = RmtConfig::default();
    let coco = ResourceUsage::of(&library::coco_hardware(
        COCO_MEM,
        2,
        library::FIVE_TUPLE_BITS,
    ));
    let elastic_prog = library::elastic(ELASTIC_MEM, library::FIVE_TUPLE_BITS);
    let elastic = ResourceUsage::of(&elastic_prog);

    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let coco_fr = coco.fractions(&cfg);
    let el_fr = elastic.fractions(&cfg);
    // Fractions order: hash dist, SALU, gateway, Map RAM, SRAM.
    let rows = [("SRAM", 4usize), ("Map RAM", 3), ("Stateful ALUs", 1)];

    let mut table = ResultTable::new(
        "fig15d",
        "P4 (Tofino) resource usage (fraction of pipeline)",
        &["resource", "Ours", "Elastic", "4*Elastic"],
    );
    for (name, idx) in rows {
        table.push(vec![
            name.to_string(),
            pct(coco_fr[idx]),
            pct(el_fr[idx]),
            pct(el_fr[idx] * 4.0),
        ]);
    }
    table.emit(&cli.out_dir).expect("write results");
    eprintln!(
        "fig15d: a Tofino hosts {} Elastic instances at most (placement model)",
        fit_count(&elastic_prog, &cfg)
    );
}

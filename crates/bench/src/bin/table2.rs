//! Table 2: resource-usage breakdown of one single-key sketch
//! (Count-Min, and R-HHH's per-level variant) on a Tofino-class RMT
//! switch, and the resulting "at most four sketches" feasibility bound.

use cocosketch_bench::{Cli, ResultTable};
use hwsim::program::library;
use hwsim::rmt::{fit_count, place, ResourceUsage, RmtConfig};

const MEM: usize = 500 * 1024;

fn main() {
    let cli = Cli::parse();
    let cfg = RmtConfig::default();
    let cm = library::count_min(MEM, 3, library::FIVE_TUPLE_BITS);
    let rhhh = library::rhhh(MEM, 3, library::FIVE_TUPLE_BITS);
    let cm_fr = ResourceUsage::of(&cm).fractions(&cfg);
    let rhhh_fr = ResourceUsage::of(&rhhh).fractions(&cfg);

    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let names = [
        "Hash Distribution Unit",
        "Stateful ALU",
        "Gateway",
        "Map RAM",
        "SRAM",
    ];
    let mut table = ResultTable::new(
        "table2",
        "Tofino resource usage of one single-key sketch (500KB, 5-tuple)",
        &["resource", "Count-Min", "R-HHH"],
    );
    // Table 2 lists Map RAM after Gateway; fractions() returns
    // (hash, salu, gateway, map ram, sram) in that same order.
    for (i, name) in names.iter().enumerate() {
        table.push(vec![name.to_string(), pct(cm_fr[i]), pct(rhhh_fr[i])]);
    }
    table.emit(&cli.out_dir).expect("write results");

    let (bottleneck, frac) = ResourceUsage::of(&cm).bottleneck(&cfg);
    println!(
        "\nBottleneck: {bottleneck} at {:.2}% -> at most {} Count-Min sketches fit \
         (placement model: {}).",
        frac * 100.0,
        fit_count(&cm, &cfg),
        match place(&cm, &cfg) {
            Ok(p) => format!("places in {} stages", p.stages_used),
            Err(e) => format!("error: {e}"),
        }
    );
}

//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Power-of-d vs global minimum** — d sweep incl. USS (also in
//!    fig16; repeated here for a single consolidated table).
//! 2. **Tie-breaking** — random (the paper's rule) vs first-minimum.
//! 3. **Median vs mean** combination in the hardware-friendly query.
//! 4. **Exact vs approximate division** in the replacement probability.
//!
//! Each row reports the heavy-hitter F1/ARE over the paper's six keys,
//! on one CAIDA-like trace sized by `--scale` and seeded by `--seed`.

use cocosketch::{BasicCocoSketch, Combine, DivisionMode, FlowTable, HardwareCocoSketch, TieBreak};
use cocosketch_bench::{f, Cli, ResultTable};
use hashkit::FastMap;
use sketches::Sketch;
use tasks::heavy_hitter::{score, threshold_of};
use traffic::{presets, KeyBytes, KeySpec, Trace};

const MEM: usize = 500 * 1024;
const THRESHOLD: f64 = 1e-4;

/// Feed the trace and score the six-key HH task from one sketch.
fn run_one(sketch: &mut dyn Sketch, trace: &Trace) -> (f64, f64) {
    let full = KeySpec::FIVE_TUPLE;
    for p in &trace.packets {
        sketch.update(&full.project(&p.flow), u64::from(p.weight));
    }
    let table = FlowTable::new(full, sketch.records());
    let estimates: Vec<FastMap<KeyBytes, u64>> = KeySpec::PAPER_SIX
        .iter()
        .map(|spec| table.query_partial(spec))
        .collect();
    let res = score(
        &estimates,
        trace,
        &KeySpec::PAPER_SIX,
        threshold_of(trace, THRESHOLD),
    );
    (res.avg.f1, res.avg.are)
}

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "ablation: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    let key_bytes = KeySpec::FIVE_TUPLE.key_bytes();

    let mut table = ResultTable::new(
        "ablation",
        "design-choice ablations (6-key heavy hitters, 500KB)",
        &["dimension", "config", "F1", "ARE"],
    );

    // 1. candidate-set size.
    for d in [1usize, 2, 4] {
        let mut s = BasicCocoSketch::with_memory(MEM, d, key_bytes, cli.seed);
        let (f1, are) = run_one(&mut s, &trace);
        table.push(vec!["candidates".into(), format!("d={d}"), f(f1), f(are)]);
    }
    {
        let mut s = sketches::UnbiasedSpaceSaving::with_memory(MEM, key_bytes, cli.seed);
        let (f1, are) = run_one(&mut s, &trace);
        table.push(vec![
            "candidates".into(),
            "global min (USS)".into(),
            f(f1),
            f(are),
        ]);
    }

    // 2. tie-breaking.
    for (label, tb) in [
        ("random (paper)", TieBreak::Random),
        ("first", TieBreak::First),
    ] {
        let mut s = BasicCocoSketch::with_memory(MEM, 2, key_bytes, cli.seed);
        s.set_tie_break(tb);
        let (f1, are) = run_one(&mut s, &trace);
        table.push(vec!["tie-break".into(), label.into(), f(f1), f(are)]);
    }

    // 3. median vs mean combine (d = 3: at d = 2 the median of the
    // recording arrays coincides with their mean, so the comparison
    // needs at least three arrays).
    for (label, c) in [("median (paper)", Combine::Median), ("mean", Combine::Mean)] {
        let mut s =
            HardwareCocoSketch::with_memory(MEM, 3, key_bytes, DivisionMode::Exact, cli.seed);
        s.set_combine(c);
        let (f1, are) = run_one(&mut s, &trace);
        table.push(vec!["combine".into(), label.into(), f(f1), f(are)]);
    }

    // 4. division mode.
    for (label, mode) in [
        ("exact (FPGA)", DivisionMode::Exact),
        ("approx (Tofino)", DivisionMode::ApproxTofino),
    ] {
        let mut s = HardwareCocoSketch::with_memory(MEM, 2, key_bytes, mode, cli.seed);
        let (f1, are) = run_one(&mut s, &trace);
        table.push(vec!["division".into(), label.into(), f(f1), f(are)]);
    }

    table.emit(&cli.out_dir).expect("write results");
}

//! Figure 18a: heavy-hitter F1 of the three CocoSketch versions —
//! basic (software), FPGA (hardware-friendly, exact division) and P4
//! (hardware-friendly, approximate division) — across memory budgets.
//!
//! Expected shape: basic is best, the hardware-friendly versions trail
//! by <10%, and the FPGA-vs-P4 gap (the approximate division) is <1%.

use cocosketch::Variant;
use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{heavy_hitter, Algo};
use traffic::{presets, KeySpec};

const MEMS_KB: [usize; 3] = [500, 1000, 1500];
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig18a: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);

    let cols: Vec<String> = std::iter::once("version".to_string())
        .chain(MEMS_KB.iter().map(|m| format!("{m}KB")))
        .collect();
    let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("fig18a", "CocoSketch versions: HH F1 vs memory", &cols_ref);

    for variant in Variant::ALL {
        let mut row = vec![variant.name().to_string()];
        for mem_kb in MEMS_KB {
            let res = heavy_hitter::run(
                &trace,
                &KeySpec::PAPER_SIX,
                KeySpec::FIVE_TUPLE,
                Algo::Coco { variant, d: 2 },
                mem_kb * 1024,
                THRESHOLD,
                cli.seed,
            );
            eprintln!(
                "fig18a: {} {mem_kb}KB: F1 {:.4}",
                variant.name(),
                res.avg.f1
            );
            row.push(f(res.avg.f1));
        }
        table.push(row);
    }
    table.emit(&cli.out_dir).expect("write results");
}

//! Figure 8: heavy-hitter detection under different numbers of partial
//! keys (CAIDA-like trace, 500KB total memory, threshold 1e-4).
//!
//! Reproduces 8a (recall), 8b (precision) and 8c (ARE): CocoSketch
//! stays flat and high as keys grow; per-key baselines degrade because
//! each key's sketch gets 1/k of the memory.

use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{heavy_hitter, Algo};
use traffic::{presets, KeySpec};

const MEM: usize = 500 * 1024;
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig8: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    eprintln!(
        "fig8: {} packets, {} flows",
        trace.len(),
        trace.distinct_flows()
    );

    let mut algos = vec![Algo::OURS];
    algos.extend(Algo::BASELINES);

    let key_cols: Vec<&str> = ["algo", "1", "2", "3", "4", "5", "6"].to_vec();
    let mut recall = ResultTable::new("fig8a", "HH recall vs number of keys", &key_cols);
    let mut precision = ResultTable::new("fig8b", "HH precision vs number of keys", &key_cols);
    let mut are = ResultTable::new("fig8c", "HH ARE vs number of keys", &key_cols);

    for algo in &algos {
        let mut r_row = vec![algo.name().to_string()];
        let mut p_row = vec![algo.name().to_string()];
        let mut a_row = vec![algo.name().to_string()];
        for k in 1..=6 {
            let specs = &KeySpec::PAPER_SIX[..k];
            let res = heavy_hitter::run(
                &trace,
                specs,
                KeySpec::FIVE_TUPLE,
                *algo,
                MEM,
                THRESHOLD,
                cli.seed,
            );
            r_row.push(f(res.avg.recall));
            p_row.push(f(res.avg.precision));
            a_row.push(f(res.avg.are));
            eprintln!("fig8: {} k={k}: F1 {:.3}", algo.name(), res.avg.f1);
        }
        recall.push(r_row);
        precision.push(p_row);
        are.push(a_row);
    }

    for t in [&recall, &precision, &are] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

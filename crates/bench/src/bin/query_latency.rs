//! Query-plane latency: per-spec scans vs the query engine, as JSON.
//!
//! Builds a ≥100k-row `(full key, size)` [`FlowTable`] from the exact
//! flow counts of a CAIDA-like trace and times five ways of answering
//! partial-key query sets over it:
//!
//! 1. **per-spec scan** — one [`FlowTable::query_partial`] pass per
//!    spec (the pre-engine baseline; already projector-compiled);
//! 2. **single pass** — [`FlowTable::query_multi`], all specs in one
//!    row scan;
//! 3. **parallel scan** — [`FlowTable::query_multi_parallel`], the row
//!    scan chunked across threads with exact thread-local merge;
//! 4. **hierarchy rollup (maps)** — [`FlowTable::query_rollup`] over
//!    the 33-level source-IP hierarchy: one scan for /32, every coarser
//!    level merged linearly from its parent's shrinking sorted result,
//!    each level materialized as a hash map;
//! 5. **hierarchy rollup (sorted entries)** —
//!    [`FlowTable::query_all_entries`], the same rollup in its native
//!    sorted-entry shape (what the HHH task consumes), which never
//!    builds a per-level hash table. This is the headline
//!    `rollup_speedup`.
//!
//! Every path is asserted bit-identical to the per-spec baseline before
//! any number is reported. Output is one JSON document, printed to
//! stdout and written to `<out>/BENCH_query.json`, so the query plane's
//! perf trajectory is tracked alongside `BENCH_throughput.json`.
//!
//! Run with:
//! `cargo run --release -p cocosketch-bench --bin query_latency -- [--scale N] [--seed S] [--threads T] [--out DIR]`

use cocosketch::FlowTable;
use hashkit::FastMap;
use hhh::hierarchy::src_hierarchy;
use std::path::PathBuf;
use std::time::Instant;
use traffic::{presets, truth, KeyBytes, KeySpec};

struct Args {
    scale: usize,
    seed: u64,
    threads: usize,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: 10, // 27M-packet CAIDA preset / 10 -> ~130k distinct flows
        seed: 0xC0C0,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => a.scale = need_value(i).parse().expect("--scale takes an integer"),
            "--seed" => a.seed = need_value(i).parse().expect("--seed takes an integer"),
            "--threads" => a.threads = need_value(i).parse().expect("--threads takes an integer"),
            "--out" => a.out_dir = PathBuf::from(need_value(i)),
            "--help" | "-h" => {
                eprintln!("usage: query_latency [--scale N] [--seed S] [--threads T] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(a.scale > 0, "--scale must be positive");
    assert!(a.threads > 0, "--threads must be positive");
    a
}

/// Wall time of one `f()` in nanoseconds; the result is dropped inside
/// the timed region so every path pays its own deallocation.
fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    let r = f();
    drop(r);
    start.elapsed().as_nanos() as f64
}

const REPS: usize = 5;

fn main() {
    let args = parse_args();
    eprintln!(
        "query_latency: generating CAIDA-like trace at scale {} ...",
        args.scale
    );
    let trace = presets::caida_like(args.scale, args.seed);
    let rows: Vec<(KeyBytes, u64)> = truth::exact_counts(&trace, &KeySpec::FIVE_TUPLE)
        .into_iter()
        .collect();
    let n_rows = rows.len();
    let table = FlowTable::new(KeySpec::FIVE_TUPLE, rows);
    eprintln!("query_latency: {n_rows} distinct full-key rows");

    let six = KeySpec::PAPER_SIX;
    let hierarchy = src_hierarchy();

    let per_spec = |specs: &[KeySpec]| -> Vec<FastMap<KeyBytes, u64>> {
        specs.iter().map(|s| table.query_partial(s)).collect()
    };

    // Bit-identity first, untimed: every engine path must agree with
    // the per-spec baseline before any number is reported.
    {
        let base_six = per_spec(&six);
        assert_eq!(
            table.query_multi(&six),
            base_six,
            "single-pass must be bit-identical"
        );
        assert_eq!(
            table.query_multi_parallel(&six, args.threads),
            base_six,
            "parallel scan must be bit-identical"
        );
        assert_eq!(
            table.query_all(&six),
            base_six,
            "engine must be bit-identical"
        );
        drop(base_six);
        let base_h = per_spec(&hierarchy);
        assert_eq!(
            table.query_rollup(&hierarchy),
            base_h,
            "rollup must be bit-identical"
        );
        let base_h_sorted: Vec<Vec<(KeyBytes, u64)>> = base_h
            .iter()
            .map(|m| {
                let mut rows: Vec<(KeyBytes, u64)> = m.iter().map(|(k, &v)| (*k, v)).collect();
                rows.sort_unstable_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
                rows
            })
            .collect();
        assert_eq!(
            table.query_all_entries(&hierarchy),
            base_h_sorted,
            "sorted-entry rollup must be bit-identical"
        );
    }

    // Timing: best-of-REPS with the paths interleaved round-robin, so
    // slow drift of the host (page cache, allocator arenas, noisy
    // neighbours) hits every path alike instead of whichever ran last.
    let mut t_six_scan = f64::INFINITY;
    let mut t_six_multi = f64::INFINITY;
    let mut t_six_par = f64::INFINITY;
    let mut t_six_engine = f64::INFINITY;
    let mut t_h_scan = f64::INFINITY;
    let mut t_h_rollup = f64::INFINITY;
    let mut t_h_entries = f64::INFINITY;
    for _ in 0..REPS {
        t_six_scan = t_six_scan.min(time_once(|| per_spec(&six)));
        t_six_multi = t_six_multi.min(time_once(|| table.query_multi(&six)));
        t_six_par = t_six_par.min(time_once(|| table.query_multi_parallel(&six, args.threads)));
        t_six_engine = t_six_engine.min(time_once(|| table.query_all(&six)));
        t_h_scan = t_h_scan.min(time_once(|| per_spec(&hierarchy)));
        t_h_rollup = t_h_rollup.min(time_once(|| table.query_rollup(&hierarchy)));
        t_h_entries = t_h_entries.min(time_once(|| table.query_all_entries(&hierarchy)));
    }

    let single_pass_speedup = t_six_scan / t_six_multi;
    let parallel_speedup = t_six_scan / t_six_par;
    let engine_speedup = t_six_scan / t_six_engine;
    let rollup_maps_speedup = t_h_scan / t_h_rollup;
    let rollup_speedup = t_h_scan / t_h_entries;
    let per_row = |ns: f64| ns / n_rows as f64;
    eprintln!(
        "query_latency: 6 keys: per-spec {:.1} ns/row, single-pass {:.1} ns/row ({single_pass_speedup:.2}x), \
         parallel[{} threads] {:.1} ns/row ({parallel_speedup:.2}x), engine {:.1} ns/row ({engine_speedup:.2}x)",
        per_row(t_six_scan),
        per_row(t_six_multi),
        args.threads,
        per_row(t_six_par),
        per_row(t_six_engine),
    );
    eprintln!(
        "query_latency: 33-level hierarchy: per-spec {:.1} ns/row, rollup-to-maps {:.1} ns/row \
         ({rollup_maps_speedup:.2}x), rollup-to-entries {:.1} ns/row ({rollup_speedup:.2}x)",
        per_row(t_h_scan),
        per_row(t_h_rollup),
        per_row(t_h_entries),
    );

    let json = format!(
        "{{\n  \"bench\": \"query_latency\",\n  \"rows\": {n_rows},\n  \"specs\": {},\n  \
         \"hierarchy_levels\": {},\n  \"threads\": {},\n  \"seed\": {},\n  \
         \"ns_per_row\": {{\n    \"six_keys_per_spec_scan\": {:.2},\n    \
         \"six_keys_single_pass\": {:.2},\n    \"six_keys_parallel_scan\": {:.2},\n    \
         \"six_keys_engine\": {:.2},\n    \
         \"hierarchy_per_spec_scan\": {:.2},\n    \"hierarchy_rollup_maps\": {:.2},\n    \
         \"hierarchy_rollup_entries\": {:.2}\n  }},\n  \
         \"single_pass_speedup\": {single_pass_speedup:.3},\n  \
         \"parallel_speedup\": {parallel_speedup:.3},\n  \
         \"engine_speedup\": {engine_speedup:.3},\n  \
         \"rollup_maps_speedup\": {rollup_maps_speedup:.3},\n  \
         \"rollup_speedup\": {rollup_speedup:.3},\n  \
         \"note\": \"all engine paths asserted bit-identical to per-spec query_partial before timing \
         is reported; ns_per_row is whole-query-set nanoseconds divided by table rows; rollup_speedup \
         compares the 33-level hierarchy answered as sorted entries (the shape the HHH task consumes) \
         against 33 per-spec scans, rollup_maps_speedup is the same rollup materialized as per-level \
         hash maps; single-pass and parallel are primitives for traversal-bound or multi-core settings \
         and are expected to trail the per-spec scan on an in-memory table with few cores — engine_speedup \
         is the path Pipeline::estimates takes\"\n}}\n",
        six.len(),
        hierarchy.len(),
        args.threads,
        args.seed,
        per_row(t_six_scan),
        per_row(t_six_multi),
        per_row(t_six_par),
        per_row(t_six_engine),
        per_row(t_h_scan),
        per_row(t_h_rollup),
        per_row(t_h_entries),
    );
    print!("{json}");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = args.out_dir.join("BENCH_query.json");
    std::fs::write(&path, &json).expect("write BENCH_query.json");
    eprintln!("query_latency: wrote {}", path.display());
}

//! Durable epoch tier benchmark: seal latency, reopen/scan rate, and
//! rollup-cache speedup, as JSON.
//!
//! Exercises the storage layer the way `measure --window --spill` uses
//! it:
//!
//! 1. **seal** — append `--epochs` sealed epochs of `--rows` flows to a
//!    fresh [`cocosketch::segment::EpochDir`]; each append is the full
//!    durability protocol (encode, tmp write, fsync, rename, manifest
//!    replace), timed per epoch;
//! 2. **reopen** — close and reopen the populated directory (manifest
//!    decode + prefix validation + tail checksum), then **scan** every
//!    segment back through the total decoder, reporting epochs/s and
//!    MB/s;
//! 3. **rollup cache** — the paper's six keys over reloaded epochs,
//!    cold ([`cocosketch::FlowTable::query_all_entries`] per epoch)
//!    versus warm ([`cocosketch::RollupCache`] hits); every cached
//!    answer is asserted **bit-identical** to the cold scan *before*
//!    anything is timed — the cache may never trade correctness for
//!    speed.
//!
//! The run repeats `--reps` times in fresh directories; per-epoch seal
//! latencies merge across reps, rates take the best rep (the usual
//! steady-state estimator for I/O benches), and the speedup divides
//! summed cold time by summed hit time. `scripts/bench_compare.sh`
//! diffs `rollup_cache_speedup` against the committed baseline.
//!
//! Run with:
//! `cargo run --release -p cocosketch-bench --bin storage -- [--epochs N] [--rows R] [--reps K] [--out DIR]`

use cocosketch::segment::EpochDir;
use cocosketch::{Epoch, FlowTable, RollupCache};
use std::path::PathBuf;
use std::time::Instant;
use traffic::{FiveTuple, KeyBytes, KeySpec};

struct Args {
    epochs: u64,
    rows: u32,
    reps: usize,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        epochs: 32,
        rows: 20_000,
        reps: 3,
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--epochs" => a.epochs = need_value(i).parse().expect("--epochs takes an integer"),
            "--rows" => a.rows = need_value(i).parse().expect("--rows takes an integer"),
            "--reps" => a.reps = need_value(i).parse().expect("--reps takes an integer"),
            "--out" => a.out_dir = PathBuf::from(need_value(i)),
            "--help" | "-h" => {
                eprintln!("usage: storage [--epochs N] [--rows R] [--reps K] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(a.epochs > 0, "--epochs must be positive");
    assert!(a.rows > 0, "--rows must be positive");
    assert!(a.reps > 0, "--reps must be positive");
    a
}

/// A sealed epoch with `rows` distinct flows, deterministic in `id`.
/// Keys are Weyl-sequence mixed so the table looks hash-random (like a
/// real seal) instead of arithmetic-sequential.
fn build_epoch(id: u64, rows: u32) -> Epoch {
    let full = KeySpec::FIVE_TUPLE;
    let entries: Vec<(KeyBytes, u64)> = (0..rows)
        .map(|i| {
            let x = (u64::from(i) + (id << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let flow = FiveTuple::new(
                (x >> 32) as u32,
                x as u32,
                (x >> 16) as u16,
                x as u16,
                if x & 1 == 0 { 6 } else { 17 },
            );
            (full.project(&flow), (x % 1000) + 1)
        })
        .collect();
    let table = FlowTable::new(full, entries);
    let weight = table.total();
    Epoch {
        id,
        packets: u64::from(rows),
        weight,
        tables: vec![table],
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "storage: {} epochs x {} rows, {} rep{}",
        args.epochs,
        args.rows,
        args.reps,
        if args.reps == 1 { "" } else { "s" }
    );
    let epochs: Vec<Epoch> = (0..args.epochs)
        .map(|id| build_epoch(id, args.rows))
        .collect();
    let specs = KeySpec::PAPER_SIX;

    let mut seal_us: Vec<f64> = Vec::new();
    let mut best_reopen_ms = f64::INFINITY;
    let mut best_scan_eps = 0.0f64;
    let mut best_scan_mbps = 0.0f64;
    let mut cold_ns_total = 0u64;
    let mut hit_ns_total = 0u64;
    let mut stored_bytes = 0u64;

    for rep in 0..args.reps {
        let root = std::env::temp_dir().join(format!(
            "cocosketch-bench-storage-{}-{rep}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();

        // Section 1: seal latency — the full durability protocol per
        // appended epoch.
        let (mut dir, _) = EpochDir::open(&root).expect("open fresh dir");
        for e in &epochs {
            let t = Instant::now();
            dir.append(e).expect("append epoch");
            seal_us.push(t.elapsed().as_nanos() as f64 / 1e3);
        }
        stored_bytes = dir.segments().iter().map(|m| m.bytes).sum();
        drop(dir);

        // Section 2: reopen (recovery-path validation) + full scan.
        let t = Instant::now();
        let (dir, report) = EpochDir::open(&root).expect("reopen");
        let reopen_ms = t.elapsed().as_nanos() as f64 / 1e6;
        assert!(
            report.quarantined.is_empty() && report.adopted == 0,
            "reopen of a clean directory found work: {report:?}"
        );
        let t = Instant::now();
        let mut scanned = 0u64;
        for sealed in dir.scan() {
            let sealed = sealed.expect("scan segment");
            std::hint::black_box(sealed.weight);
            scanned += 1;
        }
        let scan_s = t.elapsed().as_secs_f64().max(1e-12);
        assert_eq!(scanned, args.epochs, "scan visited every segment");
        let scan_eps = scanned as f64 / scan_s;
        let scan_mbps = stored_bytes as f64 / 1e6 / scan_s;
        best_reopen_ms = best_reopen_ms.min(reopen_ms);
        if scan_eps > best_scan_eps {
            best_scan_eps = scan_eps;
            best_scan_mbps = scan_mbps;
        }

        // Section 3: rollup cache over reloaded epochs. Gate first:
        // every cached answer bit-identical to the cold scan, for every
        // (epoch, spec) — only then time cold vs hit.
        let reloaded: Vec<Epoch> = dir
            .scan()
            .collect::<std::io::Result<_>>()
            .expect("reload for cache gate");
        let mut cache = RollupCache::new(reloaded.len() * specs.len());
        for e in &reloaded {
            let cold = e.primary().query_all_entries(&specs);
            let cached = cache.query(e, &specs);
            for (c, k) in cached.iter().zip(&cold) {
                assert_eq!(
                    c.as_ref(),
                    k,
                    "cache diverged from cold scan (epoch {})",
                    e.id
                );
            }
        }
        let hits_before = cache.stats().hits;
        let t = Instant::now();
        for e in &reloaded {
            for ans in cache.query(e, &specs) {
                std::hint::black_box(ans.len());
            }
        }
        hit_ns_total += t.elapsed().as_nanos() as u64;
        assert_eq!(
            cache.stats().hits - hits_before,
            (reloaded.len() * specs.len()) as u64,
            "warm pass must be all hits"
        );
        let t = Instant::now();
        for e in &reloaded {
            for ans in e.primary().query_all_entries(&specs) {
                std::hint::black_box(ans.len());
            }
        }
        cold_ns_total += t.elapsed().as_nanos() as u64;

        eprintln!(
            "storage: rep {rep}: reopen {reopen_ms:.2} ms, scan {scan_eps:.0} epochs/s \
             ({scan_mbps:.0} MB/s)"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    seal_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let seal_mean = seal_us.iter().sum::<f64>() / seal_us.len() as f64;
    let seal_max = *seal_us.last().expect("at least one seal");
    let speedup = cold_ns_total as f64 / (hit_ns_total as f64).max(1.0);
    eprintln!(
        "storage: seal {seal_mean:.0} us mean / {seal_max:.0} us max, \
         rollup cache speedup {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"storage\",\n  \"epochs\": {},\n  \"rows_per_epoch\": {},\n  \
         \"reps\": {},\n  \"stored_bytes\": {stored_bytes},\n  \
         \"seal_append_us_mean\": {seal_mean:.2},\n  \
         \"seal_append_us_max\": {seal_max:.2},\n  \
         \"reopen_ms\": {best_reopen_ms:.3},\n  \
         \"scan_epochs_per_s\": {best_scan_eps:.1},\n  \
         \"scan_mb_per_s\": {best_scan_mbps:.1},\n  \
         \"rollup_cache_speedup\": {speedup:.2},\n  \
         \"note\": \"seal = full durability protocol (encode, tmp write, fsync, rename, \
         manifest replace) per appended epoch, latencies merged across reps; reopen = manifest \
         decode + prefix validation + tail checksum on a clean directory, best rep; scan = every \
         segment back through the total decoder, best rep; rollup_cache_speedup = summed cold \
         query_all_entries time / summed all-hit cache time over the paper's six keys, every \
         cached answer asserted bit-identical to its cold scan before timing\"\n}}\n",
        args.epochs, args.rows, args.reps,
    );
    print!("{json}");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = args.out_dir.join("BENCH_storage.json");
    std::fs::write(&path, &json).expect("write BENCH_storage.json");
    eprintln!("storage: wrote {}", path.display());
}

//! Figure 15c: FPGA resource usage — CocoSketch vs one Elastic sketch
//! vs six Elastic sketches (the 6-key deployment), as fractions of an
//! Alveo U280-class device.
//!
//! Sketches are sized to reach 90% heavy-hitter F1 as in §7.4 (~0.5MB
//! for CocoSketch; Elastic needs a similar heavy+light budget per key).

use cocosketch_bench::{Cli, ResultTable};
use hwsim::fpga::{synthesize, FpgaConfig};
use hwsim::program::library;

/// Memory giving ≥90% F1 (measured via the fig18a sweep).
const COCO_MEM: usize = 512 * 1024;
const ELASTIC_MEM: usize = 560 * 1024;

fn main() {
    let cli = Cli::parse();
    let cfg = FpgaConfig::default();
    let coco = synthesize(
        &library::coco_hardware(COCO_MEM, 2, library::FIVE_TUPLE_BITS),
        &cfg,
    );
    let elastic = synthesize(
        &library::elastic(ELASTIC_MEM, library::FIVE_TUPLE_BITS),
        &cfg,
    );

    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let mut table = ResultTable::new(
        "fig15c",
        "FPGA resource usage (fraction of device)",
        &["resource", "Ours", "Elastic", "6*Elastic"],
    );
    let coco_fr = coco.fractions(&cfg);
    let el_fr = elastic.fractions(&cfg);
    for (i, name) in ["Registers", "LUTs", "Block RAM"].iter().enumerate() {
        table.push(vec![
            name.to_string(),
            pct(coco_fr[i]),
            pct(el_fr[i]),
            pct(el_fr[i] * 6.0),
        ]);
    }
    table.emit(&cli.out_dir).expect("write results");
    eprintln!(
        "fig15c: coco BRAM tiles {}, elastic {} (x6 = {})",
        coco.bram_tiles,
        elastic.bram_tiles,
        elastic.bram_tiles * 6
    );
}

//! Figure 16: varying `d` in the basic CocoSketch — F1 (16a) and CPU
//! throughput (16b), with USS as the `d = total buckets` limit.
//!
//! The shape: F1 changes only marginally from d=2 upward, while
//! throughput falls with d and collapses for USS — the justification
//! for the power-of-d relaxation.

use cocosketch::Variant;
use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{heavy_hitter, timing, Algo, Pipeline};
use traffic::{presets, KeySpec};

const MEM: usize = 500 * 1024;
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig16: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);

    let mut table = ResultTable::new(
        "fig16",
        "basic CocoSketch: F1 and throughput vs d (USS = global-minimum limit)",
        &["config", "F1", "throughput(Mpps)"],
    );

    let configs: Vec<(String, Algo)> = (1..=6usize)
        .map(|d| {
            (
                format!("d={d}"),
                Algo::Coco {
                    variant: Variant::Basic,
                    d,
                },
            )
        })
        .chain(std::iter::once(("USS".to_string(), Algo::Uss)))
        .collect();

    for (label, algo) in &configs {
        let res = heavy_hitter::run(
            &trace,
            &KeySpec::PAPER_SIX,
            KeySpec::FIVE_TUPLE,
            *algo,
            MEM,
            THRESHOLD,
            cli.seed,
        );
        let t = timing::measure_throughput(
            || {
                Pipeline::deploy(
                    *algo,
                    &KeySpec::PAPER_SIX,
                    KeySpec::FIVE_TUPLE,
                    MEM,
                    cli.seed,
                )
            },
            &trace,
            3,
        );
        eprintln!("fig16: {label}: F1 {:.4}, {:.2} Mpps", res.avg.f1, t.mpps);
        table.push(vec![label.clone(), f(res.avg.f1), f(t.mpps)]);
    }
    table.emit(&cli.out_dir).expect("write results");
}

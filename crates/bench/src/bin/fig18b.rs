//! Figure 18b: CocoSketch vs full-key-sketch strawmen (§2.3) on a
//! two-key workload — SrcIP (the full key) and its 24-bit prefix.
//!
//! - **Ours**: one CocoSketch on SrcIP; the /24 recovered by unbiased
//!   aggregation.
//! - **2*Elastic**: one Elastic sketch per key (half the memory each).
//! - **Lossy**: one full-memory Elastic on SrcIP; the /24 recovered by
//!   aggregating only the heavy-part records.
//! - **Full**: one full-memory Elastic on SrcIP; each /24 recovered by
//!   querying all 256 member addresses.
//!
//! ARE is computed over *all* distinct flows of each key. Expected
//! shape: Ours is accurate on both keys; the strawmen do acceptably on
//! the full key but poorly on the partial key ("Lossy" loses unrecorded
//! flows, "Full" accumulates per-query error 256x).

use cocosketch::{BasicCocoSketch, FlowTable};
use cocosketch_bench::{Cli, ResultTable};
use hashkit::FastMap;
use sketches::{ElasticSketch, Sketch};
use traffic::{presets, truth, KeyBytes, KeySpec, Trace};

/// The paper's 6MB against its full trace works out to roughly two
/// 8-byte (SrcIP, counter) buckets per distinct source; the budget
/// here is sized to the generated workload at a comparable ratio (six
/// buckets per distinct source) so the memory pressure matches at any
/// `--scale`.
const BUCKET_BYTES: usize = 8;
const BUCKETS_PER_FLOW: usize = 6;

/// ARE of `estimate(key)` over all keys of `truth`.
fn are_over_all(truth: &FastMap<KeyBytes, u64>, mut estimate: impl FnMut(&KeyBytes) -> u64) -> f64 {
    let mut sum = 0f64;
    for (k, &v) in truth {
        let est = estimate(k);
        sum += (est as f64 - v as f64).abs() / v as f64;
    }
    sum / truth.len() as f64
}

fn feed(sketch: &mut dyn Sketch, trace: &Trace, spec: &KeySpec) {
    for p in &trace.packets {
        sketch.update(&spec.project(&p.flow), u64::from(p.weight));
    }
}

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig18b: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    let full = KeySpec::SRC_IP;
    let part = KeySpec::src_prefix(24);
    let truth_full = truth::exact_counts(&trace, &full);
    let truth_part = truth::exact_counts(&trace, &part);
    let mem = (truth_full.len() * BUCKET_BYTES * BUCKETS_PER_FLOW).max(64 * 1024);
    eprintln!(
        "fig18b: {} distinct SrcIPs, {} distinct /24s, {}KB budget",
        truth_full.len(),
        truth_part.len(),
        mem / 1024
    );

    let mut table = ResultTable::new(
        "fig18b",
        "ARE on full key (SrcIP) and partial key (/24), 6MB scaled",
        &["method", "ARE 32-bit (full)", "ARE 24-bit (partial)"],
    );

    // Ours: one CocoSketch on the full key.
    {
        let mut coco = BasicCocoSketch::with_memory(mem, 2, full.key_bytes(), cli.seed);
        feed(&mut coco, &trace, &full);
        let t = FlowTable::new(full, coco.records());
        let full_est: FastMap<KeyBytes, u64> = t.query_partial(&full);
        let part_est = t.query_partial(&part);
        table.push(vec![
            "Ours".into(),
            format!(
                "{:.4}",
                are_over_all(&truth_full, |k| full_est.get(k).copied().unwrap_or(0))
            ),
            format!(
                "{:.4}",
                are_over_all(&truth_part, |k| part_est.get(k).copied().unwrap_or(0))
            ),
        ]);
        eprintln!("fig18b: Ours done");
    }

    // 2*Elastic: one sketch per key, half memory each.
    {
        let mut e_full = ElasticSketch::with_memory(mem / 2, full.key_bytes(), cli.seed);
        feed(&mut e_full, &trace, &full);
        let mut e_part = ElasticSketch::with_memory(mem / 2, part.key_bytes(), cli.seed + 1);
        feed(&mut e_part, &trace, &part);
        table.push(vec![
            "2*Elastic".into(),
            format!("{:.4}", are_over_all(&truth_full, |k| e_full.query(k))),
            format!("{:.4}", are_over_all(&truth_part, |k| e_part.query(k))),
        ]);
        eprintln!("fig18b: 2*Elastic done");
    }

    // Lossy & Full share one full-memory Elastic on the full key.
    {
        let mut e = ElasticSketch::with_memory(mem, full.key_bytes(), cli.seed + 2);
        feed(&mut e, &trace, &full);
        let are_full = are_over_all(&truth_full, |k| e.query(k));

        // Lossy: aggregate only the recorded (heavy-part) flows.
        let lossy_table = FlowTable::new(full, e.records());
        let lossy_est = lossy_table.query_partial(&part);
        table.push(vec![
            "Lossy".into(),
            format!("{are_full:.4}"),
            format!(
                "{:.4}",
                are_over_all(&truth_part, |k| { lossy_est.get(k).copied().unwrap_or(0) })
            ),
        ]);
        eprintln!("fig18b: Lossy done");

        // Full: query every /32 member of each /24.
        let are_part_full_query = are_over_all(&truth_part, |k24| {
            let base = u32::from_be_bytes(k24.as_slice().try_into().expect("/24 keys are 4 bytes"));
            (0..256u32)
                .map(|low| {
                    let ip = base | low;
                    e.query(&KeyBytes::new(&ip.to_be_bytes()))
                })
                .sum()
        });
        table.push(vec![
            "Full".into(),
            format!("{are_full:.4}"),
            format!("{are_part_full_query:.4}"),
        ]);
        eprintln!("fig18b: Full done");
    }

    table.emit(&cli.out_dir).expect("write results");
}

//! Figure 14: CPU processing speed under different numbers of partial
//! keys — throughput in Mpps (14a) and 95th-percentile per-packet CPU
//! cycles (14b).
//!
//! The shape to reproduce: CocoSketch and USS are flat in the number of
//! keys (one sketch regardless), all per-key baselines degrade
//! linearly; CocoSketch is the fastest overall, USS flat but slow
//! (Stream-Summary bookkeeping), UnivMon the slowest.

use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{timing, Algo, Pipeline};
use traffic::{presets, KeySpec};

const MEM: usize = 500 * 1024;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig14: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);

    let mut algos = vec![Algo::OURS];
    algos.extend(Algo::BASELINES);

    let cols = ["algo", "1", "2", "3", "4", "5", "6"];
    let mut tput = ResultTable::new("fig14a", "CPU throughput (Mpps) vs number of keys", &cols);
    let mut cycles = ResultTable::new(
        "fig14b",
        "p95 per-packet CPU cycles vs number of keys",
        &cols,
    );

    for algo in &algos {
        let mut t_row = vec![algo.name().to_string()];
        let mut c_row = vec![algo.name().to_string()];
        for k in 1..=6 {
            let specs = &KeySpec::PAPER_SIX[..k];
            let t = timing::measure_throughput(
                || Pipeline::deploy(*algo, specs, KeySpec::FIVE_TUPLE, MEM, cli.seed),
                &trace,
                3,
            );
            let mut pipe = Pipeline::deploy(*algo, specs, KeySpec::FIVE_TUPLE, MEM, cli.seed);
            let c = timing::measure_cycles(&mut pipe, &trace);
            eprintln!(
                "fig14: {} k={k}: {:.2} Mpps, p95 {} cycles",
                algo.name(),
                t.mpps,
                c.p95_cycles
            );
            t_row.push(f(t.mpps));
            c_row.push(format!("{:.0}", c.p95_cycles));
        }
        tput.push(t_row);
        cycles.push(c_row);
    }

    for t in [&tput, &cycles] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

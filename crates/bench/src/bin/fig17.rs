//! Figure 17: CDF of absolute per-flow error under different `d`
//! values — basic CocoSketch vs USS (17a) and the hardware-friendly
//! variant (17b).
//!
//! The paper's observation: larger `d` gives smaller errors at most
//! quantiles but a heavier extreme tail (Theorem 3's d-dependence).
//! Output: absolute error at the upper quantiles of the per-flow error
//! distribution across all distinct full-key flows.

use cocosketch::{BasicCocoSketch, DivisionMode, HardwareCocoSketch};
use cocosketch_bench::{Cli, ResultTable};
use sketches::Sketch;
use traffic::{presets, truth, KeySpec, Trace};

const MEM: usize = 500 * 1024;
const QUANTILES: [f64; 7] = [0.95, 0.96, 0.97, 0.98, 0.99, 0.995, 0.999];

/// Per-flow |estimate - truth| across every distinct full-key flow.
fn error_distribution(sketch: &dyn Sketch, trace: &Trace) -> Vec<u64> {
    let exact = truth::exact_counts(trace, &KeySpec::FIVE_TUPLE);
    let est: std::collections::HashMap<_, _> = sketch.records().into_iter().collect();
    let mut errors: Vec<u64> = exact
        .iter()
        .map(|(k, &v)| est.get(k).copied().unwrap_or(0).abs_diff(v))
        .collect();
    errors.sort_unstable();
    errors
}

fn quantile(errors: &[u64], q: f64) -> u64 {
    let idx = ((errors.len() as f64 * q) as usize).min(errors.len() - 1);
    errors[idx]
}

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig17: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    let full = KeySpec::FIVE_TUPLE;
    let feed = |sketch: &mut dyn Sketch| {
        for p in &trace.packets {
            sketch.update(&full.project(&p.flow), u64::from(p.weight));
        }
    };

    let q_cols: Vec<String> = std::iter::once("config".to_string())
        .chain(QUANTILES.iter().map(|q| format!("q{q}")))
        .collect();
    let q_ref: Vec<&str> = q_cols.iter().map(String::as_str).collect();

    // 17a: basic CocoSketch d in {2,3,4} and USS.
    let mut a = ResultTable::new("fig17a", "error CDF tail, basic CocoSketch", &q_ref);
    for d in [2usize, 3, 4] {
        let mut s = BasicCocoSketch::with_memory(MEM, d, full.key_bytes(), cli.seed);
        feed(&mut s);
        let errors = error_distribution(&s, &trace);
        let mut row = vec![format!("d={d}")];
        row.extend(QUANTILES.iter().map(|&q| quantile(&errors, q).to_string()));
        a.push(row);
        eprintln!("fig17a: d={d} done");
    }
    {
        let mut uss = sketches::UnbiasedSpaceSaving::with_memory(MEM, full.key_bytes(), cli.seed);
        feed(&mut uss);
        let errors = error_distribution(&uss, &trace);
        let mut row = vec!["USS".to_string()];
        row.extend(QUANTILES.iter().map(|&q| quantile(&errors, q).to_string()));
        a.push(row);
    }
    a.emit(&cli.out_dir).expect("write results");

    // 17b: hardware-friendly CocoSketch d in {1,2,3,4}.
    let mut b = ResultTable::new(
        "fig17b",
        "error CDF tail, hardware-friendly CocoSketch",
        &q_ref,
    );
    for d in [1usize, 2, 3, 4] {
        let mut s = HardwareCocoSketch::with_memory(
            MEM,
            d,
            full.key_bytes(),
            DivisionMode::Exact,
            cli.seed,
        );
        feed(&mut s);
        let errors = error_distribution(&s, &trace);
        let mut row = vec![format!("d={d}")];
        row.extend(QUANTILES.iter().map(|&q| quantile(&errors, q).to_string()));
        b.push(row);
        eprintln!("fig17b: d={d} done");
    }
    b.emit(&cli.out_dir).expect("write results");
}

//! Figure 13: the MAWI-trace results — heavy-hitter F1 (13a) and
//! heavy-change F1 (13b) under different numbers of partial keys.

use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{heavy_change, heavy_hitter, Algo};
use traffic::{gen, presets, KeySpec};

const MEM: usize = 500 * 1024;
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig13: generating MAWI-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::mawi_like(cli.scale, cli.seed);
    let cfg = presets::mawi_config(cli.scale, cli.seed);
    let (w1, w2) = gen::heavy_change_pair(&cfg, 400, 0.5);

    let cols = ["algo", "1", "2", "3", "4", "5", "6"];
    let mut hh = ResultTable::new("fig13a", "MAWI heavy-hitter F1 vs number of keys", &cols);
    let mut hc = ResultTable::new("fig13b", "MAWI heavy-change F1 vs number of keys", &cols);

    let mut hh_algos = vec![Algo::OURS];
    hh_algos.extend(Algo::BASELINES);
    for algo in &hh_algos {
        let mut row = vec![algo.name().to_string()];
        for k in 1..=6 {
            let res = heavy_hitter::run(
                &trace,
                &KeySpec::PAPER_SIX[..k],
                KeySpec::FIVE_TUPLE,
                *algo,
                MEM,
                THRESHOLD,
                cli.seed,
            );
            row.push(f(res.avg.f1));
        }
        eprintln!("fig13a: {} done", algo.name());
        hh.push(row);
    }

    let hc_algos = [
        Algo::OURS,
        Algo::CountHeap,
        Algo::CmHeap,
        Algo::Elastic,
        Algo::UnivMon,
    ];
    for algo in &hc_algos {
        let mut row = vec![algo.name().to_string()];
        for k in 1..=6 {
            let res = heavy_change::run(
                &w1,
                &w2,
                &KeySpec::PAPER_SIX[..k],
                KeySpec::FIVE_TUPLE,
                *algo,
                MEM,
                THRESHOLD,
                cli.seed,
            );
            row.push(f(res.avg.f1));
        }
        eprintln!("fig13b: {} done", algo.name());
        hc.push(row);
    }

    for t in [&hh, &hc] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

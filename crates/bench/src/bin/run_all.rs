//! Run every experiment binary in sequence with shared flags.
//!
//! `cargo run --release -p cocosketch-bench --bin run_all -- --scale 20`
//! regenerates every table and figure CSV under `results/`.

use std::process::Command;

const EXPERIMENTS: [&str; 17] = [
    "table2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b",
    "fig15c", "fig15d", "fig16", "fig17", "fig18a", "fig18b", "ablation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        eprintln!("\n===== {exp} =====");
        let status = Command::new(bin_dir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("{exp} FAILED ({status})");
            failures.push(exp);
        }
    }
    if failures.is_empty() {
        eprintln!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}

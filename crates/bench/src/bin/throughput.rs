//! Ingestion throughput: single-thread vs. sharded engine, as JSON.
//!
//! Replays a CAIDA-like trace (default ~1M packets, `--scale 27`)
//! through three paths:
//!
//! 1. the scalar per-packet [`Sketch::update`] loop (the pre-engine
//!    baseline),
//! 2. the single-shard engine (batched hot path, no rings),
//! 3. the sharded engine at each requested thread count (real rings
//!    and worker threads; conservation asserted on every run).
//!
//! Output is one JSON document, printed to stdout and written to
//! `<out>/BENCH_throughput.json`. Two throughput fields per thread
//! count:
//!
//! - `measured_mpps` — wall-clock rate of the real run *on this host*
//!   (on a single-core box, threads interleave and this cannot scale);
//! - `mpps` — the DESIGN.md substitution: measured single-shard
//!   capacity x threads. Shards share no state (private sketch,
//!   private ring, no locks), so per-thread capacity is additive on a
//!   machine with enough cores — this is the deployment-shaped number
//!   and what the scaling claim refers to;
//! - `nic_capped_mpps` — `mpps` additionally capped at the modeled
//!   40 GbE line rate (the Figure 15a plateau).
//!
//! The `note` field in the JSON restates the substitution so the file
//! is self-describing.
//!
//! Run with:
//! `cargo run --release -p cocosketch-bench --bin throughput -- [--scale N] [--seed S] [--threads 1,2,4,8] [--out DIR]`

use engine::{EngineConfig, ShardedCocoSketch};
use ovssim::datapath::modeled_mpps;
use ovssim::NicModel;
use sketches::Sketch;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use traffic::{presets, KeyBytes, KeySpec};

struct Args {
    scale: usize,
    seed: u64,
    threads: Vec<usize>,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: 27, // 27M-packet CAIDA preset / 27 = the 1M-packet run
        seed: 0xC0C0,
        threads: vec![1, 2, 4, 8],
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => a.scale = need_value(i).parse().expect("--scale takes an integer"),
            "--seed" => a.seed = need_value(i).parse().expect("--seed takes an integer"),
            "--threads" => {
                a.threads = need_value(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                    .collect();
                assert!(!a.threads.is_empty() && a.threads.iter().all(|&t| t > 0));
            }
            "--out" => a.out_dir = PathBuf::from(need_value(i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: throughput [--scale N] [--seed S] [--threads 1,2,4,8] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(a.scale > 0, "--scale must be positive");
    a
}

const MEM: usize = 512 * 1024;

fn main() {
    let args = parse_args();
    eprintln!(
        "throughput: generating CAIDA-like trace at scale {} ...",
        args.scale
    );
    let trace = presets::caida_like(args.scale, args.seed);
    let packets: Vec<(KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect();
    let total_weight: u64 = packets.iter().map(|&(_, w)| w).sum();
    let nic = NicModel::forty_gbe();

    let config = |threads: usize| EngineConfig {
        threads,
        seed: args.seed,
        ..EngineConfig::default()
    };

    // Baseline 1: the scalar per-packet loop.
    let mut scalar = cocosketch::BasicCocoSketch::with_memory(
        MEM,
        2,
        KeySpec::FIVE_TUPLE.key_bytes(),
        args.seed,
    );
    let start = Instant::now();
    for (key, w) in &packets {
        scalar.update(key, *w);
    }
    let scalar_mpps = packets.len() as f64 / start.elapsed().as_secs_f64().max(1e-12) / 1e6;
    assert_eq!(scalar.total_value(), total_weight);

    // Baseline 2: single shard through the batched hot path — this is
    // the per-thread capacity the scaling model extrapolates from.
    let single = ShardedCocoSketch::with_memory(MEM, config(1)).run(&packets);
    assert_eq!(single.sketch.total_value(), total_weight);
    let per_thread_capacity = single.mpps;
    eprintln!(
        "throughput: scalar {scalar_mpps:.2} Mpps, batched single-shard {per_thread_capacity:.2} Mpps"
    );

    let mut results = String::new();
    for (idx, &threads) in args.threads.iter().enumerate() {
        let run = ShardedCocoSketch::with_memory(MEM, config(threads)).run(&packets);
        assert_eq!(
            run.processed,
            packets.len() as u64,
            "engine dropped packets"
        );
        assert_eq!(
            run.sketch.total_value(),
            total_weight,
            "conservation violated at {threads} threads"
        );
        let scaled = per_thread_capacity * threads as f64;
        let capped = modeled_mpps(per_thread_capacity, threads, &nic);
        eprintln!(
            "throughput: {threads} threads: modeled {scaled:.2} Mpps ({capped:.2} behind 40GbE), measured {:.2} Mpps",
            run.mpps
        );
        if idx > 0 {
            results.push_str(",\n");
        }
        let _ = write!(
            results,
            "    {{\"threads\": {threads}, \"mpps\": {scaled:.4}, \"nic_capped_mpps\": {capped:.4}, \
             \"measured_mpps\": {:.4}}}",
            run.mpps
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"trace_packets\": {},\n  \"seed\": {},\n  \
         \"scalar_mpps\": {scalar_mpps:.4},\n  \"single_shard_batched_mpps\": {per_thread_capacity:.4},\n  \
         \"note\": \"mpps = measured single-shard capacity x threads (shards share no state; \
         the DESIGN.md single-core substitution); nic_capped_mpps applies the modeled 40GbE \
         line rate; measured_mpps is this host's wall-clock rate\",\n  \
         \"results\": [\n{results}\n  ]\n}}\n",
        packets.len(),
        args.seed,
    );
    print!("{json}");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = args.out_dir.join("BENCH_throughput.json");
    std::fs::write(&path, &json).expect("write BENCH_throughput.json");
    eprintln!("throughput: wrote {}", path.display());
}

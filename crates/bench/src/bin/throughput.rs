//! Ingestion throughput: scalar vs. SIMD-batched vs. sharded, as JSON.
//!
//! Replays a CAIDA-like trace (default ~1M packets, `--scale 27`)
//! through three paths:
//!
//! 1. the scalar per-packet [`Sketch::update`] loop (the pre-engine
//!    baseline, and the oracle the batched path is checked against),
//! 2. the single-shard engine (batched hot path: lane-parallel
//!    hashing + prefetched probe, no rings),
//! 3. the sharded engine at each requested thread count (real rings
//!    and worker threads; conservation asserted on every run).
//!
//! Before any timed run the batched path is asserted *bit-identical*
//! to the scalar oracle on the benchmark trace itself — identical
//! records and identical total — so the reported speedup can never
//! come from computing something different.
//!
//! Each timed section runs `--reps` repetitions (default 3); the JSON
//! records per-rep rates, their mean, and their variance, plus the
//! detected CPU features (`simd` feature compiled? AVX2 present? which
//! kernel dispatches?) and, under `--pin`, the shard→core layout.
//!
//! Output is one JSON document, printed to stdout and written to
//! `<out>/BENCH_throughput.json`. Two throughput fields per thread
//! count:
//!
//! - `measured_mpps` — wall-clock rate of the real run *on this host*
//!   (on a single-core box, threads interleave and this cannot scale);
//! - `mpps` — the DESIGN.md substitution: measured single-shard
//!   capacity x threads. Shards share no state (private sketch,
//!   private ring, no locks), so per-thread capacity is additive on a
//!   machine with enough cores — this is the deployment-shaped number
//!   and what the scaling claim refers to;
//! - `nic_capped_mpps` — `mpps` additionally capped at the modeled
//!   40 GbE line rate (the Figure 15a plateau).
//!
//! The `note` field in the JSON restates the substitution so the file
//! is self-describing. `scripts/bench_compare.sh` diffs a fresh run
//! against the committed baseline.
//!
//! Run with:
//! `cargo run --release -p cocosketch-bench --features simd --bin throughput -- [--scale N] [--seed S] [--threads 1,2,4,8] [--reps R] [--pin] [--out DIR]`

use engine::{EngineConfig, ShardedCocoSketch};
use ovssim::datapath::modeled_mpps;
use ovssim::NicModel;
use sketches::Sketch;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use traffic::{presets, KeyBytes, KeySpec};

struct Args {
    scale: usize,
    seed: u64,
    threads: Vec<usize>,
    reps: usize,
    pin: bool,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: 27, // 27M-packet CAIDA preset / 27 = the 1M-packet run
        seed: 0xC0C0,
        threads: vec![1, 2, 4, 8],
        reps: 3,
        pin: false,
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => a.scale = need_value(i).parse().expect("--scale takes an integer"),
            "--seed" => a.seed = need_value(i).parse().expect("--seed takes an integer"),
            "--reps" => a.reps = need_value(i).parse().expect("--reps takes an integer"),
            "--threads" => {
                a.threads = need_value(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                    .collect();
                assert!(!a.threads.is_empty() && a.threads.iter().all(|&t| t > 0));
            }
            "--out" => a.out_dir = PathBuf::from(need_value(i)),
            "--pin" => {
                a.pin = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: throughput [--scale N] [--seed S] [--threads 1,2,4,8] \
                     [--reps R] [--pin] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(a.scale > 0, "--scale must be positive");
    assert!(a.reps > 0, "--reps must be positive");
    a
}

const MEM: usize = 512 * 1024;

/// Mean and (population) variance of a sample.
fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Render a float slice as a JSON array.
fn json_floats(xs: &[f64]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", inner.join(", "))
}

fn main() {
    let args = parse_args();
    eprintln!(
        "throughput: generating CAIDA-like trace at scale {} ...",
        args.scale
    );
    let trace = presets::caida_like(args.scale, args.seed);
    let packets: Vec<(KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect();
    let total_weight: u64 = packets.iter().map(|&(_, w)| w).sum();
    let nic = NicModel::forty_gbe();

    let config = |threads: usize| EngineConfig {
        threads,
        seed: args.seed,
        pin: args.pin,
        ..EngineConfig::default()
    };

    // CPU features: what this binary *can* run and what it *will* run.
    let simd_compiled = cfg!(feature = "simd");
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;
    let kernel = hashkit::simd::backend();
    let cores = engine::available_cores();
    eprintln!(
        "throughput: cpu features: simd_compiled={simd_compiled} avx2={avx2} \
         kernel={kernel} cores={cores} pin={}",
        args.pin
    );

    // Bit-identity gate, before anything is timed: the batched path
    // (SIMD hashing, prefetch, pipelining) must produce the *identical*
    // sketch to the scalar per-packet oracle on this very trace.
    {
        let mk = || {
            cocosketch::BasicCocoSketch::with_memory(
                MEM,
                2,
                KeySpec::FIVE_TUPLE.key_bytes(),
                args.seed,
            )
        };
        let mut oracle = mk();
        let mut batched = mk();
        for (key, w) in &packets {
            oracle.update(key, *w);
        }
        batched.update_batch(&packets);
        let mut a = oracle.records();
        let mut b = batched.records();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "batched path diverged from the scalar oracle");
        assert_eq!(oracle.total_value(), batched.total_value());
        eprintln!(
            "throughput: bit-identity gate passed ({} records, kernel={kernel})",
            a.len()
        );
    }

    // Baseline 1: the scalar per-packet loop.
    let mut scalar_reps = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let mut scalar = cocosketch::BasicCocoSketch::with_memory(
            MEM,
            2,
            KeySpec::FIVE_TUPLE.key_bytes(),
            args.seed,
        );
        let start = Instant::now();
        for (key, w) in &packets {
            scalar.update(key, *w);
        }
        scalar_reps.push(packets.len() as f64 / start.elapsed().as_secs_f64().max(1e-12) / 1e6);
        assert_eq!(scalar.total_value(), total_weight);
    }
    let (scalar_mpps, scalar_var) = mean_var(&scalar_reps);

    // Baseline 2: single shard through the batched hot path — this is
    // the per-thread capacity the scaling model extrapolates from.
    let mut single_reps = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let single = ShardedCocoSketch::with_memory(MEM, config(1)).run(&packets);
        assert_eq!(single.sketch.total_value(), total_weight);
        single_reps.push(single.mpps);
    }
    let (per_thread_capacity, single_var) = mean_var(&single_reps);
    eprintln!(
        "throughput: scalar {scalar_mpps:.2} Mpps, batched single-shard \
         {per_thread_capacity:.2} Mpps ({:.2}x, kernel={kernel})",
        per_thread_capacity / scalar_mpps.max(1e-12)
    );

    let mut results = String::new();
    for (idx, &threads) in args.threads.iter().enumerate() {
        let mut measured_reps = Vec::with_capacity(args.reps);
        let mut last_run = None;
        for _ in 0..args.reps {
            let run = ShardedCocoSketch::with_memory(MEM, config(threads)).run(&packets);
            assert_eq!(
                run.processed,
                packets.len() as u64,
                "engine dropped packets"
            );
            assert_eq!(
                run.sketch.total_value(),
                total_weight,
                "conservation violated at {threads} threads"
            );
            measured_reps.push(run.mpps);
            last_run = Some(run);
        }
        let run = last_run.expect("reps >= 1");
        let (measured_mean, measured_var) = mean_var(&measured_reps);
        // Per-shard Mpps of the last rep: shard packets over the run's
        // wall time (shards drain concurrently, so each shard's rate
        // is its packet share over the same elapsed window).
        let elapsed = run.elapsed.as_secs_f64().max(1e-12);
        let per_shard_mpps: Vec<f64> = run
            .per_shard
            .iter()
            .map(|&p| p as f64 / elapsed / 1e6)
            .collect();
        let pin_layout: Vec<String> = if args.pin {
            (0..threads)
                .map(|s| engine::core_for_shard(s).to_string())
                .collect()
        } else {
            Vec::new()
        };
        let scaled = per_thread_capacity * threads as f64;
        let capped = modeled_mpps(per_thread_capacity, threads, &nic);
        eprintln!(
            "throughput: {threads} threads: modeled {scaled:.2} Mpps ({capped:.2} behind 40GbE), \
             measured {measured_mean:.2} Mpps (var {measured_var:.4})"
        );
        if idx > 0 {
            results.push_str(",\n");
        }
        let _ = write!(
            results,
            "    {{\"threads\": {threads}, \"mpps\": {scaled:.4}, \"nic_capped_mpps\": {capped:.4}, \
             \"measured_mpps\": {measured_mean:.4}, \"measured_mpps_var\": {measured_var:.4}, \
             \"measured_mpps_reps\": {}, \"per_shard_mpps\": {}, \"pin_layout\": [{}]}}",
            json_floats(&measured_reps),
            json_floats(&per_shard_mpps),
            pin_layout.join(", "),
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"trace_packets\": {},\n  \"seed\": {},\n  \
         \"reps\": {},\n  \
         \"cpu\": {{\"simd_compiled\": {simd_compiled}, \"avx2\": {avx2}, \
         \"kernel\": \"{kernel}\", \"cores\": {cores}, \"pin\": {}}},\n  \
         \"scalar_mpps\": {scalar_mpps:.4},\n  \"scalar_mpps_var\": {scalar_var:.4},\n  \
         \"scalar_mpps_reps\": {},\n  \
         \"single_shard_batched_mpps\": {per_thread_capacity:.4},\n  \
         \"single_shard_batched_mpps_var\": {single_var:.4},\n  \
         \"single_shard_batched_mpps_reps\": {},\n  \
         \"batched_over_scalar\": {:.4},\n  \
         \"note\": \"mpps = measured single-shard capacity x threads (shards share no state; \
         the DESIGN.md single-core substitution); nic_capped_mpps applies the modeled 40GbE \
         line rate; measured_mpps is this host's wall-clock rate; batched output is asserted \
         bit-identical to the scalar oracle before timing\",\n  \
         \"results\": [\n{results}\n  ]\n}}\n",
        packets.len(),
        args.seed,
        args.reps,
        args.pin,
        json_floats(&scalar_reps),
        json_floats(&single_reps),
        per_thread_capacity / scalar_mpps.max(1e-12),
    );
    print!("{json}");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = args.out_dir.join("BENCH_throughput.json");
    std::fs::write(&path, &json).expect("write BENCH_throughput.json");
    eprintln!("throughput: wrote {}", path.display());
}

//! Figure 12: 2-d hierarchical heavy hitters — the 33x33 = 1089-key
//! source/destination bit-granularity grid — CocoSketch vs R-HHH.
//!
//! Reproduces 12a (F1) and 12b (ARE) over 5–25MB. R-HHH must split its
//! memory 1089 ways; CocoSketch keeps one sketch on (SrcIP, DstIP).

use cocosketch_bench::{f, Cli, ResultTable};
use hhh::hierarchy::two_d_hierarchy;
use tasks::heavy_hitter::{score_against, threshold_of};
use tasks::{Algo, Pipeline};
use traffic::truth;
use traffic::{presets, KeySpec};

const MEMS_MB: [usize; 5] = [5, 10, 15, 20, 25];
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig12: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    let hierarchy = two_d_hierarchy();

    eprintln!(
        "fig12: computing exact ground truth for {} levels ...",
        hierarchy.len()
    );
    let truths = truth::exact_counts_hierarchy(&trace, &KeySpec::SRC_DST, &hierarchy);
    let threshold = threshold_of(&trace, THRESHOLD);
    eprintln!(
        "fig12: {} hierarchy levels (this sweep is the heavy one)",
        hierarchy.len()
    );

    let cols: Vec<String> = std::iter::once("algo".to_string())
        .chain(MEMS_MB.iter().map(|m| format!("{m}MB")))
        .collect();
    let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut f1 = ResultTable::new("fig12a", "2-d HHH F1 vs memory (1089 keys)", &cols_ref);
    let mut are = ResultTable::new("fig12b", "2-d HHH ARE vs memory (1089 keys)", &cols_ref);

    let mut ours_f1 = vec!["Ours".to_string()];
    let mut ours_are = vec!["Ours".to_string()];
    let mut rhhh_f1 = vec!["RHHH".to_string()];
    let mut rhhh_are = vec!["RHHH".to_string()];
    for mem_mb in MEMS_MB {
        let mem = mem_mb * 1024 * 1024;
        let mut coco = Pipeline::deploy(Algo::OURS, &hierarchy, KeySpec::SRC_DST, mem, cli.seed);
        coco.run(&trace);
        let ours = score_against(&coco.estimates(), &truths, threshold);
        let mut r = Pipeline::deploy_rhhh(&hierarchy, mem, cli.seed);
        r.run(&trace);
        let rhhh = score_against(&r.estimates(), &truths, threshold);
        eprintln!(
            "fig12 {mem_mb}MB: ours F1 {:.4} ARE {:.5} | rhhh F1 {:.4} ARE {:.4}",
            ours.avg.f1, ours.avg.are, rhhh.avg.f1, rhhh.avg.are
        );
        ours_f1.push(f(ours.avg.f1));
        ours_are.push(format!("{:.6}", ours.avg.are));
        rhhh_f1.push(f(rhhh.avg.f1));
        rhhh_are.push(format!("{:.6}", rhhh.avg.are));
    }
    f1.push(ours_f1);
    f1.push(rhhh_f1);
    are.push(ours_are);
    are.push(rhhh_are);

    for t in [&f1, &are] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

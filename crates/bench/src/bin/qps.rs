//! Resident-service query throughput: multi-reader QPS, as JSON.
//!
//! Replays a CAIDA-like trace through a rotating [`engine`] session,
//! publishes the sealed epochs to a [`serve::Service`], and measures
//! the read side the way the serving layer is actually used:
//!
//! 1. **readers only** — 1/2/4/8 reader threads hammering partial-key
//!    queries (the paper's six keys, round-robin) against retained
//!    epochs; aggregate QPS plus per-query p50/p99 latency;
//! 2. **slow client** — each fast fleet re-run with one throttled
//!    reader alongside (query, sleep 5 ms — the in-process stand-in
//!    for a wire client draining responses slowly, well under serve's
//!    io timeout); the fast readers' p99 with vs without it shows
//!    whether a laggard can stall everyone else;
//! 3. **readers + ingest** — the same reader fleet while a full-rate
//!    ingest thread keeps pushing packets, rotating, and publishing a
//!    new epoch per window (evicting under the readers); the ingest
//!    rate is recorded alongside a no-reader baseline of the identical
//!    loop.
//!
//! Before anything is timed, every served answer is asserted
//! **bit-identical** to [`cocosketch::FlowTable::query_all_entries`] on the same
//! epoch — the serving layer may never trade correctness for speed.
//!
//! Like `BENCH_throughput.json`, two numbers are reported per point:
//! `measured_qps` is this host's wall-clock rate (on a single-core box
//! reader threads interleave and aggregate QPS cannot scale), and
//! `modeled_qps` is the DESIGN.md substitution — measured single-reader
//! capacity x readers. Readers share no mutable state (snapshot pin is
//! two atomics on a line written only at publish; the projector cache
//! is insert-only and warm after the gate), so per-reader capacity is
//! additive given enough cores, and the publish cost the ingest thread
//! pays is measured and reported (`publish_us_mean`) rather than
//! assumed away. The `note` field restates all of this so the JSON is
//! self-describing; `scripts/bench_compare.sh` diffs `single_reader_qps`
//! against the committed baseline.
//!
//! Run with:
//! `cargo run --release -p cocosketch-bench --bin qps -- [--scale N] [--seed S] [--readers 1,2,4,8] [--epochs E] [--duration-ms MS] [--out DIR]`

use engine::{EngineConfig, ShardedCocoSketch};
use serve::{Select, Service};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traffic::{presets, KeyBytes, KeySpec};

struct Args {
    scale: usize,
    seed: u64,
    readers: Vec<usize>,
    epochs: usize,
    duration_ms: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: 27, // 27M-packet CAIDA preset / 27 = the 1M-packet run
        seed: 0xC0C0,
        readers: vec![1, 2, 4, 8],
        epochs: 4,
        duration_ms: 400,
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => a.scale = need_value(i).parse().expect("--scale takes an integer"),
            "--seed" => a.seed = need_value(i).parse().expect("--seed takes an integer"),
            "--epochs" => a.epochs = need_value(i).parse().expect("--epochs takes an integer"),
            "--duration-ms" => {
                a.duration_ms = need_value(i)
                    .parse()
                    .expect("--duration-ms takes an integer")
            }
            "--readers" => {
                a.readers = need_value(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--readers takes e.g. 1,2,4,8"))
                    .collect();
                assert!(!a.readers.is_empty() && a.readers.iter().all(|&r| r > 0));
            }
            "--out" => a.out_dir = PathBuf::from(need_value(i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: qps [--scale N] [--seed S] [--readers 1,2,4,8] [--epochs E] \
                     [--duration-ms MS] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(a.scale > 0, "--scale must be positive");
    assert!(a.epochs > 0, "--epochs must be positive");
    assert!(a.duration_ms > 0, "--duration-ms must be positive");
    a
}

const MEM: usize = 512 * 1024;

/// `p`-th percentile of an already-sorted nanosecond sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One reader-fleet measurement: aggregate QPS (sum of per-thread
/// rates over each thread's own wall time) and the merged per-query
/// latency distribution.
struct ReaderStats {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    queries: u64,
}

/// Run `readers` full-rate query threads against `svc` for
/// ~`duration`, optionally joined by one throttled reader that sleeps
/// `slow_sleep` between queries (a stand-in for a wire client that
/// drains its responses slowly). Each fast thread cycles the paper's
/// six keys and alternates latest/by-id selection over `ids` (empty
/// `ids` → latest only, for runs where eviction is racing the
/// readers). Returns fast-reader-only stats plus the slow reader's
/// query count (0 when no slow reader ran).
fn run_reader_fleet(
    svc: &Arc<Service>,
    readers: usize,
    slow_sleep: Option<Duration>,
    duration: Duration,
    ids: &[u64],
) -> (ReaderStats, u64) {
    let stop = AtomicBool::new(false);
    let specs = KeySpec::PAPER_SIX;
    let (qps_sum, mut latencies, slow_queries) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let svc = Arc::clone(svc);
                let stop = &stop;
                scope.spawn(move || {
                    let mut lats: Vec<u64> = Vec::with_capacity(4096);
                    let mut i = r; // desync the spec cycle across threads
                    let started = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        let spec = specs[i % specs.len()];
                        let sel = if ids.is_empty() || i % 2 == 0 {
                            Select::Latest
                        } else {
                            Select::Id(ids[(i / 2) % ids.len()])
                        };
                        let t = Instant::now();
                        if let Some(ans) = svc.partial(sel, &spec) {
                            std::hint::black_box(ans.entries.len());
                        }
                        lats.push(t.elapsed().as_nanos() as u64);
                        i += 1;
                    }
                    let elapsed = started.elapsed().as_secs_f64().max(1e-12);
                    (lats.len() as f64 / elapsed, lats)
                })
            })
            .collect();
        let slow = slow_sleep.map(|sleep| {
            let svc = Arc::clone(svc);
            let stop = &stop;
            scope.spawn(move || {
                let mut n = 0u64;
                let mut i = 1usize; // desync from fast thread 0's cycle
                while !stop.load(Ordering::Relaxed) {
                    let spec = specs[i % specs.len()];
                    let sel = if ids.is_empty() {
                        Select::Latest
                    } else {
                        Select::Id(ids[i % ids.len()])
                    };
                    if let Some(ans) = svc.partial(sel, &spec) {
                        std::hint::black_box(ans.entries.len());
                    }
                    n += 1;
                    i += 1;
                    std::thread::sleep(sleep);
                }
                n
            })
        });
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        let mut qps_sum = 0.0;
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            let (qps, lats) = h.join().expect("reader thread");
            qps_sum += qps;
            all.extend(lats);
        }
        let slow_queries = slow.map_or(0, |h| h.join().expect("slow reader thread"));
        (qps_sum, all, slow_queries)
    });
    latencies.sort_unstable();
    (
        ReaderStats {
            qps: qps_sum,
            p50_us: percentile(&latencies, 0.50) as f64 / 1e3,
            p99_us: percentile(&latencies, 0.99) as f64 / 1e3,
            queries: latencies.len() as u64,
        },
        slow_queries,
    )
}

/// Fast readers only — the original fleet shape.
fn run_readers(svc: &Arc<Service>, readers: usize, duration: Duration, ids: &[u64]) -> ReaderStats {
    run_reader_fleet(svc, readers, None, duration, ids).0
}

/// The with-ingest ingest loop: keep pushing the trace (wrapping),
/// rotate + publish every `window` packets, until `stop`. Returns
/// (packets pushed, publishes, total publish nanoseconds).
fn ingest_loop(
    engine: &ShardedCocoSketch,
    publisher: &mut serve::Publisher,
    packets: &[(KeyBytes, u64)],
    window: usize,
    full: KeySpec,
    stop: &AtomicBool,
) -> (u64, u64, u64) {
    let mut session = engine.session();
    let mut pushed = 0u64;
    let mut publishes = 0u64;
    let mut publish_ns = 0u64;
    'outer: loop {
        for chunk in packets.chunks(window) {
            for (key, w) in chunk {
                session.push(*key, *w);
            }
            pushed += chunk.len() as u64;
            let sealed = session.rotate_collect().to_epoch(full);
            let t = Instant::now();
            publisher.publish(Arc::new(sealed));
            publish_ns += t.elapsed().as_nanos() as u64;
            publishes += 1;
            if stop.load(Ordering::Relaxed) {
                break 'outer;
            }
        }
    }
    (pushed, publishes, publish_ns)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "qps: generating CAIDA-like trace at scale {} ...",
        args.scale
    );
    let full = KeySpec::FIVE_TUPLE;
    let trace = presets::caida_like(args.scale, args.seed);
    let packets: Vec<(KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (full.project(&p.flow), u64::from(p.weight)))
        .collect();
    let cores = engine::available_cores();
    let duration = Duration::from_millis(args.duration_ms);
    let config = EngineConfig {
        threads: 1,
        seed: args.seed,
        ..EngineConfig::default()
    };

    // Seal the trace into `epochs` epochs through the real rotating
    // session, then publish them all to the service under test.
    let engine = ShardedCocoSketch::with_memory(MEM, config);
    let window = packets.len().div_ceil(args.epochs).max(1);
    let mut session = engine.session();
    let mut sealed: Vec<Arc<cocosketch::Epoch>> = Vec::with_capacity(args.epochs);
    for chunk in packets.chunks(window) {
        for (key, w) in chunk {
            session.push(*key, *w);
        }
        sealed.push(Arc::new(session.rotate_collect().to_epoch(full)));
    }
    drop(session);
    let (mut publisher, svc) = serve::service(usize::MAX);
    for e in &sealed {
        publisher.publish(Arc::clone(e));
    }
    let rows_per_epoch: usize =
        sealed.iter().map(|e| e.primary().len()).sum::<usize>() / sealed.len();
    eprintln!(
        "qps: {} epochs of ~{} packets, ~{rows_per_epoch} rows each, cores={cores}",
        sealed.len(),
        window
    );

    // Bit-identity gate, before anything is timed: every served answer
    // must equal query_all_entries on the same epoch's table. This also
    // warms the shared projector cache, like production steady state.
    for e in &sealed {
        for spec in KeySpec::PAPER_SIX {
            let served = svc
                .partial(Select::Id(e.id), &spec)
                .expect("gate: epoch retained");
            let direct = e.primary().query_all_entries(&[spec]);
            assert_eq!(
                served.entries, direct[0],
                "served answer diverged from query_all_entries (epoch {}, {spec:?})",
                e.id
            );
        }
    }
    eprintln!(
        "qps: bit-identity gate passed ({} epochs x {} specs)",
        sealed.len(),
        KeySpec::PAPER_SIX.len()
    );

    let ids: Vec<u64> = sealed.iter().map(|e| e.id).collect();

    // Section 1: readers only.
    let mut no_ingest: Vec<(usize, ReaderStats)> = Vec::new();
    for &r in &args.readers {
        let stats = run_readers(&svc, r, duration, &ids);
        eprintln!(
            "qps: {r} reader{}: {:.0} QPS measured, p50 {:.1} us, p99 {:.1} us ({} queries)",
            if r == 1 { "" } else { "s" },
            stats.qps,
            stats.p50_us,
            stats.p99_us,
            stats.queries
        );
        no_ingest.push((r, stats));
    }
    let single_reader_qps = no_ingest
        .iter()
        .find(|(r, _)| *r == 1)
        .map(|(_, s)| s.qps)
        .unwrap_or_else(|| no_ingest[0].1.qps / no_ingest[0].0 as f64);

    // Section 1b: slow-client interference. One throttled reader —
    // querying, then sleeping SLOW_SLEEP, like a wire client that
    // drains its responses slowly (well under serve's 5 s io timeout,
    // so the wire layer would never disconnect it) — joins each fast
    // fleet, and the fast readers' p99 is compared against the
    // section-1 run without it. Readers share no mutable state and
    // the slow reader holds no pin across its sleep, so with a spare
    // core the modeled fast-reader p99 is the without-slow-client
    // number; the measured column additionally includes this host's
    // scheduler interleaving (dominant on a single-core box).
    const SLOW_SLEEP: Duration = Duration::from_millis(5);
    let mut slow_client: Vec<(usize, f64, ReaderStats, u64)> = Vec::new();
    for (r, base) in &no_ingest {
        let (stats, slow_q) = run_reader_fleet(&svc, *r, Some(SLOW_SLEEP), duration, &ids);
        eprintln!(
            "qps: {r} fast reader{} + 1 slow: p99 {:.1} us (vs {:.1} us without; \
             slow client made {slow_q} queries)",
            if *r == 1 { "" } else { "s" },
            stats.p99_us,
            base.p99_us
        );
        slow_client.push((*r, base.p99_us, stats, slow_q));
    }

    // Section 2: ingest baseline — the identical rotate+publish loop
    // with no readers attached (publish cost included, so the
    // with-readers comparison isolates reader interference only).
    let ingest_engine = ShardedCocoSketch::with_memory(MEM, config);
    let (mut pub0, _svc0) = serve::service(8);
    let stop = AtomicBool::new(false);
    let baseline = std::thread::scope(|scope| {
        let h = scope.spawn(|| {
            let started = Instant::now();
            let out = ingest_loop(&ingest_engine, &mut pub0, &packets, window, full, &stop);
            (out, started.elapsed())
        });
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        h.join().expect("ingest thread")
    });
    let ((base_pushed, base_pubs, base_pub_ns), base_elapsed) = baseline;
    let ingest_baseline_mpps = base_pushed as f64 / base_elapsed.as_secs_f64().max(1e-12) / 1e6;
    eprintln!(
        "qps: ingest baseline {ingest_baseline_mpps:.2} Mpps ({base_pubs} publishes, \
         {:.1} us each)",
        base_pub_ns as f64 / base_pubs.max(1) as f64 / 1e3
    );

    // Section 3: readers + ingest, sharing one service; the publisher
    // rotates and evicts (keep 8) under the running readers.
    let mut with_ingest: Vec<(usize, ReaderStats, f64, f64)> = Vec::new();
    for &r in &args.readers {
        let ingest_engine = ShardedCocoSketch::with_memory(MEM, config);
        let (mut publisher, live) = serve::service(8);
        // One warm-up epoch so readers never see an empty catalog.
        let mut warm = ingest_engine.session();
        for (key, w) in &packets[..window.min(packets.len())] {
            warm.push(*key, *w);
        }
        publisher.publish(Arc::new(warm.rotate_collect().to_epoch(full)));
        drop(warm);
        let stop = AtomicBool::new(false);
        let (stats, (pushed, pubs, pub_ns), elapsed) = std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                let started = Instant::now();
                // Continue the warm-up session's id sequence: a fresh
                // session restarts ids at 0, so replay through a new
                // engine but publish under the next dense ids.
                let mut session = ingest_engine.session();
                let _ = session.rotate_collect(); // consume id 0 (already published)
                let mut pushed = 0u64;
                let mut publishes = 0u64;
                let mut publish_ns = 0u64;
                'outer: loop {
                    for chunk in packets.chunks(window) {
                        for (key, w) in chunk {
                            session.push(*key, *w);
                        }
                        pushed += chunk.len() as u64;
                        let sealed = session.rotate_collect().to_epoch(full);
                        let t = Instant::now();
                        publisher.publish(Arc::new(sealed));
                        publish_ns += t.elapsed().as_nanos() as u64;
                        publishes += 1;
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                    }
                }
                ((pushed, publishes, publish_ns), started.elapsed())
            });
            let stats = run_readers(&live, r, duration, &[]);
            stop.store(true, Ordering::Relaxed);
            let (counts, elapsed) = ingest.join().expect("ingest thread");
            (stats, counts, elapsed)
        });
        let mpps = pushed as f64 / elapsed.as_secs_f64().max(1e-12) / 1e6;
        let pub_us = pub_ns as f64 / pubs.max(1) as f64 / 1e3;
        eprintln!(
            "qps: {r} reader{} + ingest: {:.0} QPS, ingest {mpps:.2} Mpps, \
             publish {pub_us:.1} us ({pubs} epochs)",
            if r == 1 { "" } else { "s" },
            stats.qps
        );
        with_ingest.push((r, stats, mpps, pub_us));
    }

    // Modeled aggregates: the single-core substitution, same contract
    // as BENCH_throughput.json. Readers share no mutable state, so
    // modeled_qps = single-reader capacity x readers; a dedicated
    // ingest core pays only the measured publish cost (already in the
    // baseline), so the modeled concurrent ingest rate is the no-reader
    // baseline itself.
    let last = no_ingest.last().expect("at least one reader count");
    let qps_scaling_measured = last.1.qps / single_reader_qps.max(1e-12);
    let qps_scaling_modeled = *args.readers.last().expect("nonempty") as f64;
    let worst_with_ingest_mpps = with_ingest
        .iter()
        .map(|&(_, _, mpps, _)| mpps)
        .fold(f64::INFINITY, f64::min);
    let ingest_ratio_measured = worst_with_ingest_mpps / ingest_baseline_mpps.max(1e-12);

    let mut rows_no = String::new();
    for (idx, (r, s)) in no_ingest.iter().enumerate() {
        if idx > 0 {
            rows_no.push_str(",\n");
        }
        let _ = write!(
            rows_no,
            "    {{\"readers\": {r}, \"measured_qps\": {:.1}, \"modeled_qps\": {:.1}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"queries\": {}}}",
            s.qps,
            single_reader_qps * *r as f64,
            s.p50_us,
            s.p99_us,
            s.queries
        );
    }
    let mut rows_slow = String::new();
    for (idx, (r, base_p99, s, slow_q)) in slow_client.iter().enumerate() {
        if idx > 0 {
            rows_slow.push_str(",\n");
        }
        let _ = write!(
            rows_slow,
            "    {{\"fast_readers\": {r}, \"measured_qps\": {:.1}, \
             \"p99_us_without_slow_client\": {base_p99:.2}, \
             \"measured_p99_us_with_slow_client\": {:.2}, \
             \"modeled_p99_us_with_slow_client\": {base_p99:.2}, \
             \"queries\": {}, \"slow_client_queries\": {slow_q}}}",
            s.qps, s.p99_us, s.queries
        );
    }
    let mut rows_with = String::new();
    for (idx, (r, s, mpps, pub_us)) in with_ingest.iter().enumerate() {
        if idx > 0 {
            rows_with.push_str(",\n");
        }
        let _ = write!(
            rows_with,
            "    {{\"readers\": {r}, \"measured_qps\": {:.1}, \"modeled_qps\": {:.1}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"queries\": {}, \
             \"measured_ingest_mpps\": {mpps:.4}, \"modeled_ingest_mpps\": {ingest_baseline_mpps:.4}, \
             \"publish_us_mean\": {pub_us:.2}}}",
            s.qps,
            single_reader_qps * *r as f64,
            s.p50_us,
            s.p99_us,
            s.queries
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"qps\",\n  \"trace_packets\": {},\n  \"seed\": {},\n  \
         \"epochs\": {},\n  \"rows_per_epoch\": {rows_per_epoch},\n  \
         \"duration_ms\": {},\n  \"cpu\": {{\"cores\": {cores}}},\n  \
         \"single_reader_qps\": {single_reader_qps:.1},\n  \
         \"qps_scaling_modeled\": {qps_scaling_modeled:.3},\n  \
         \"qps_scaling_measured\": {qps_scaling_measured:.3},\n  \
         \"ingest_baseline_mpps\": {ingest_baseline_mpps:.4},\n  \
         \"ingest_with_readers_ratio_modeled\": 1.000,\n  \
         \"ingest_with_readers_ratio_measured\": {ingest_ratio_measured:.3},\n  \
         \"note\": \"every served answer asserted bit-identical to query_all_entries before timing; \
         measured_qps is this host's wall-clock aggregate (sum of per-thread rates; on a \
         single-core box readers interleave and cannot scale), modeled_qps is the DESIGN.md \
         substitution: measured single-reader capacity x readers, valid because readers share no \
         mutable state (snapshot pin = two atomics, projector cache insert-only and warm); \
         modeled_ingest_mpps assumes a dedicated ingest core, whose only cross-thread cost is the \
         measured publish flip (publish_us_mean, already included in the baseline loop); \
         slow_client adds one throttled reader (query, sleep {slow_ms} ms) per fast fleet — \
         readers share no mutable state and the slow reader holds no pin across its sleep, so \
         modeled_p99_us_with_slow_client (a spare core for the mostly-idle thread) equals the \
         without-slow-client p99, while the measured column includes this host's scheduler \
         interleaving, dominant on a single-core box\",\n  \
         \"no_ingest\": [\n{rows_no}\n  ],\n  \
         \"slow_client\": {{\"slow_sleep_ms\": {slow_ms}, \"rows\": [\n{rows_slow}\n  ]}},\n  \
         \"with_ingest\": [\n{rows_with}\n  ]\n}}\n",
        packets.len(),
        args.seed,
        sealed.len(),
        args.duration_ms,
        slow_ms = SLOW_SLEEP.as_millis(),
    );
    print!("{json}");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = args.out_dir.join("BENCH_qps.json");
    std::fs::write(&path, &json).expect("write BENCH_qps.json");
    eprintln!("qps: wrote {}", path.display());
}

//! Figure 9: heavy-hitter detection under different memory budgets
//! (6 partial keys, CAIDA-like trace, threshold 1e-4).
//!
//! Reproduces 9a (F1) and 9b (ARE) over 200–600KB. CocoSketch reaches
//! >90% F1 by 300KB while split-budget baselines trail.

use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{heavy_hitter, Algo};
use traffic::{presets, KeySpec};

const MEMS_KB: [usize; 5] = [200, 300, 400, 500, 600];
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig9: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);

    let mut algos = vec![Algo::OURS];
    algos.extend(Algo::BASELINES);

    let cols: Vec<String> = std::iter::once("algo".to_string())
        .chain(MEMS_KB.iter().map(|m| format!("{m}KB")))
        .collect();
    let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut f1 = ResultTable::new("fig9a", "HH F1 vs memory (6 keys)", &cols_ref);
    let mut are = ResultTable::new("fig9b", "HH ARE vs memory (6 keys)", &cols_ref);

    for algo in &algos {
        let mut f_row = vec![algo.name().to_string()];
        let mut a_row = vec![algo.name().to_string()];
        for mem_kb in MEMS_KB {
            let res = heavy_hitter::run(
                &trace,
                &KeySpec::PAPER_SIX,
                KeySpec::FIVE_TUPLE,
                *algo,
                mem_kb * 1024,
                THRESHOLD,
                cli.seed,
            );
            f_row.push(f(res.avg.f1));
            a_row.push(f(res.avg.are));
            eprintln!("fig9: {} {mem_kb}KB: F1 {:.3}", algo.name(), res.avg.f1);
        }
        f1.push(f_row);
        are.push(a_row);
    }

    for t in [&f1, &are] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

//! Rotation cost: what continuous windowed measurement adds over a
//! one-shot run, as JSON.
//!
//! Replays a CAIDA-like trace (default ~1M packets, `--scale 27`)
//! through the sharded [`engine::EngineSession`] twice per thread
//! count:
//!
//! 1. **rotation off** — one epoch, sealed once at `finish()` (the
//!    one-shot ingest baseline, same rings and workers);
//! 2. **rotation on** — an epoch sealed every `--window` packets with
//!    the overlapped protocol: after each [`EngineSession::rotate`] the
//!    next window's packets are pushed *before* the previous epoch is
//!    collected, so shard merging runs on the collector thread while
//!    the workers keep ingesting.
//!
//! Three costs are reported:
//!
//! - `mpps_rotation_{off,on}` — wall-clock ingest throughput of the
//!   two runs (their ratio is the rotation tax);
//! - `seal_pause_us_{mean,max}` — the producer-visible pause of
//!   `rotate()` itself: pushing one in-band seal marker per ring.
//!   Ingestion never stops for the epoch boundary, so this should sit
//!   at microseconds regardless of window size;
//! - `collect_us_mean` — off-hot-path merge time per sealed epoch
//!   (collector thread; overlapped with ingestion).
//!
//! Every run asserts exact conservation: epoch packet/weight totals
//! must sum to the stream's.
//!
//! Run with:
//! `cargo run --release -p cocosketch-bench --bin rotation -- [--scale N] [--seed S] [--threads 1,2,4] [--window N] [--out DIR]`

use engine::{EngineConfig, EngineSession, EpochRun, PendingEpoch, ShardedCocoSketch};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use traffic::{presets, KeyBytes, KeySpec};

struct Args {
    scale: usize,
    seed: u64,
    threads: Vec<usize>,
    window: usize,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: 27, // 27M-packet CAIDA preset / 27 = the 1M-packet run
        seed: 0xC0C0,
        threads: vec![1, 2, 4],
        window: 100_000,
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => a.scale = need_value(i).parse().expect("--scale takes an integer"),
            "--seed" => a.seed = need_value(i).parse().expect("--seed takes an integer"),
            "--window" => a.window = need_value(i).parse().expect("--window takes an integer"),
            "--threads" => {
                a.threads = need_value(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4"))
                    .collect();
                assert!(!a.threads.is_empty() && a.threads.iter().all(|&t| t > 0));
            }
            "--out" => a.out_dir = PathBuf::from(need_value(i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: rotation [--scale N] [--seed S] [--threads 1,2,4] [--window N] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(a.scale > 0, "--scale must be positive");
    assert!(a.window > 0, "--window must be positive");
    a
}

const MEM: usize = 512 * 1024;

fn session(threads: usize, seed: u64) -> EngineSession<cocosketch::BasicCocoSketch> {
    ShardedCocoSketch::with_memory(
        MEM,
        EngineConfig {
            threads,
            seed,
            ..EngineConfig::default()
        },
    )
    .session()
}

fn assert_conserved(epochs: &[EpochRun], packets: usize, weight: u64) {
    let (p, w) = epochs
        .iter()
        .fold((0u64, 0u64), |(p, w), e| (p + e.packets, w + e.weight));
    assert_eq!(p, packets as u64, "rotation lost packets");
    assert_eq!(w, weight, "rotation lost weight");
}

struct RotationRun {
    elapsed: Duration,
    seal_pauses: Vec<Duration>,
    collects: Vec<Duration>,
    epochs: Vec<EpochRun>,
}

/// The overlapped rotation loop: push window k, collect epoch k-1
/// (merging while the workers chew on window k), then seal window k.
fn run_with_rotation(
    threads: usize,
    seed: u64,
    packets: &[(KeyBytes, u64)],
    window: usize,
) -> RotationRun {
    let mut s = session(threads, seed);
    let mut pending: Option<PendingEpoch> = None;
    let mut seal_pauses = Vec::new();
    let mut collects = Vec::new();
    let mut epochs = Vec::new();
    let started = Instant::now();
    for chunk in packets.chunks(window) {
        s.push_batch(chunk);
        if let Some(p) = pending.take() {
            let t = Instant::now();
            epochs.push(s.collect(p));
            collects.push(t.elapsed());
        }
        let t = Instant::now();
        pending = Some(s.rotate());
        seal_pauses.push(t.elapsed());
    }
    if let Some(p) = pending.take() {
        let t = Instant::now();
        epochs.push(s.collect(p));
        collects.push(t.elapsed());
    }
    // The final epoch is empty (every chunk was sealed); finishing it
    // keeps the accounting total.
    epochs.push(s.finish());
    let elapsed = started.elapsed();
    RotationRun {
        elapsed,
        seal_pauses,
        collects,
        epochs,
    }
}

fn mean_us(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() / samples.len() as f64 * 1e6
}

fn main() {
    let args = parse_args();
    eprintln!(
        "rotation: generating CAIDA-like trace at scale {} ...",
        args.scale
    );
    let trace = presets::caida_like(args.scale, args.seed);
    let packets: Vec<(KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (KeySpec::FIVE_TUPLE.project(&p.flow), u64::from(p.weight)))
        .collect();
    let total_weight: u64 = packets.iter().map(|&(_, w)| w).sum();

    let mut results = String::new();
    for (idx, &threads) in args.threads.iter().enumerate() {
        // Rotation off: same session machinery, one epoch at finish().
        let mut s = session(threads, args.seed);
        let started = Instant::now();
        s.push_batch(&packets);
        let single = s.finish();
        let off_elapsed = started.elapsed();
        assert_conserved(std::slice::from_ref(&single), packets.len(), total_weight);
        let mpps_off = packets.len() as f64 / off_elapsed.as_secs_f64().max(1e-12) / 1e6;

        // Rotation on: seal every `window` packets, overlapped.
        let run = run_with_rotation(threads, args.seed, &packets, args.window);
        assert_conserved(&run.epochs, packets.len(), total_weight);
        let mpps_on = packets.len() as f64 / run.elapsed.as_secs_f64().max(1e-12) / 1e6;
        let rotations = run.seal_pauses.len();
        let seal_mean = mean_us(&run.seal_pauses);
        let seal_max = run
            .seal_pauses
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0f64, f64::max)
            * 1e6;
        let collect_mean = mean_us(&run.collects);
        eprintln!(
            "rotation: {threads} threads: off {mpps_off:.2} Mpps, on {mpps_on:.2} Mpps \
             ({rotations} rotations; seal pause mean {seal_mean:.1}us max {seal_max:.1}us, \
             collect mean {collect_mean:.1}us)"
        );
        if idx > 0 {
            results.push_str(",\n");
        }
        let _ = write!(
            results,
            "    {{\"threads\": {threads}, \"mpps_rotation_off\": {mpps_off:.4}, \
             \"mpps_rotation_on\": {mpps_on:.4}, \"rotations\": {rotations}, \
             \"seal_pause_us_mean\": {seal_mean:.2}, \"seal_pause_us_max\": {seal_max:.2}, \
             \"collect_us_mean\": {collect_mean:.2}}}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"rotation\",\n  \"trace_packets\": {},\n  \"seed\": {},\n  \
         \"window_packets\": {},\n  \
         \"note\": \"seal_pause is the producer-visible cost of rotate() (one in-band marker \
         per ring; ingestion never stops); collect is the off-hot-path shard merge, overlapped \
         with the next window's ingestion; conservation asserted on every run\",\n  \
         \"results\": [\n{results}\n  ]\n}}\n",
        packets.len(),
        args.seed,
        args.window,
    );
    print!("{json}");
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = args.out_dir.join("BENCH_rotation.json");
    std::fs::write(&path, &json).expect("write BENCH_rotation.json");
    eprintln!("rotation: wrote {}", path.display());
}

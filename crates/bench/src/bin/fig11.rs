//! Figure 11: 1-d hierarchical heavy hitters — the 33-level source-IP
//! bit hierarchy — CocoSketch vs R-HHH under different memory budgets.
//!
//! Reproduces 11a (F1) and 11b (ARE) over 0.5–2.5MB. The paper's
//! headline: CocoSketch exceeds 99.5% F1 at 500KB while R-HHH stays
//! around 50% even at 2.5MB, with an ARE gap of ~3 orders of magnitude.

use cocosketch_bench::{f, Cli, ResultTable};
use hhh::hierarchy::src_hierarchy;
use tasks::heavy_hitter::{score_against, threshold_of};
use tasks::{Algo, Pipeline};
use traffic::truth;
use traffic::{presets, KeySpec};

const MEMS_KB: [usize; 5] = [500, 1000, 1500, 2000, 2500];
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig11: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    let hierarchy = src_hierarchy();

    eprintln!(
        "fig11: computing exact ground truth for {} levels ...",
        hierarchy.len()
    );
    let truths = truth::exact_counts_hierarchy(&trace, &KeySpec::SRC_IP, &hierarchy);
    let threshold = threshold_of(&trace, THRESHOLD);

    let cols: Vec<String> = std::iter::once("algo".to_string())
        .chain(MEMS_KB.iter().map(|m| format!("{m}KB")))
        .collect();
    let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut f1 = ResultTable::new("fig11a", "1-d HHH F1 vs memory (33 keys)", &cols_ref);
    let mut are = ResultTable::new("fig11b", "1-d HHH ARE vs memory (33 keys)", &cols_ref);

    let mut ours_f1 = vec!["Ours".to_string()];
    let mut ours_are = vec!["Ours".to_string()];
    let mut rhhh_f1 = vec!["RHHH".to_string()];
    let mut rhhh_are = vec!["RHHH".to_string()];
    for mem_kb in MEMS_KB {
        let mem = mem_kb * 1024;
        let mut coco = Pipeline::deploy(Algo::OURS, &hierarchy, KeySpec::SRC_IP, mem, cli.seed);
        coco.run(&trace);
        let ours = score_against(&coco.estimates(), &truths, threshold);
        let mut r = Pipeline::deploy_rhhh(&hierarchy, mem, cli.seed);
        r.run(&trace);
        let rhhh = score_against(&r.estimates(), &truths, threshold);
        eprintln!(
            "fig11 {mem_kb}KB: ours F1 {:.4} ARE {:.5} | rhhh F1 {:.4} ARE {:.4}",
            ours.avg.f1, ours.avg.are, rhhh.avg.f1, rhhh.avg.are
        );
        ours_f1.push(f(ours.avg.f1));
        ours_are.push(format!("{:.6}", ours.avg.are));
        rhhh_f1.push(f(rhhh.avg.f1));
        rhhh_are.push(format!("{:.6}", rhhh.avg.are));
    }
    f1.push(ours_f1);
    f1.push(rhhh_f1);
    are.push(ours_are);
    are.push(rhhh_are);

    for t in [&f1, &are] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

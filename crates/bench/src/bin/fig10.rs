//! Figure 10: heavy-change detection under different numbers of
//! partial keys (two adjacent windows, 500KB, threshold 1e-4).
//!
//! Reproduces 10a (recall) and 10b (precision) for the paper's
//! heavy-change comparison set (Ours, C-Heap, CM-Heap, Elastic,
//! UnivMon).

use cocosketch_bench::{f, Cli, ResultTable};
use tasks::{heavy_change, Algo};
use traffic::{gen, presets, KeySpec};

const MEM: usize = 500 * 1024;
const THRESHOLD: f64 = 1e-4;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig10: generating adjacent CAIDA-like windows at scale {} ...",
        cli.scale
    );
    let cfg = presets::caida_config(cli.scale, cli.seed);
    let (w1, w2) = gen::heavy_change_pair(&cfg, 400, 0.5);

    let algos = [
        Algo::OURS,
        Algo::CountHeap,
        Algo::CmHeap,
        Algo::Elastic,
        Algo::UnivMon,
    ];

    let cols = ["algo", "1", "2", "3", "4", "5", "6"];
    let mut recall = ResultTable::new("fig10a", "heavy-change recall vs number of keys", &cols);
    let mut precision =
        ResultTable::new("fig10b", "heavy-change precision vs number of keys", &cols);

    for algo in &algos {
        let mut r_row = vec![algo.name().to_string()];
        let mut p_row = vec![algo.name().to_string()];
        for k in 1..=6 {
            let res = heavy_change::run(
                &w1,
                &w2,
                &KeySpec::PAPER_SIX[..k],
                KeySpec::FIVE_TUPLE,
                *algo,
                MEM,
                THRESHOLD,
                cli.seed,
            );
            r_row.push(f(res.avg.recall));
            p_row.push(f(res.avg.precision));
            eprintln!("fig10: {} k={k}: F1 {:.3}", algo.name(), res.avg.f1);
        }
        recall.push(r_row);
        precision.push(p_row);
    }

    for t in [&recall, &precision] {
        t.emit(&cli.out_dir).expect("write results");
    }
}

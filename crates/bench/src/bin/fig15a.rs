//! Figure 15a: OVS datapath throughput vs measurement threads, with
//! and without CocoSketch attached.
//!
//! The real ring-buffer datapath ([`ovssim`]) is exercised at each
//! thread count for correctness (every packet processed, totals
//! conserved); the *throughput* column applies the Figure 15a model —
//! measured per-thread capacity x threads, capped at the 40GbE line
//! rate — because a single host core cannot exhibit thread scaling
//! (see DESIGN.md's substitution table).

use cocosketch_bench::{f, Cli, ResultTable};
use ovssim::{datapath, NicModel, OvsConfig, OvsSim};
use tasks::{timing, Algo, Pipeline};
use traffic::{presets, KeySpec};

const MEM: usize = 512 * 1024;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "fig15a: generating CAIDA-like trace at scale {} ...",
        cli.scale
    );
    let trace = presets::caida_like(cli.scale, cli.seed);
    let nic = NicModel::forty_gbe();

    // Per-thread capacity with the sketch: the single-threaded update
    // loop rate. Without the sketch: the datapath only parses and
    // forwards; model its per-thread capacity as the ring + projection
    // path, measured by a no-op single-key pipeline of negligible size.
    let with_sketch = timing::measure_throughput(
        || {
            Pipeline::deploy(
                Algo::OURS,
                &[KeySpec::FIVE_TUPLE],
                KeySpec::FIVE_TUPLE,
                MEM,
                cli.seed,
            )
        },
        &trace,
        3,
    )
    .mpps;
    // OVS's own datapath forwards at a small multiple of the sketch
    // path (the paper reports < 1.8% CPU overhead from the sketch at
    // line rate, i.e. forwarding itself is the cost): model the bare
    // datapath as the same loop minus the sketch update — measured via
    // a minimal 1-bucket sketch, which reduces the loop to hash+touch.
    let without_sketch = timing::measure_throughput(
        || {
            Pipeline::deploy(
                Algo::OURS,
                &[KeySpec::FIVE_TUPLE],
                KeySpec::FIVE_TUPLE,
                64,
                cli.seed,
            )
        },
        &trace,
        3,
    )
    .mpps;

    let mut table = ResultTable::new(
        "fig15a",
        "OVS throughput (Mpps) vs threads (modeled from measured per-thread capacity)",
        &["threads", "OVS w/o Ours", "OVS w/ Ours", "verified packets"],
    );
    for threads in 1..=4usize {
        // Exercise the real datapath for correctness at this width.
        let run = OvsSim::new(OvsConfig {
            threads,
            mem_bytes: MEM,
            ..OvsConfig::default()
        })
        .run(&trace);
        assert_eq!(run.processed, trace.len() as u64, "datapath lost packets");
        let total: u64 = run.merged.values().sum();
        assert_eq!(total, trace.total_weight(), "merge must conserve weight");

        let with_mpps = datapath::modeled_mpps(with_sketch, threads, &nic);
        let without_mpps = datapath::modeled_mpps(without_sketch, threads, &nic);
        eprintln!(
            "fig15a: {threads} threads: w/o {without_mpps:.1} Mpps, w/ {with_mpps:.1} Mpps (real run {:.2} Mpps)",
            run.measured_mpps
        );
        table.push(vec![
            threads.to_string(),
            f(without_mpps),
            f(with_mpps),
            run.processed.to_string(),
        ]);
    }
    table.emit(&cli.out_dir).expect("write results");
}

//! Figure 15b: FPGA throughput of the hardware-friendly vs the basic
//! CocoSketch across memory sizes (0.25–2MB).
//!
//! The hardware-friendly variant pipelines fully (II = 1); the basic
//! variant's circular dependency serializes the read-decide-write loop,
//! costing ~5x — 150 vs ~30 Mpps at 2MB in the paper.

use cocosketch_bench::{f, Cli, ResultTable};
use hwsim::fpga::{synthesize, FpgaConfig};
use hwsim::program::library;

fn main() {
    let cli = Cli::parse();
    let cfg = FpgaConfig::default();
    let mems_mb = [0.25f64, 0.5, 1.0, 2.0];

    let mut table = ResultTable::new(
        "fig15b",
        "FPGA throughput (Mpps) vs memory",
        &[
            "memory(MB)",
            "Hardware",
            "Basic",
            "HW clock(MHz)",
            "HW II",
            "Basic II",
        ],
    );
    for mem_mb in mems_mb {
        let mem = (mem_mb * 1024.0 * 1024.0) as usize;
        let hw = synthesize(
            &library::coco_hardware(mem, 2, library::FIVE_TUPLE_BITS),
            &cfg,
        );
        let basic = synthesize(&library::coco_basic(mem, 2, library::FIVE_TUPLE_BITS), &cfg);
        table.push(vec![
            format!("{mem_mb}"),
            f(hw.throughput_mpps),
            f(basic.throughput_mpps),
            f(hw.clock_mhz),
            hw.initiation_interval.to_string(),
            basic.initiation_interval.to_string(),
        ]);
    }
    table.emit(&cli.out_dir).expect("write results");
}

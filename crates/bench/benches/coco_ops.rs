//! Criterion microbenchmarks of CocoSketch internals: the d-sweep of
//! the basic update (Figure 16b's microscopic view), the hardware-
//! friendly update, the approximate-division primitive, and the
//! partial-key aggregation query path.

use cocosketch::{probability, BasicCocoSketch, DivisionMode, FlowTable, HardwareCocoSketch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketches::Sketch;
use traffic::gen::{generate, TraceConfig};
use traffic::KeySpec;

const MEM: usize = 500 * 1024;

fn workload() -> Vec<traffic::KeyBytes> {
    let trace = generate(&TraceConfig {
        packets: 100_000,
        flows: 10_000,
        ..TraceConfig::default()
    });
    let full = KeySpec::FIVE_TUPLE;
    trace
        .packets
        .iter()
        .map(|p| full.project(&p.flow))
        .collect()
}

fn bench_basic_d_sweep(c: &mut Criterion) {
    let keys = workload();
    let mut group = c.benchmark_group("basic_update_by_d");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for d in [1usize, 2, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter_batched(
                || BasicCocoSketch::with_memory(MEM, d, 13, 1),
                |mut s| {
                    for k in &keys {
                        s.update(k, 1);
                    }
                    s
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_hardware_update(c: &mut Criterion) {
    let keys = workload();
    let mut group = c.benchmark_group("hardware_update");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, mode) in [
        ("exact", DivisionMode::Exact),
        ("approx", DivisionMode::ApproxTofino),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter_batched(
                || HardwareCocoSketch::with_memory(MEM, 2, 13, mode, 1),
                |mut s| {
                    for k in &keys {
                        s.update(k, 1);
                    }
                    s
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_division(c: &mut Criterion) {
    let mut group = c.benchmark_group("division");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("exact", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v % 100_000 + 1;
            criterion::black_box(probability::exact_threshold(1, v))
        })
    });
    group.bench_function("approx_tofino", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v % 100_000 + 1;
            criterion::black_box(probability::approx_threshold(1, v))
        })
    });
    group.finish();
}

fn bench_partial_query(c: &mut Criterion) {
    let keys = workload();
    let mut sketch = BasicCocoSketch::with_memory(MEM, 2, 13, 1);
    for k in &keys {
        sketch.update(k, 1);
    }
    let table = FlowTable::new(KeySpec::FIVE_TUPLE, sketch.records());
    let mut group = c.benchmark_group("partial_key_query");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for spec in [KeySpec::SRC_IP, KeySpec::SRC_DST, KeySpec::src_prefix(16)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{spec}")),
            &spec,
            |b, spec| b.iter(|| criterion::black_box(table.query_partial(spec))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_basic_d_sweep,
    bench_hardware_update,
    bench_division,
    bench_partial_query
);
criterion_main!(benches);

//! Criterion microbenchmarks: per-packet update cost of every
//! algorithm (the microscopic view behind Figure 14a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tasks::{Algo, Pipeline};
use traffic::gen::{generate, TraceConfig};
use traffic::KeySpec;

const MEM: usize = 500 * 1024;

fn bench_updates(c: &mut Criterion) {
    let trace = generate(&TraceConfig {
        packets: 100_000,
        flows: 10_000,
        ..TraceConfig::default()
    });

    let mut group = c.benchmark_group("update_6keys");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    let mut algos = vec![Algo::OURS];
    algos.extend(Algo::BASELINES);
    for algo in algos {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, algo| {
                b.iter_batched(
                    || Pipeline::deploy(*algo, &KeySpec::PAPER_SIX, KeySpec::FIVE_TUPLE, MEM, 1),
                    |mut pipe| {
                        pipe.run(&trace);
                        pipe
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// The §2.3 point in microbenchmark form: naive USS's O(n)-scan update
/// vs the Stream-Summary-accelerated version vs CocoSketch.
fn bench_uss_implementations(c: &mut Criterion) {
    use sketches::{NaiveUss, Sketch, UnbiasedSpaceSaving};
    let trace = generate(&TraceConfig {
        packets: 20_000, // small: the naive version is quadratic-ish
        flows: 5_000,
        ..TraceConfig::default()
    });
    let full = KeySpec::FIVE_TUPLE;
    let keys: Vec<traffic::KeyBytes> = trace
        .packets
        .iter()
        .map(|p| full.project(&p.flow))
        .collect();

    let mut group = c.benchmark_group("uss_update_cost");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("accelerated", |b| {
        b.iter_batched(
            || UnbiasedSpaceSaving::with_memory(MEM, 13, 1),
            |mut s| {
                for k in &keys {
                    s.update(k, 1);
                }
                s
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("naive_scan", |b| {
        b.iter_batched(
            // 1/8 the memory keeps the O(n) scan from taking minutes;
            // the per-packet cost is what the bench demonstrates.
            || NaiveUss::with_memory(MEM / 8, 13, 1),
            |mut s| {
                for k in &keys {
                    s.update(k, 1);
                }
                s
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Scalar `update` loop vs the batched hot path (`update_batch`): same
/// results bit-for-bit, different instruction scheduling — the window
/// of up-front hashes is what the engine workers ride on.
fn bench_batched_update(c: &mut Criterion) {
    use cocosketch::BasicCocoSketch;
    use sketches::Sketch;
    let trace = generate(&TraceConfig {
        packets: 100_000,
        flows: 10_000,
        ..TraceConfig::default()
    });
    let full = KeySpec::FIVE_TUPLE;
    let packets: Vec<(traffic::KeyBytes, u64)> = trace
        .packets
        .iter()
        .map(|p| (full.project(&p.flow), u64::from(p.weight)))
        .collect();

    let mut group = c.benchmark_group("batched_update");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("scalar", |b| {
        b.iter_batched(
            || BasicCocoSketch::with_memory(MEM, 2, full.key_bytes(), 1),
            |mut s| {
                for (k, w) in &packets {
                    s.update(k, *w);
                }
                s
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            || BasicCocoSketch::with_memory(MEM, 2, full.key_bytes(), 1),
            |mut s| {
                s.update_batch(&packets);
                s
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_single_key(c: &mut Criterion) {
    let trace = generate(&TraceConfig {
        packets: 100_000,
        flows: 10_000,
        ..TraceConfig::default()
    });

    let mut group = c.benchmark_group("update_1key");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for algo in [Algo::OURS, Algo::Uss, Algo::Elastic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, algo| {
                b.iter_batched(
                    || Pipeline::deploy(*algo, &[KeySpec::FIVE_TUPLE], KeySpec::FIVE_TUPLE, MEM, 1),
                    |mut pipe| {
                        pipe.run(&trace);
                        pipe
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_updates,
    bench_single_key,
    bench_batched_update,
    bench_uss_implementations
);
criterion_main!(benches);

//! Fixture tests for the v3 passes (atomics + taint): two mini
//! workspaces pin every rule's exact file:line (and chain where the
//! rule carries one), and mutation tests prove an injected violation —
//! one weakened ordering, one deleted bounds check — is caught at its
//! exact site rather than merely "somewhere".

use std::path::Path;

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Recursively copy `from` into `to` (fixture workspaces are tiny).
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// Copy a fixture into a scratch dir, run `mutate` on it, lint, clean
/// up, and return (baseline, mutated) findings.
fn lint_mutated(
    fixture: &str,
    tag: &str,
    mutate: impl FnOnce(&Path),
) -> (Vec<xtask::rules::Finding>, Vec<xtask::rules::Finding>) {
    let scratch = std::env::temp_dir().join(format!("cocolint_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root(fixture), &scratch);
    let baseline = xtask::run_lint(&scratch).unwrap();
    mutate(&scratch);
    let mutated = xtask::run_lint(&scratch).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
    (baseline, mutated)
}

/// Replace `from` with `to` in `path`, asserting it was present.
fn patch(path: &Path, from: &str, to: &str) {
    let src = std::fs::read_to_string(path).unwrap();
    assert!(
        src.contains(from),
        "fixture drifted: {from:?} not in {path:?}"
    );
    std::fs::write(path, src.replace(from, to)).unwrap();
}

#[test]
fn atomics_fixture_pins_exact_findings() {
    // One finding per atomics rule, each at its pinned line; the
    // paired-and-protocol'd `flag` and the all-Relaxed `ticks` stay
    // clean, and both flavors of ordering-marker rot are reported.
    let findings = xtask::run_lint(&fixture_root("mini_atomics")).unwrap();
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(rendered.len(), 7, "{rendered:#?}");
    // `lost` is only half a protocol, but its Acquire edge still makes
    // it protocol-membership material — both protocol findings fire.
    assert!(
        rendered[0].starts_with("crates/lf/src/lib.rs:12: [atomics-protocol]"),
        "{rendered:#?}"
    );
    assert!(findings[0].message.contains("`lost`"), "{rendered:#?}");
    assert!(
        rendered[1].starts_with("crates/lf/src/lib.rs:14: [atomics-protocol]"),
        "{rendered:#?}"
    );
    assert!(findings[1].message.contains("`orphan`"), "{rendered:#?}");
    assert!(
        rendered[2].starts_with("crates/lf/src/lib.rs:32: [atomics-unpaired]"),
        "{rendered:#?}"
    );
    assert!(
        rendered[3].starts_with("crates/lf/src/lib.rs:37: [atomics-relaxed-store]"),
        "{rendered:#?}"
    );
    assert!(
        rendered[4].starts_with("crates/lf/src/lib.rs:42: [atomics-seqcst]"),
        "{rendered:#?}"
    );
    assert!(
        rendered[5].starts_with("crates/lf/src/lib.rs:61: [atomics-unused-marker]"),
        "{rendered:#?}"
    );
    assert!(findings[5].message.contains("relaxed"), "{rendered:#?}");
    assert!(
        rendered[6].starts_with("crates/lf/src/lib.rs:64: [atomics-unused-marker]"),
        "{rendered:#?}"
    );
    assert!(findings[6].message.contains("seqcst"), "{rendered:#?}");
}

#[test]
fn taint_fixture_pins_exact_findings_and_chains() {
    // One finding per taint sink shape, each with its source-to-sink
    // chain; the `.min()`-clamped and MAX_FRAME-compared allocations
    // stay clean.
    let findings = xtask::run_lint(&fixture_root("mini_taint")).unwrap();
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(rendered.len(), 3, "{rendered:#?}");
    assert!(
        rendered[0].starts_with("crates/parse/src/lib.rs:11: [taint-alloc]"),
        "{rendered:#?}"
    );
    assert_eq!(
        findings[0].chain.as_deref(),
        Some("wire::ingest -> parse::header"),
        "{rendered:#?}"
    );
    assert!(
        rendered[1].starts_with("crates/parse/src/lib.rs:12: [taint-arith]"),
        "{rendered:#?}"
    );
    assert!(findings[1].message.contains("checked_mul"), "{rendered:#?}");
    assert!(
        rendered[2].starts_with("crates/parse/src/lib.rs:20: [taint-index]"),
        "{rendered:#?}"
    );
    assert_eq!(
        findings[2].chain.as_deref(),
        Some("wire::ingest -> parse::header -> parse::at"),
        "{rendered:#?}"
    );
}

#[test]
fn mutation_weakening_a_release_store_is_caught() {
    // Demote the protocol field's Release publish to Relaxed: the
    // Acquire load loses its pairing AND the store needs (and lacks)
    // an annotation — both findings, at their exact lines.
    let (baseline, mutated) = lint_mutated("mini_atomics", "atomics_mutation", |root| {
        patch(
            &root.join("crates/lf/src/lib.rs"),
            "self.flag.store(v, Ordering::Release);",
            "self.flag.store(v, Ordering::Relaxed);",
        );
    });
    assert_eq!(mutated.len(), baseline.len() + 2, "{mutated:#?}");
    let unpaired = mutated
        .iter()
        .find(|f| f.rule == "atomics-unpaired" && f.file == "crates/lf/src/lib.rs" && f.line == 22)
        .unwrap_or_else(|| panic!("weakened store not caught as unpaired: {mutated:#?}"));
    assert!(unpaired.message.contains("`flag`"), "{unpaired}");
    assert!(
        mutated
            .iter()
            .any(|f| f.rule == "atomics-relaxed-store" && f.line == 27),
        "weakened store not caught as unannotated Relaxed: {mutated:#?}"
    );
}

#[test]
fn mutation_deleting_a_bounds_check_is_caught_with_chain() {
    // Remove the MAX_FRAME guard in front of the clean allocation: the
    // reserve three lines up now fires, with its full chain.
    let (baseline, mutated) = lint_mutated("mini_taint", "taint_mutation", |root| {
        patch(
            &root.join("crates/parse/src/lib.rs"),
            "    if n > MAX_FRAME {\n        return Vec::new();\n    }\n",
            "",
        );
    });
    assert_eq!(mutated.len(), baseline.len() + 1, "{mutated:#?}");
    let alloc = mutated
        .iter()
        .find(|f| f.rule == "taint-alloc" && f.file == "crates/parse/src/lib.rs" && f.line == 27)
        .unwrap_or_else(|| panic!("unguarded reserve not caught: {mutated:#?}"));
    assert_eq!(
        alloc.chain.as_deref(),
        Some("wire::ingest -> parse::bounded_copy"),
        "{alloc}"
    );
}

#[test]
fn renaming_a_protocol_model_test_is_fatal_rot() {
    // The [[atomics.protocol]] <-> loom-model linkage: renaming the
    // model fn must fail the whole lint, not drop a finding.
    let scratch =
        std::env::temp_dir().join(format!("cocolint_protocol_rot_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root("mini_atomics"), &scratch);
    patch(
        &scratch.join("crates/lf/tests/model.rs"),
        "fn flag_handoff_is_race_free()",
        "fn flag_handoff_is_checked()",
    );
    let err = xtask::run_lint(&scratch).unwrap_err();
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(err.contains("flag_handoff_is_race_free"), "{err}");
    assert!(err.contains("does not exist"), "{err}");
}

#[test]
fn renaming_a_taint_source_is_fatal_rot() {
    // A [taint] sources suffix matching no fn means the entry point
    // was renamed and the policy silently stopped applying: fatal.
    let scratch = std::env::temp_dir().join(format!("cocolint_taint_rot_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root("mini_taint"), &scratch);
    patch(
        &scratch.join("crates/wire/src/lib.rs"),
        "pub fn ingest(",
        "pub fn swallow(",
    );
    let err = xtask::run_lint(&scratch).unwrap_err();
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(err.contains("wire::ingest"), "{err}");
    assert!(err.contains("matches no workspace fn"), "{err}");
}

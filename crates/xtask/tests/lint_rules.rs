//! Fixture tests for every cocolint rule: each fixture under
//! `tests/fixtures/` marks its expected findings with `// VIOLATION`
//! (`// VIOLATION x2` for two findings on one line), and the tests
//! assert the rule reports exactly those lines — no more, no fewer.
//! Two mini workspaces drive `run_lint` end to end for allowlist and
//! config-error behavior.

use std::path::Path;
use xtask::lexer::tokenize;
use xtask::rules::{self, Finding};

/// 1-based lines tagged `// VIOLATION`, with multiplicity from an
/// optional `xN` suffix.
fn marker_lines(src: &str) -> Vec<u32> {
    let mut lines = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("// VIOLATION") {
            let rest = line[pos + "// VIOLATION".len()..].trim();
            let count = rest
                .strip_prefix('x')
                .and_then(|n| n.parse::<u32>().ok())
                .unwrap_or(1);
            for _ in 0..count {
                lines.push(idx as u32 + 1);
            }
        }
    }
    lines
}

/// Sorted lines of `findings`, asserting every finding carries `rule`.
fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    for f in findings {
        assert_eq!(f.rule, rule, "unexpected rule in finding: {f}");
    }
    let mut lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    lines.sort_unstable();
    lines
}

#[test]
fn safety_comment_flags_exactly_the_marked_lines() {
    let src = include_str!("fixtures/safety_comment.rs");
    let findings = rules::safety_comment("fixture", &tokenize(src));
    assert_eq!(lines_of(&findings, "safety-comment"), marker_lines(src));
}

#[test]
fn safety_comment_messages_name_the_construct() {
    let src = include_str!("fixtures/safety_comment.rs");
    let findings = rules::safety_comment("fixture", &tokenize(src));
    assert!(
        findings[0].message.contains("unsafe block"),
        "{}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("unsafe impl"),
        "{}",
        findings[1]
    );
}

#[test]
fn panic_path_flags_exactly_the_marked_lines() {
    let src = include_str!("fixtures/panic_path.rs");
    let findings = rules::data_plane_rules(Path::new("fixture"), &tokenize(src));
    assert_eq!(lines_of(&findings, "panic-path"), marker_lines(src));
}

#[test]
fn wall_clock_flags_exactly_the_marked_lines() {
    let src = include_str!("fixtures/wall_clock.rs");
    let findings = rules::data_plane_rules(Path::new("fixture"), &tokenize(src));
    assert_eq!(lines_of(&findings, "wall-clock"), marker_lines(src));
}

#[test]
fn default_hashmap_flags_exactly_the_marked_lines() {
    let src = include_str!("fixtures/default_hashmap.rs");
    let findings = rules::data_plane_rules(Path::new("fixture"), &tokenize(src));
    assert_eq!(lines_of(&findings, "default-hashmap"), marker_lines(src));
}

#[test]
fn lock_free_flags_exactly_the_marked_lines() {
    let src = include_str!("fixtures/lock_free.rs");
    let findings = rules::lock_free_rules(Path::new("fixture"), &tokenize(src));
    assert_eq!(lines_of(&findings, "lock-free"), marker_lines(src));
}

#[test]
fn cfg_test_span_covers_the_whole_module() {
    // The panic-path fixture ends in a #[cfg(test)] mod whose contents
    // would otherwise produce three findings; pin the exact span so
    // the exemption can't silently widen or shrink.
    let src = include_str!("fixtures/panic_path.rs");
    let spans = rules::cfg_test_spans(&tokenize(src));
    let total = src.lines().count() as u32;
    assert_eq!(spans, vec![(total - 12, total)]);
}

#[test]
fn findings_render_as_file_line_rule() {
    let f = Finding {
        file: "crates/engine/src/ring.rs".into(),
        line: 7,
        rule: "safety-comment",
        message: "msg".into(),
        chain: None,
    };
    assert_eq!(
        f.to_string(),
        "crates/engine/src/ring.rs:7: [safety-comment] msg"
    );
}

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn run_lint_applies_allowlist_and_reports_unused_entries() {
    let findings = xtask::run_lint(&fixture_root("mini_root")).unwrap();
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    // Three findings survive, in sorted order:
    // - the un-allowlisted unwrap in the data-plane crate (the
    //   allowlisted wall-clock on line 7 is suppressed),
    // - the missing forbid(unsafe_code) attr on `util`,
    // - the allow entry that suppressed nothing.
    assert_eq!(rendered.len(), 3, "{rendered:#?}");
    assert!(
        rendered[0].starts_with("crates/dp/src/lib.rs:13: [panic-path]"),
        "{rendered:#?}"
    );
    assert!(
        rendered[1].starts_with("crates/util/src/lib.rs:1: [crate-attrs]"),
        "{rendered:#?}"
    );
    assert!(
        rendered[2].starts_with("lint.toml:12: [unused-allow]"),
        "{rendered:#?}"
    );
    assert!(
        !rendered.iter().any(|r| r.contains("wall-clock")),
        "allowlisted wall-clock finding leaked through: {rendered:#?}"
    );
}

#[test]
fn run_lint_rejects_config_naming_unknown_crates() {
    let err = xtask::run_lint(&fixture_root("mini_bad_root")).unwrap_err();
    assert!(err.contains("unknown crate `ghost`"), "{err}");
}

#[test]
fn dataflow_fixture_pins_file_line_and_chain_per_rule() {
    // One fixture workspace, one finding per interprocedural rule,
    // each pinned to its exact file:line (and call chain where the
    // rule carries one) so the rules cannot silently drift.
    let findings = xtask::run_lint(&fixture_root("mini_dataflow_root")).unwrap();
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(rendered.len(), 3, "{rendered:#?}");

    assert!(
        rendered[0].starts_with("crates/dp/src/lib.rs:22: [overflow]"),
        "{rendered:#?}"
    );
    assert!(findings[0].chain.is_none());

    assert!(
        rendered[1].starts_with("crates/util/src/lib.rs:6: [transitive-panic]"),
        "{rendered:#?}"
    );
    assert_eq!(
        findings[1].chain.as_deref(),
        Some("dp::entry -> dp::helper -> util::deep"),
        "{rendered:#?}"
    );

    assert!(
        rendered[2].starts_with("crates/util/src/lib.rs:11: [hot-alloc]"),
        "{rendered:#?}"
    );
    assert_eq!(
        findings[2].chain.as_deref(),
        Some("dp::fast -> util::build"),
        "{rendered:#?}"
    );
}

/// Recursively copy `from` into `to` (fixture workspaces are tiny).
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

#[test]
fn mutation_inserting_a_deep_unwrap_is_caught_with_its_chain() {
    // The do-the-rules-actually-fire test: take the fixture workspace,
    // graft a brand-new unwrap two call-levels below a brand-new
    // data-plane pub fn, and require the transitive rule to surface it
    // with the full entry-to-site chain.
    let scratch = std::env::temp_dir().join(format!("cocolint_mutation_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root("mini_dataflow_root"), &scratch);

    let baseline = xtask::run_lint(&scratch).unwrap();

    let dp = scratch.join("crates/dp/src/lib.rs");
    let mut dp_src = std::fs::read_to_string(&dp).unwrap();
    dp_src.push_str(
        "\n/// Mutation: a second entry point over a fresh util chain.\n\
         pub fn entry2(x: u64) -> u64 {\n\
             util::extra(x)\n\
         }\n",
    );
    std::fs::write(&dp, dp_src).unwrap();

    let util = scratch.join("crates/util/src/lib.rs");
    let mut util_src = std::fs::read_to_string(&util).unwrap();
    let unwrap_line = util_src.lines().count() as u32 + 8; // 1-based line of the inserted unwrap
    util_src.push_str(
        "\n/// Mutation: one hop between the entry and the panic.\n\
         pub fn extra(x: u64) -> u64 {\n\
             inner(x)\n\
         }\n\
         \n\
         fn inner(x: u64) -> u64 {\n\
             x.checked_add(1).unwrap()\n\
         }\n",
    );
    std::fs::write(&util, util_src).unwrap();

    let mutated = xtask::run_lint(&scratch).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);

    assert_eq!(mutated.len(), baseline.len() + 1, "{mutated:#?}");
    let new = mutated
        .iter()
        .find(|f| f.rule == "transitive-panic" && f.line == unwrap_line)
        .unwrap_or_else(|| panic!("inserted unwrap not reported: {mutated:#?}"));
    assert_eq!(new.file, "crates/util/src/lib.rs");
    assert!(new.message.contains("`.unwrap()`"), "{new}");
    assert_eq!(
        new.chain.as_deref(),
        Some("dp::entry2 -> util::extra -> util::inner"),
        "{new}"
    );
}

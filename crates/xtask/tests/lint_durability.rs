//! Fixture tests for the v4 durability pass: a mini workspace pins
//! every rule's exact file:line (and chain where the rule carries
//! one), and the mutation test proves the seeded fault from the
//! acceptance criteria — `sync_all` deleted from the commit funnel —
//! is caught at the rename it unprotects, with its call chain.

use std::path::Path;

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Recursively copy `from` into `to` (fixture workspaces are tiny).
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// Replace `from` with `to` in `path`, asserting it was present.
fn patch(path: &Path, from: &str, to: &str) {
    let src = std::fs::read_to_string(path).unwrap();
    assert!(
        src.contains(from),
        "fixture drifted: {from:?} not in {path:?}"
    );
    std::fs::write(path, src.replace(from, to)).unwrap();
}

/// Copy the fixture into a scratch dir, run `mutate`, lint, clean up.
fn lint_mutated(
    tag: &str,
    mutate: impl FnOnce(&Path),
) -> Result<Vec<xtask::rules::Finding>, String> {
    let scratch = std::env::temp_dir().join(format!("cocolint_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root("mini_durability"), &scratch);
    mutate(&scratch);
    let out = xtask::run_lint(&scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    out
}

#[test]
fn durability_fixture_pins_exact_findings() {
    let findings = xtask::run_lint(&fixture_root("mini_durability")).unwrap();
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(rendered.len(), 6, "{rendered:#?}");
    // The two unannotated dropped io::Results in the funnel body; the
    // annotated one on the next line stays clean and keeps its marker
    // alive.
    assert!(
        rendered[0].starts_with("crates/store/src/lib.rs:20: [durability-drop]"),
        "{rendered:#?}"
    );
    assert!(
        rendered[1].starts_with("crates/store/src/lib.rs:21: [durability-drop]"),
        "{rendered:#?}"
    );
    // The stale marker above `tidy` covers nothing.
    assert!(
        rendered[2].starts_with("crates/store/src/lib.rs:26: [durability-unused-marker]"),
        "{rendered:#?}"
    );
    // `sidedoor -> stash` renames without passing the funnel.
    assert!(
        rendered[3].starts_with("crates/store/src/lib.rs:36: [durability-funnel]"),
        "{rendered:#?}"
    );
    assert_eq!(
        findings[3].chain.as_deref().unwrap(),
        "store::sidedoor -> store::stash"
    );
    // `hasty` renames a written, never-fsynced handle.
    assert!(
        rendered[4].starts_with("crates/store/src/lib.rs:44: [durability-sync]"),
        "{rendered:#?}"
    );
    // `outer` holds `m` while `grab` (via `deep`) takes `AUX`.
    assert!(
        rendered[5].starts_with("crates/store/src/lib.rs:72: [durability-lock]"),
        "{rendered:#?}"
    );
    assert_eq!(
        findings[5].chain.as_deref().unwrap(),
        "store::Locked::outer -> store::deep -> store::grab"
    );
}

#[test]
fn deleted_sync_all_in_the_funnel_is_caught_with_its_chain() {
    // The static half of the seeded-mutation acceptance test (crashsim
    // covers the runtime half): deleting the funnel's `sync_all`
    // must surface at the rename it unprotects, chained from the pub
    // entry that trusts the funnel.
    let baseline = xtask::run_lint(&fixture_root("mini_durability")).unwrap();
    assert!(
        !baseline
            .iter()
            .any(|f| f.rule == "durability-sync" && f.line == 19),
        "funnel must be clean before the mutation"
    );
    let mutated = lint_mutated("sync_mutation", |root| {
        patch(
            &root.join("crates/store/src/lib.rs"),
            "f.sync_all()?;",
            "/* fsync deleted */",
        );
    })
    .unwrap();
    let hit = mutated
        .iter()
        .find(|f| f.rule == "durability-sync" && f.line == 19)
        .unwrap_or_else(|| panic!("mutation not caught: {mutated:#?}"));
    assert!(hit.message.contains("without `sync_all`"), "{hit}");
    assert_eq!(
        hit.chain.as_deref().unwrap(),
        "store::publish -> store::commit",
        "{hit}"
    );
    // Exactly one new finding: the mutation, nothing else shifted.
    assert_eq!(mutated.len(), baseline.len() + 1, "{mutated:#?}");
}

#[test]
fn renamed_funnel_is_fatal_config_rot() {
    let err = lint_mutated("funnel_rot", |root| {
        patch(
            &root.join("lint.toml"),
            "funnels = [\"store::commit\"]",
            "funnels = [\"store::commit_v2\"]",
        );
    })
    .unwrap_err();
    assert!(err.contains("matches no workspace fn"), "{err}");
    assert!(err.contains("store::commit_v2"), "{err}");
}

//! Mini data-plane crate for the interprocedural-rule tests.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

/// Entry point whose panic lives two call-levels down, in `util`.
pub fn entry(x: u64) -> u64 {
    helper(x)
}

fn helper(x: u64) -> u64 {
    util::deep(x)
}

/// Counter holder for the overflow fixture finding.
pub struct Bucket {
    /// The `lint.toml [overflow] counters` accumulator.
    pub count: u64,
}

/// Unchecked `+=` on a configured counter: the overflow finding.
pub fn bump(b: &mut Bucket, w: u64) {
    b.count += w;
}

// LINT: hot
/// Hot entry point whose allocation lives one call-level down.
pub fn fast(x: u64) -> u64 {
    util::build(x)
}

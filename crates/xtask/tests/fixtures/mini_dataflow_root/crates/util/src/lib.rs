//! Mini utility crate: the panic and allocation sites the data-plane
//! crate reaches transitively.

/// The unwrap the transitive-panic rule must trace back to `dp::entry`.
pub fn deep(x: u64) -> u64 {
    Some(x).unwrap()
}

/// The `vec!` the hot-alloc rule must trace back to `dp::fast`.
pub fn build(x: u64) -> u64 {
    let v = vec![x];
    v[0]
}

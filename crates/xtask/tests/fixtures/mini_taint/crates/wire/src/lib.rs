//! Mini wire crate: the taint source plus one clean clamped path.

/// Everything downstream of here handles attacker bytes.
pub fn ingest(body: &[u8]) -> usize {
    let cap = body.len();
    let buf: Vec<u8> = Vec::with_capacity(cap.min(16));
    buf.capacity() + parse::header(body) + parse::bounded_copy(body).len()
}

//! Mini parser: one finding per taint sink shape, plus a
//! comparison-sanitized allocation that stays clean.

/// Largest frame the fixture accepts.
pub const MAX_FRAME: usize = 1024;

/// Unclamped allocation and wrapping length arithmetic.
pub fn header(b: &[u8]) -> usize {
    let rows = b.len();
    let row_len = 4;
    let v: Vec<u8> = Vec::with_capacity(rows);
    if b.len() != rows * row_len {
        return 0;
    }
    v.len() + at(b, rows)
}

/// Untrusted indexing without bounds or annotation.
fn at(b: &[u8], i: usize) -> usize {
    b[i] as usize
}

/// The length is compared against MAX_FRAME before the reserve: the
/// allocation sink accepts the earlier comparison as sanitization.
pub fn bounded_copy(b: &[u8]) -> Vec<u8> {
    let n = b.len();
    if n > MAX_FRAME {
        return Vec::new();
    }
    let mut v = Vec::with_capacity(n);
    v.extend_from_slice(b);
    v
}

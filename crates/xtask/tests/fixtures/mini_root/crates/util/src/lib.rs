//! Mini utility crate: deliberately missing #![forbid(unsafe_code)].

/// Identity, so the crate has content beyond its missing attribute.
pub fn id(x: u32) -> u32 {
    x
}

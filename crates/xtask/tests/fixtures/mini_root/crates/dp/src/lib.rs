//! Mini data-plane crate for run_lint end-to-end tests.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

/// Reports elapsed time; the wall-clock finding here is allowlisted.
pub fn report() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

/// Unwrap on the data plane: the finding run_lint must surface.
pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

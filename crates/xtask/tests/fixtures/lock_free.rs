// Fixture for the lock-free rule. Not compiled — scanned by
// tests/lint_rules.rs.

use std::sync::Mutex; // VIOLATION
use std::sync::{Condvar, RwLock}; // VIOLATION x2

pub struct Guarded {
    state: Mutex<Vec<u64>>, // VIOLATION
}

pub fn blocked(g: &Guarded) -> usize {
    let lock: std::sync::RwLock<u8> = Default::default(); // VIOLATION
    drop(lock);
    g.state.lock().map(|v| v.len()).unwrap_or(0)
}

pub fn atomics_are_fine(x: &std::sync::atomic::AtomicUsize) -> usize {
    // The sanctioned primitives: atomics, and the words "Mutex" or
    // "RwLock" inside comments or strings must not be flagged.
    let _ = "Mutex RwLock Condvar";
    x.load(std::sync::atomic::Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_lock() {
        let m = std::sync::Mutex::new(1u8);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}

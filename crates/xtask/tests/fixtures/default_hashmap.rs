// Fixture for the default-hashmap rule. Not compiled — scanned by
// tests/lint_rules.rs.

use std::collections::HashMap; // VIOLATION
use std::collections::HashSet; // VIOLATION

pub fn build() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // VIOLATION x2
    let s: HashSet<u32> = HashSet::new(); // VIOLATION x2
    m.len() + s.len()
}

pub fn fast_variants_are_fine() {
    // FastMap/FastSet are the replacements; naming them is the fix,
    // not a finding, and prose mentions of HashMap stay exempt too.
    let _ = "HashMap in a string";
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn model_maps_in_tests_are_fine() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}

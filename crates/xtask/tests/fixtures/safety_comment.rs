// Fixture for the safety-comment rule. Not compiled — scanned by
// tests/lint_rules.rs. Lines tagged VIOLATION must be flagged; all
// other unsafe sites must pass.

pub fn uncommented_block() {
    unsafe { core::hint::unreachable_unchecked() } // VIOLATION
}

pub fn commented_block() {
    // SAFETY: this branch is unreachable because the fixture is never
    // compiled, let alone executed.
    unsafe { core::hint::unreachable_unchecked() }
}

/// An unsafe fn declaration needs no SAFETY comment of its own: the
/// obligation lands on each calling `unsafe` block.
pub unsafe fn declaration_is_exempt(p: *const u8) -> u8 {
    // SAFETY: caller promises `p` is valid for reads.
    unsafe { *p }
}

pub fn mentions_in_strings_do_not_count() {
    let _ = "unsafe { not_code() }";
    // A comment mentioning unsafe blocks is also not a finding, and
    // this fn doubles as distance padding so the `unsafe impl` below
    // sits outside the 12-line window of the comment on line 18.
}

struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {} // VIOLATION

// SAFETY: the pointer is only dereferenced on the owning thread.
unsafe impl Sync for Wrapper {}

pub fn stale_comment_far_above() {
    // SAFETY: this comment is too far above to cover the block below.
    let a = 1;
    let b = 2;
    let c = 3;
    let d = 4;
    let e = 5;
    let f = 6;
    let g = 7;
    let h = 8;
    let i = 9;
    let j = 10;
    let k = 11;
    let l = 12;
    unsafe { core::hint::unreachable_unchecked() } // VIOLATION
}

//! Mini lock-free crate for the atomics-pass end-to-end tests: one
//! correctly paired protocol field, one violation per rule, and one
//! pure-Relaxed counter that stays exempt.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The protocol zoo.
pub struct Gate {
    /// Paired and named in lint.toml's `[[atomics.protocol]]`.
    pub flag: AtomicUsize,
    /// Acquire-loaded but never Release-stored.
    pub lost: AtomicUsize,
    /// Paired, but belongs to no protocol.
    pub orphan: AtomicUsize,
    /// Pure Relaxed stat counter: exempt from every atomics rule.
    pub ticks: AtomicUsize,
}

impl Gate {
    /// The gate protocol's read side.
    pub fn wait(&self) -> usize {
        self.flag.load(Ordering::Acquire)
    }

    /// The gate protocol's publish side.
    pub fn publish(&self, v: usize) {
        self.flag.store(v, Ordering::Release);
    }

    /// Acquire load of a field no one ever Release-stores.
    pub fn peek(&self) -> usize {
        self.lost.load(Ordering::Acquire)
    }

    /// Unannotated Relaxed store to the Acquire-loaded `lost`.
    pub fn clobber(&self, v: usize) {
        self.lost.store(v, Ordering::Relaxed);
    }

    /// Unjustified SeqCst access.
    pub fn strong(&self) -> usize {
        self.orphan.fetch_add(1, Ordering::SeqCst)
    }

    /// The orphan's paired read side.
    pub fn orphan_read(&self) -> usize {
        self.orphan.load(Ordering::Acquire)
    }

    /// The orphan's paired write side.
    pub fn orphan_write(&self, v: usize) {
        self.orphan.store(v, Ordering::Release);
    }

    /// Counter bump: all-Relaxed groups carry no protocol.
    pub fn tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }
}

// LINT: relaxed(stale - the store this once justified is gone)
fn idle() {}

// LINT: seqcst(stale - the access this once justified is gone)
fn also_idle() {}

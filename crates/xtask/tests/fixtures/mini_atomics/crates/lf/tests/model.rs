//! Stand-in model test: the `gate` protocol's lint.toml entry names
//! this fn; renaming it must fail the lint (protocol rot).

#[test]
fn flag_handoff_is_race_free() {}

//! Durable store fixture: one pinned finding per durability rule,
//! plus clean protocol code that must stay clean.

use std::fs;
use std::io::Write;
use std::sync::Mutex;

/// The audited commit funnel: create, write, fsync, rename. Its own
/// body is exempt from the funnel rule; the pairing rule still
/// watches it (see the mutation test).
pub fn publish(data: &[u8]) -> std::io::Result<()> {
    commit(data)
}

fn commit(data: &[u8]) -> std::io::Result<()> {
    let mut f = fs::File::create("seg.tmp")?;
    f.write_all(data)?;
    f.sync_all()?;
    fs::rename("seg.tmp", "seg.cep")?;
    let _ = fs::remove_file("seg.tmp.bak");
    fs::remove_file("seg.old").ok();
    fs::remove_file("seg.older").ok(); // LINT: lossy(gc is advisory; reopen sweeps)
    Ok(())
}

// LINT: lossy(the drop this once covered is long gone)
fn tidy() {}

/// A second entry that skips the funnel: its rename is the
/// durability-funnel finding.
pub fn sidedoor() -> std::io::Result<()> {
    stash()
}

fn stash() -> std::io::Result<()> {
    fs::rename("a", "b")
}

/// Broken pairing, unreachable from any entry: written, never
/// fsynced, renamed anyway.
fn hasty(data: &[u8]) -> std::io::Result<()> {
    let mut f = fs::File::create("h.tmp")?;
    f.write_all(data)?;
    fs::rename("h.tmp", "h.cep")
}

/// Holding `m` while `grab` takes `AUX` is the nested-lock shape.
pub struct Locked {
    m: Mutex<u32>,
}

static AUX: Mutex<u32> = Mutex::new(0);

impl Locked {
    /// Acquires `m`, then reaches `grab`'s acquisition of `AUX`.
    pub fn outer(&self) -> u32 {
        let g = self.m.lock().unwrap();
        deep(*g)
    }

    /// Single-lock path: must stay clean.
    pub fn single(&self) -> u32 {
        *self.m.lock().unwrap()
    }
}

fn deep(v: u32) -> u32 {
    grab(v)
}

fn grab(v: u32) -> u32 {
    *AUX.lock().unwrap() + v
}

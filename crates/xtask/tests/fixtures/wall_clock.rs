// Fixture for the wall-clock rule. Not compiled — scanned by
// tests/lint_rules.rs.

use std::time::Instant; // VIOLATION

pub fn timed() -> u64 {
    let start = Instant::now(); // VIOLATION
    let t = std::time::SystemTime::now(); // VIOLATION
    drop(t);
    start.elapsed().as_nanos() as u64
}

pub fn entropy() {
    let _map: std::collections::hash_map::RandomState = Default::default(); // VIOLATION
}

pub fn deterministic_is_fine(seed: u64) -> u64 {
    // Seeded generators are the sanctioned randomness source; the
    // words "Instant" and "SystemTime" in comments or strings must
    // not be flagged.
    let _ = "Instant SystemTime thread_rng";
    seed.wrapping_mul(0x9E3779B97F4A7C15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let start = std::time::Instant::now();
        assert!(start.elapsed().as_secs() < 1);
    }
}

//! Placeholder crate so the bad-config fixture has a real member.

// Fixture for the panic-path rule. Not compiled — scanned by
// tests/lint_rules.rs.

pub fn method_calls(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap(); // VIOLATION
    let b = y.expect("boom"); // VIOLATION
    a + b
}

pub fn macros(n: u32) -> u32 {
    match n {
        0 => panic!("zero"),      // VIOLATION
        1 => unreachable!(),      // VIOLATION
        2 => todo!(),             // VIOLATION
        3 => unimplemented!(),    // VIOLATION
        _ => n,
    }
}

pub fn non_panicking_cousins(x: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else / unwrap_or_default are different
    // identifiers and must not be flagged.
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

pub fn asserts_are_invariant_contracts(cap: usize) {
    // Documented invariant asserts are the sanctioned precondition
    // style; they are not accidental panic paths.
    assert!(cap.is_power_of_two(), "capacity must be a power of two");
}

pub fn names_without_calls() {
    // A path segment or a doc string is not a method call.
    let _ = "calls .unwrap() and panic! in prose";
    // std::panic::resume_unwind re-raises an existing payload; the
    // `panic` ident has no bang, so it is not flagged.
    let _ = std::panic::catch_unwind(|| 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        r.expect("fine in tests");
        if false {
            panic!("also fine in tests");
        }
    }
}

//! Workspace automation entry point: `cargo run -p xtask -- lint`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [--format human|json|sarif] [--out FILE] [--timings]"
            );
            eprintln!();
            eprintln!("subcommands:");
            eprintln!("  lint    run the cocolint static-analysis pass (policy: lint.toml)");
            ExitCode::FAILURE
        }
    }
}

enum Format {
    Human,
    Json,
    Sarif,
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut out: Option<PathBuf> = None;
    let mut timings = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timings" => timings = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "cocolint: --format takes human|json|sarif, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("cocolint: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("cocolint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(root) = find_workspace_root() else {
        eprintln!("cocolint: no lint.toml found between the current directory and filesystem root");
        return ExitCode::FAILURE;
    };
    let findings = match xtask::run_lint_with_timings(&root) {
        Ok((findings, pass_times)) => {
            if timings {
                eprint!("{}", pass_times.render());
            }
            findings
        }
        Err(e) => {
            eprintln!("cocolint: error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Machine formats always render (an empty results array is valid
    // output — CI uploads it either way); human mode prints findings
    // to stderr and a status line.
    let rendered = match format {
        Format::Human => None,
        Format::Json => Some(xtask::sarif::render_json(&findings)),
        Format::Sarif => Some(xtask::sarif::render(&findings)),
    };
    if let Some(text) = rendered {
        match &out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("cocolint: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            None => print!("{text}"),
        }
    }
    if findings.is_empty() {
        if matches!(format, Format::Human) {
            println!("cocolint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if matches!(format, Format::Human) {
            for f in &findings {
                eprintln!("{f}");
            }
        }
        eprintln!("cocolint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root is the nearest ancestor (starting at the current
/// directory) containing `lint.toml` — `cargo run -p xtask` runs from
/// the workspace root, but `cd crates/engine && cargo run -p xtask`
/// should work too.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

//! Workspace automation entry point: `cargo run -p xtask -- lint`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            eprintln!();
            eprintln!("subcommands:");
            eprintln!("  lint    run the cocolint static-analysis pass (policy: lint.toml)");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let Some(root) = find_workspace_root() else {
        eprintln!("cocolint: no lint.toml found between the current directory and filesystem root");
        return ExitCode::FAILURE;
    };
    match xtask::run_lint(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("cocolint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("cocolint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("cocolint: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root is the nearest ancestor (starting at the current
/// directory) containing `lint.toml` — `cargo run -p xtask` runs from
/// the workspace root, but `cd crates/engine && cargo run -p xtask`
/// should work too.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

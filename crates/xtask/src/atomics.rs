//! Atomic-ordering protocol checker over the `lock_free`-tier crates.
//!
//! The left-right catalog, the projector cache, and the SPSC ring are
//! all hand-rolled acquire/release protocols: one weakened `Ordering`
//! is a data race no test deterministically catches. The loom models
//! verify the schedules they enumerate, but nothing stopped a later
//! change from quietly downgrading a `Release` store in code no model
//! covers — until this pass.
//!
//! | rule                    | what it proves                                     |
//! |-------------------------|----------------------------------------------------|
//! | `atomics-unpaired`      | a field Acquire-loaded anywhere has a Release-or-stronger store somewhere, and vice versa |
//! | `atomics-relaxed-store` | `Relaxed` stores/RMWs to fields that are Acquire-loaded elsewhere carry `// LINT: relaxed(reason)` |
//! | `atomics-seqcst`        | every `SeqCst` access carries `// LINT: seqcst(reason)` naming the store-buffering edge it orders |
//! | `atomics-unused-marker` | every `relaxed`/`seqcst` annotation still covers a matching access (no rot) |
//! | `atomics-protocol`      | every field participating in acquire/release edges belongs to a named `[[atomics.protocol]]` linked to its model test |
//!
//! ## What counts as an access, and how fields are grouped
//!
//! An access is a `.load(...)` / `.store(...)` / `.swap(...)` /
//! `.fetch_*(...)` / `.compare_exchange[_weak](...)` call whose
//! arguments name `Ordering::X` — token-level, so a workspace method
//! that happens to be called `load` without an `Ordering` argument is
//! never mistaken for one. The receiver is the last plain identifier
//! of the receiver chain (`self.sides[idx].readers.fetch_add` →
//! `readers`), and sites group by `(crate, receiver name)`: the lexer
//! cannot see types, so two same-named atomics in one crate share a
//! group. That over-approximation only merges protocols, never hides
//! an access.
//!
//! Declarations are found the same way: `name: ...Atomic*...` (struct
//! fields and fn params) and `let name = ...Atomic*...` bindings.
//!
//! ## Deliberate classification choices
//!
//! - A successful `compare_exchange` with an `Acquire` success
//!   ordering is the writer-election idiom (the stored value is a
//!   claim marker; the real payload publish is a later `Release`
//!   store). Its store side is therefore *not* treated as a Relaxed
//!   store needing annotation; only the success ordering being
//!   `Release`/`AcqRel`/`SeqCst` makes a CAS count as a release store
//!   for pairing.
//! - A group whose every access is `Relaxed` (pure stat counters) has
//!   no happens-before protocol to check: the pairing and protocol
//!   rules skip it. Weakening a `Release` store on a real protocol
//!   still trips `atomics-unpaired`, because the Acquire loads remain.
//! - `#[cfg(test)]` code is exempt, like every other cocolint rule.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::rules::Finding;
use std::collections::HashMap;

/// Atomic method names that take `Ordering` arguments.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Memory orderings, in no particular strength order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Order {
    fn parse(s: &str) -> Option<Order> {
        Some(match s {
            "Relaxed" => Order::Relaxed,
            "Acquire" => Order::Acquire,
            "Release" => Order::Release,
            "AcqRel" => Order::AcqRel,
            "SeqCst" => Order::SeqCst,
            _ => return None,
        })
    }

    fn acquires(self) -> bool {
        matches!(self, Order::Acquire | Order::AcqRel | Order::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, Order::Release | Order::AcqRel | Order::SeqCst)
    }
}

/// Access shapes, for deciding which side(s) of an edge a site is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Load,
    Store,
    /// `swap`/`fetch_*`: both a load and a store at one ordering.
    Rmw,
    /// `compare_exchange[_weak]`: orderings are (success, failure).
    Cas,
}

/// One classified atomic access site.
#[derive(Debug)]
struct Access {
    file: usize,
    line: u32,
    field: String,
    op: OpKind,
    method: String,
    orders: Vec<Order>,
}

impl Access {
    /// This site synchronizes-from a release store (acquire side).
    fn is_acquire_load(&self) -> bool {
        match self.op {
            OpKind::Store => false,
            _ => self.orders.iter().any(|o| o.acquires()),
        }
    }

    /// This site can head a synchronizes-with edge (release side).
    fn is_release_store(&self) -> bool {
        match self.op {
            OpKind::Load => false,
            // CAS: only the success ordering applies to the store.
            OpKind::Cas => self.orders.first().is_some_and(|o| o.releases()),
            _ => self.orders.iter().any(|o| o.releases()),
        }
    }

    /// A store/RMW whose write is unordered (needs `LINT: relaxed`
    /// when the field is Acquire-loaded elsewhere). CAS is exempt —
    /// see the module docs on the election idiom.
    fn is_relaxed_store(&self) -> bool {
        match self.op {
            OpKind::Load | OpKind::Cas => false,
            OpKind::Store => self.orders.contains(&Order::Relaxed),
            OpKind::Rmw => self.orders.contains(&Order::Relaxed),
        }
    }

    fn has_seqcst(&self) -> bool {
        self.orders.contains(&Order::SeqCst)
    }
}

/// One discovered atomic declaration.
#[derive(Debug)]
struct Decl {
    file: usize,
    line: u32,
    field: String,
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(toks[j].kind, TokKind::Comment(_)))
}

fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !matches!(toks[i].kind, TokKind::Comment(_)) {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Walk back from the `.` before a method name to the receiver chain's
/// last plain identifier: `self.sides[idx].readers.fetch_add` →
/// `readers`, `self.head.0.load` → `head` (tuple projections and index
/// groups are skipped).
fn receiver_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = prev_code(toks, dot)?;
    loop {
        match &toks[j].kind {
            TokKind::Ident(s) => return Some(s.clone()),
            // `.0` tuple projection: hop over it and its own dot.
            TokKind::Num(_) => {
                let d = prev_code(toks, j)?;
                if !is_punct(&toks[d], '.') {
                    return None;
                }
                j = prev_code(toks, d)?;
            }
            // `xs[i].load(...)`: skip the bracket group.
            TokKind::Punct(']') => {
                let mut depth = 1usize;
                let mut i2 = j;
                while depth > 0 && i2 > 0 {
                    i2 -= 1;
                    match toks[i2].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                j = prev_code(toks, i2)?;
            }
            _ => return None,
        }
    }
}

/// Scan one file for atomic access sites (test spans excluded).
fn access_sites(graph: &CallGraph, file_idx: usize) -> Vec<Access> {
    let file = &graph.files[file_idx];
    let toks = &file.toks;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let Some(m) = ident(&toks[k]) else { continue };
        if !ATOMIC_METHODS.contains(&m) {
            continue;
        }
        let Some(p) = prev_code(toks, k) else {
            continue;
        };
        if !is_punct(&toks[p], '.') {
            continue;
        }
        let Some(open) = next_code(toks, k + 1) else {
            continue;
        };
        if !is_punct(&toks[open], '(') {
            continue;
        }
        if in_spans(&file.test_spans, toks[k].line) {
            continue;
        }
        // Argument window to the matching `)`: collect `Ordering::X`.
        let mut orders = Vec::new();
        let mut depth = 1usize;
        let mut j = open + 1;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => depth -= 1,
                TokKind::Ident(s) if s == "Ordering" => {
                    // `Ordering :: X`
                    if let Some(c1) = next_code(toks, j + 1) {
                        if is_punct(&toks[c1], ':') {
                            if let Some(c2) = next_code(toks, c1 + 1) {
                                if is_punct(&toks[c2], ':') {
                                    if let Some(oi) = next_code(toks, c2 + 1) {
                                        if let Some(o) = ident(&toks[oi]).and_then(Order::parse) {
                                            orders.push(o);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if orders.is_empty() {
            continue; // not an atomic access (no Ordering argument)
        }
        let Some(field) = receiver_name(toks, p) else {
            continue;
        };
        let op = match m {
            "load" => OpKind::Load,
            "store" => OpKind::Store,
            "compare_exchange" | "compare_exchange_weak" => OpKind::Cas,
            _ => OpKind::Rmw,
        };
        out.push(Access {
            file: file_idx,
            line: toks[k].line,
            field,
            op,
            method: m.to_string(),
            orders,
        });
    }
    out
}

/// Scan one file for atomic declarations: `name: ...Atomic*...` (struct
/// fields, fn params, struct-literal inits) and `let name = ...Atomic*`
/// bindings. Test spans excluded.
fn declarations(graph: &CallGraph, file_idx: usize) -> Vec<Decl> {
    let file = &graph.files[file_idx];
    let toks = &file.toks;
    /// How many code tokens after the `:`/`=` may separate the name
    /// from its `Atomic*` type (`CachePadded<AtomicUsize>`,
    /// `Arc<AtomicBool>`, `sync::AtomicUsize::new(...)`).
    const TYPE_WINDOW: usize = 8;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let Some(name) = ident(&toks[k]) else {
            continue;
        };
        if in_spans(&file.test_spans, toks[k].line) {
            continue;
        }
        let start = if name == "let" {
            // `let name = ...`
            let Some(ni) = next_code(toks, k + 1) else {
                continue;
            };
            let Some(_bound) = ident(&toks[ni]) else {
                continue;
            };
            let Some(eq) = next_code(toks, ni + 1) else {
                continue;
            };
            if !is_punct(&toks[eq], '=') {
                continue;
            }
            Some((ni, eq + 1))
        } else {
            // `name : Type`
            let Some(ci) = next_code(toks, k + 1) else {
                continue;
            };
            if !is_punct(&toks[ci], ':') {
                continue;
            }
            // `name ::` is a path, not a declaration.
            if next_code(toks, ci + 1).is_some_and(|n| is_punct(&toks[n], ':')) {
                continue;
            }
            Some((k, ci + 1))
        };
        let Some((name_i, mut j)) = start else {
            continue;
        };
        let mut seen = 0usize;
        let mut is_atomic = false;
        while seen < TYPE_WINDOW {
            let Some(ji) = next_code(toks, j) else { break };
            match &toks[ji].kind {
                TokKind::Punct(',')
                | TokKind::Punct(';')
                | TokKind::Punct('{')
                | TokKind::Punct('}')
                | TokKind::Punct(')') => break,
                TokKind::Ident(s) if s.starts_with("Atomic") => {
                    is_atomic = true;
                    break;
                }
                _ => {}
            }
            seen += 1;
            j = ji + 1;
        }
        if is_atomic {
            let field = ident(&toks[name_i]).unwrap_or_default().to_string();
            out.push(Decl {
                file: file_idx,
                line: toks[name_i].line,
                field,
            });
        }
    }
    out
}

/// Run the atomics pass. `test_fns` maps crate name → every `fn` name
/// found in that crate's sources and tests (for the protocol ↔ model
/// linkage). `Err` is configuration rot (a protocol naming a missing
/// crate/field/model), which must fail the run louder than findings.
pub fn check(
    graph: &CallGraph,
    cfg: &Config,
    test_fns: &HashMap<String, Vec<String>>,
) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();

    // Per-crate access sites and declarations over lock_free crates;
    // marker-rot scanning covers every parsed file regardless of tier
    // (an annotation in a non-lock-free crate would otherwise rot
    // silently).
    let mut accesses: Vec<Access> = Vec::new();
    let mut decls: Vec<Decl> = Vec::new();
    for (file_idx, file) in graph.files.iter().enumerate() {
        let sites = access_sites(graph, file_idx);
        // Annotation rot: every relaxed/seqcst marker must still cover
        // a matching access.
        for marker in &file.relaxed_markers {
            let hit = sites
                .iter()
                .any(|a| a.is_relaxed_store() && marker.covers.contains(&a.line));
            if !hit {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: marker.line,
                    rule: "atomics-unused-marker",
                    message: "`// LINT: relaxed(...)` covers no Relaxed atomic store — \
                              the access moved or changed; remove or re-site the marker"
                        .to_string(),
                    chain: None,
                });
            }
        }
        for marker in &file.seqcst_markers {
            let hit = sites
                .iter()
                .any(|a| a.has_seqcst() && marker.covers.contains(&a.line));
            if !hit {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: marker.line,
                    rule: "atomics-unused-marker",
                    message: "`// LINT: seqcst(...)` covers no SeqCst atomic access — \
                              the access moved or changed; remove or re-site the marker"
                        .to_string(),
                    chain: None,
                });
            }
        }
        if cfg.lock_free.contains(&file.crate_name) {
            accesses.extend(sites);
            decls.extend(declarations(graph, file_idx));
        }
    }

    // Group accesses by (crate, field name).
    let mut groups: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (i, a) in accesses.iter().enumerate() {
        let krate = graph.files[a.file].crate_name.clone();
        groups.entry((krate, a.field.clone())).or_default().push(i);
    }

    // Pairing, relaxed-store, and seqcst rules per group.
    let mut group_keys: Vec<&(String, String)> = groups.keys().collect();
    group_keys.sort();
    for key in &group_keys {
        let sites = &groups[*key];
        let (krate, field) = (&key.0, &key.1);
        let has_acquire = sites.iter().any(|&i| accesses[i].is_acquire_load());
        let has_release = sites.iter().any(|&i| accesses[i].is_release_store());
        if has_acquire && !has_release {
            let at = sites
                .iter()
                .map(|&i| &accesses[i])
                .find(|a| a.is_acquire_load())
                .expect("has_acquire implies a site");
            findings.push(Finding {
                file: graph.files[at.file].path.clone(),
                line: at.line,
                rule: "atomics-unpaired",
                message: format!(
                    "`{field}` ({krate}) is Acquire-loaded but has no Release-or-stronger \
                     store anywhere — the load synchronizes with nothing; strengthen the \
                     store side or relax the load"
                ),
                chain: None,
            });
        }
        if has_release && !has_acquire {
            let at = sites
                .iter()
                .map(|&i| &accesses[i])
                .find(|a| a.is_release_store())
                .expect("has_release implies a site");
            findings.push(Finding {
                file: graph.files[at.file].path.clone(),
                line: at.line,
                rule: "atomics-unpaired",
                message: format!(
                    "`{field}` ({krate}) is Release-stored but never Acquire-loaded — \
                     nothing synchronizes with the store; strengthen the load side or \
                     relax the store"
                ),
                chain: None,
            });
        }
        if has_acquire {
            for &i in sites.iter() {
                let a = &accesses[i];
                if !a.is_relaxed_store() {
                    continue;
                }
                let file = &graph.files[a.file];
                let annotated = file
                    .relaxed_markers
                    .iter()
                    .any(|m| m.covers.contains(&a.line));
                if !annotated {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: a.line,
                        rule: "atomics-relaxed-store",
                        message: format!(
                            "Relaxed `{}` to `{field}` ({krate}), which is Acquire-loaded \
                             elsewhere — readers may never observe this write's effects in \
                             order; use Release, or annotate with `// LINT: relaxed(reason)`",
                            a.method
                        ),
                        chain: None,
                    });
                }
            }
        }
        for &i in sites.iter() {
            let a = &accesses[i];
            if !a.has_seqcst() {
                continue;
            }
            let file = &graph.files[a.file];
            let annotated = file
                .seqcst_markers
                .iter()
                .any(|m| m.covers.contains(&a.line));
            if !annotated {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: a.line,
                    rule: "atomics-seqcst",
                    message: format!(
                        "SeqCst `{}` on `{field}` ({krate}) without justification — \
                         SeqCst is only needed for store-buffering edges; document the \
                         edge with `// LINT: seqcst(reason)` or weaken the ordering",
                        a.method
                    ),
                    chain: None,
                });
            }
        }
    }

    // Protocol table validation (fatal: rot must not pass silently).
    for p in &cfg.protocols {
        if !cfg.lock_free.contains(&p.krate) {
            return Err(format!(
                "lint.toml:{}: [[atomics.protocol]] `{}` names crate `{}` which is not in \
                 the lock_free tier",
                p.line, p.name, p.krate
            ));
        }
        for field in &p.fields {
            let declared = decls
                .iter()
                .any(|d| graph.files[d.file].crate_name == p.krate && &d.field == field);
            if !declared {
                return Err(format!(
                    "lint.toml:{}: [[atomics.protocol]] `{}` names atomic field `{}` which \
                     is not declared in crate `{}` — remove or fix it (protocol rot)",
                    p.line, p.name, field, p.krate
                ));
            }
        }
        let model_exists = test_fns
            .get(&p.krate)
            .is_some_and(|fns| fns.iter().any(|f| f == &p.model));
        if !model_exists {
            return Err(format!(
                "lint.toml:{}: [[atomics.protocol]] `{}` names model test `{}` which does \
                 not exist in crate `{}` — the protocol is unverified (allowlist rot)",
                p.line, p.name, p.model, p.krate
            ));
        }
    }

    // Protocol membership: every field with real acquire/release edges
    // must belong to a named protocol.
    let mut seen_fields: Vec<(String, String)> = Vec::new();
    for d in &decls {
        let krate = graph.files[d.file].crate_name.clone();
        let key = (krate.clone(), d.field.clone());
        if seen_fields.contains(&key) {
            continue;
        }
        seen_fields.push(key.clone());
        let Some(sites) = groups.get(&key) else {
            continue; // declared but never accessed: dead code, not ours
        };
        let has_edges = sites.iter().any(|&i| accesses[i].is_acquire_load())
            || sites.iter().any(|&i| accesses[i].is_release_store());
        if !has_edges {
            continue; // pure Relaxed counters carry no protocol
        }
        let member = cfg
            .protocols
            .iter()
            .any(|p| p.krate == krate && p.fields.iter().any(|f| f == &d.field));
        if !member {
            findings.push(Finding {
                file: graph.files[d.file].path.clone(),
                line: d.line,
                rule: "atomics-protocol",
                message: format!(
                    "atomic `{}` ({krate}) participates in acquire/release edges but \
                     belongs to no [[atomics.protocol]] — add it to a named protocol in \
                     lint.toml with the model test that verifies it",
                    d.field
                ),
                chain: None,
            });
        }
    }

    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::config::Config;

    fn lock_free_graph(src: &str) -> (CallGraph, Config) {
        let mut g = CallGraph::default();
        crate::callgraph::parse_file(&mut g, "lf", "crates/lf/src/lib.rs", src);
        let cfg = Config {
            lock_free: vec!["lf".to_string()],
            ..Config::default()
        };
        (g, cfg)
    }

    fn run(src: &str) -> Vec<Finding> {
        let (g, cfg) = lock_free_graph(src);
        check(&g, &cfg, &HashMap::new()).unwrap()
    }

    #[test]
    fn paired_acquire_release_is_clean_but_needs_protocol() {
        let f = run("struct S { state: AtomicUsize }\n\
             impl S {\n\
                 fn get(&self) -> usize { self.state.load(Ordering::Acquire) }\n\
                 fn set(&self, v: usize) { self.state.store(v, Ordering::Release); }\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "atomics-protocol");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn acquire_without_release_store_is_unpaired() {
        let f = run("struct S { state: AtomicUsize }\n\
             impl S {\n\
                 fn get(&self) -> usize { self.state.load(Ordering::Acquire) }\n\
                 fn set(&self, v: usize) { self.state.store(v, Ordering::Relaxed); }\n\
             }\n");
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"atomics-unpaired"), "{f:#?}");
        assert!(rules.contains(&"atomics-relaxed-store"), "{f:#?}");
        let unpaired = f.iter().find(|x| x.rule == "atomics-unpaired").unwrap();
        assert_eq!(unpaired.line, 3);
    }

    #[test]
    fn annotated_relaxed_store_is_accepted() {
        let f = run(
            "struct S { state: AtomicUsize, hint: AtomicUsize }\n\
             impl S {\n\
                 fn get(&self) -> usize { self.hint.load(Ordering::Acquire) }\n\
                 fn warm(&self) {\n\
                     self.hint.store(1, Ordering::Release);\n\
                     self.hint.store(0, Ordering::Relaxed); // LINT: relaxed(hint only, re-read with Acquire before use)\n\
                 }\n\
             }\n",
        );
        assert!(
            f.iter().all(|x| x.rule != "atomics-relaxed-store"),
            "{f:#?}"
        );
    }

    #[test]
    fn pure_relaxed_counters_are_exempt() {
        let f = run("struct S { hits: AtomicU64 }\n\
             impl S {\n\
                 fn hit(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
                 fn stats(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n\
             }\n");
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn seqcst_needs_annotation() {
        let f = run("struct S { idx: AtomicUsize }\n\
             impl S {\n\
                 fn flip(&self) { self.idx.store(1, Ordering::SeqCst); }\n\
                 // LINT: seqcst(store-buffering edge vs. the flip)\n\
                 fn re(&self) -> usize { self.idx.load(Ordering::SeqCst) }\n\
             }\n");
        // Marker above `fn re` covers lines 4-5, not the load on 5...
        // the load sits on line 5 which IS covered (standalone covers
        // own line + next): only the un-annotated store on line 3
        // should fire.
        let seq: Vec<u32> = f
            .iter()
            .filter(|x| x.rule == "atomics-seqcst")
            .map(|x| x.line)
            .collect();
        assert_eq!(seq, vec![3], "{f:#?}");
    }

    #[test]
    fn unused_ordering_markers_are_rot() {
        let f = run("// LINT: seqcst(nothing here any more)\n\
             fn idle() {}\n\
             // LINT: relaxed(stale)\n\
             fn also_idle() {}\n");
        let rot: Vec<u32> = f
            .iter()
            .filter(|x| x.rule == "atomics-unused-marker")
            .map(|x| x.line)
            .collect();
        assert_eq!(rot, vec![3, 1], "{f:#?}");
    }

    #[test]
    fn cas_election_idiom_is_not_a_relaxed_store() {
        let f = run(
            "struct S { state: AtomicUsize }\n\
             impl S {\n\
                 fn probe(&self) -> usize { self.state.load(Ordering::Acquire) }\n\
                 fn claim(&self) -> bool {\n\
                     self.state.compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed).is_ok()\n\
                 }\n\
                 fn publish(&self) { self.state.store(2, Ordering::Release); }\n\
             }\n",
        );
        assert!(
            f.iter().all(|x| x.rule != "atomics-relaxed-store"),
            "{f:#?}"
        );
        assert!(f.iter().all(|x| x.rule != "atomics-unpaired"), "{f:#?}");
    }

    #[test]
    fn receiver_attribution_walks_chains() {
        let f = run(
            "struct Shared { sides: [Side; 2], read_idx: AtomicUsize }\n\
             struct Side { readers: AtomicUsize }\n\
             impl Shared {\n\
                 fn pin(&self) -> usize {\n\
                     let idx = self.read_idx.load(Ordering::Acquire);\n\
                     self.sides[idx].readers.fetch_add(1, Ordering::Release);\n\
                     idx\n\
                 }\n\
                 fn drain(&self, idx: usize) -> usize {\n\
                     self.read_idx.store(idx, Ordering::Release);\n\
                     self.sides[idx].readers.load(Ordering::Acquire)\n\
                 }\n\
             }\n",
        );
        // Both fields are paired; only protocol membership fires.
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(
            rules,
            vec!["atomics-protocol", "atomics-protocol"],
            "{f:#?}"
        );
    }

    #[test]
    fn protocol_membership_and_model_linkage() {
        let src = "struct S { state: AtomicUsize }\n\
             impl S {\n\
                 fn get(&self) -> usize { self.state.load(Ordering::Acquire) }\n\
                 fn set(&self, v: usize) { self.state.store(v, Ordering::Release); }\n\
             }\n";
        let (g, mut cfg) = lock_free_graph(src);
        cfg.protocols.push(crate::config::ProtocolEntry {
            name: "demo".to_string(),
            krate: "lf".to_string(),
            fields: vec!["state".to_string()],
            model: "state_handoff_is_race_free".to_string(),
            line: 1,
        });
        // Model test missing: fatal rot.
        let err = check(&g, &cfg, &HashMap::new()).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        // Model present: clean.
        let mut tests = HashMap::new();
        tests.insert(
            "lf".to_string(),
            vec!["state_handoff_is_race_free".to_string()],
        );
        let f = check(&g, &cfg, &tests).unwrap();
        assert!(f.is_empty(), "{f:#?}");
        // Protocol naming an unknown field: fatal rot.
        cfg.protocols[0].fields = vec!["missing".to_string()];
        let err = check(&g, &cfg, &tests).unwrap_err();
        assert!(err.contains("not declared"), "{err}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\n\
             mod tests {\n\
                 fn t() {\n\
                     let stop = AtomicBool::new(false);\n\
                     stop.store(true, Ordering::SeqCst);\n\
                 }\n\
             }\n");
        assert!(f.is_empty(), "{f:#?}");
    }
}

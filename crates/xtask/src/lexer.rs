//! A lightweight Rust tokenizer for lint rules.
//!
//! Token-level scanning is the robustness sweet spot for this kind of
//! lint: plain text/regex matching misfires inside strings and
//! comments ("a doc comment mentioning `unwrap()`"), while a full
//! parser is a dependency the offline build cannot take. The lexer
//! understands exactly what is needed to never misclassify code:
//! line and nested block comments (captured, so the safety-comment
//! rule can read them), string/char/byte/raw-string literals,
//! lifetimes vs char literals, identifiers, and punctuation.

/// What a token is; only the distinctions the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// Comment (line or block), with its full text.
    Comment(String),
    /// String/char/byte literal (contents irrelevant to the rules).
    Literal,
    /// Numeric literal, with its source text (the overflow/division
    /// rules need to distinguish `0`, nonzero, and float literals).
    Num(String),
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Tokenize `src`. Unterminated constructs consume to end of input
/// rather than erroring: the lint runs on code rustc already accepted,
/// so graceful degradation beats failure.
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == '\n')
                    .map(|p| i + p)
                    .unwrap_or(chars.len());
                toks.push(Token {
                    kind: TokKind::Comment(chars[i..end].iter().collect()),
                    line: start_line,
                });
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += count_lines(&chars[i..j]);
                toks.push(Token {
                    kind: TokKind::Comment(chars[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let j = scan_string(&chars, i + 1);
                line += count_lines(&chars[i..j]);
                toks.push(Token {
                    kind: TokKind::Literal,
                    line: start_line,
                });
                i = j;
            }
            'r' | 'b' if is_literal_prefix(&chars, i) => {
                let j = scan_prefixed_literal(&chars, i);
                line += count_lines(&chars[i..j]);
                toks.push(Token {
                    kind: TokKind::Literal,
                    line: start_line,
                });
                i = j;
            }
            // Raw identifier `r#ident`: one identifier token carrying
            // the full `r#` spelling so it can never collide with a
            // keyword the rules look for (`r#fn` is not `fn`).
            'r' if chars.get(i + 1) == Some(&'#')
                && chars
                    .get(i + 2)
                    .is_some_and(|c| c.is_alphabetic() || *c == '_') =>
            {
                let mut j = i + 2;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident(chars[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            '\'' => {
                // Lifetime iff an identifier follows and is NOT closed
                // by another quote ('a vs 'a').
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let is_lifetime = j > i + 1 && chars.get(j) != Some(&'\'');
                if is_lifetime {
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        line: start_line,
                    });
                    i = j;
                } else {
                    let j = scan_char(&chars, i + 1);
                    line += count_lines(&chars[i..j]);
                    toks.push(Token {
                        kind: TokKind::Literal,
                        line: start_line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident(chars[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() {
                    let d = chars[j];
                    let continues = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()))
                        || ((d == '+' || d == '-')
                            && matches!(chars.get(j - 1), Some('e') | Some('E')));
                    if !continues {
                        break;
                    }
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Num(chars[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            c => {
                toks.push(Token {
                    kind: TokKind::Punct(c),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// True when position `i` (at `r` or `b`) starts a raw/byte literal
/// rather than an identifier.
fn is_literal_prefix(chars: &[char], i: usize) -> bool {
    match chars[i] {
        'r' => {
            matches!(chars.get(i + 1), Some('"') | Some('#')) && raw_hashes_then_quote(chars, i + 1)
        }
        'b' => match chars.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => raw_hashes_then_quote(chars, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// From `start`, skip `#`s and require a `"` (the raw-string opener).
fn raw_hashes_then_quote(chars: &[char], start: usize) -> bool {
    let mut j = start;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Scan past a non-raw string body starting after the opening quote;
/// returns the index just past the closing quote.
fn scan_string(chars: &[char], mut j: usize) -> usize {
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Scan past a char/byte-char literal body; returns the index just
/// past the closing quote.
fn scan_char(chars: &[char], mut j: usize) -> usize {
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Scan a literal with an `r`/`b`/`br` prefix starting at `i`; returns
/// the index just past it.
///
/// Raw strings (any prefix containing `r`) have **no escape
/// processing**: `r"\"` is a complete string holding one backslash.
/// Routing them through the escape-aware [`scan_string`] would let a
/// trailing backslash swallow the rest of the file — and with it any
/// `unwrap()`/`panic!` tokens the rules should have seen.
fn scan_prefixed_literal(chars: &[char], i: usize) -> usize {
    let mut j = i;
    let mut raw = false;
    while matches!(chars.get(j), Some('r') | Some('b')) {
        raw |= chars[j] == 'r';
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    match chars.get(j) {
        Some('"') if raw => {
            // Raw string: no escapes; ends at `"` followed by exactly
            // `hashes` hashes (zero hashes: the very next quote).
            j += 1;
            while j < chars.len() {
                if chars[j] == '"'
                    && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                {
                    return j + 1 + hashes;
                }
                j += 1;
            }
            j
        }
        Some('"') => scan_string(chars, j + 1),
        Some('\'') => scan_char(chars, j + 1),
        _ => j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_idents() {
        let src = r###"
            let x = "unsafe unwrap()";
            // unsafe in a comment
            /* unwrap() in /* a nested */ block */
            let y = r#"panic!()"#;
            call();
        "###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y", "call"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb\nc */\nfn f() {}\n\"x\ny\"\nend";
        let toks = tokenize(src);
        let f = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("fn".into()))
            .unwrap();
        assert_eq!(f.line, 4);
        let end = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("end".into()))
            .unwrap();
        assert_eq!(end.line, 7);
    }

    #[test]
    fn raw_string_backslash_does_not_swallow_following_code() {
        // `r"\"` is a complete raw string (one backslash); the escape-
        // aware scanner used to treat `\"` as an escaped quote and
        // consume to end of input, hiding the unwrap from the rules.
        let src = "let re = r\"\\\"; x.unwrap();";
        assert_eq!(idents(src), vec!["let", "re", "x", "unwrap"]);
        // Same for byte-raw strings.
        let src = "let re = br\"\\\"; x.unwrap();";
        assert_eq!(idents(src), vec!["let", "re", "x", "unwrap"]);
    }

    #[test]
    fn zero_hash_raw_string_hides_panic_tokens() {
        let src = r#"let s = r"panic!() unwrap()"; go();"#;
        assert_eq!(idents(src), vec!["let", "s", "go"]);
    }

    #[test]
    fn hashed_raw_strings_end_only_at_matching_hashes() {
        // The `"#` inside the body has too few hashes to close.
        let src = "let s = r##\"inner \"# unwrap()\"##; done();";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments_hide_panic_tokens() {
        let src = "/* outer /* panic!() */ still /* deep */ comment */ call();";
        assert_eq!(idents(src), vec!["call"]);
    }

    #[test]
    fn raw_identifiers_do_not_alias_keywords() {
        let toks = tokenize("let r#fn = r#match;");
        let ids: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec!["let", "r#fn", "r#match"]);
    }

    #[test]
    fn num_tokens_carry_their_text() {
        let toks = tokenize("a / 0; b % 32; c / 2.5");
        let nums: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "32", "2.5"]);
    }

    #[test]
    fn comments_keep_their_text() {
        let toks = tokenize("// SAFETY: fine\nunsafe {}");
        assert!(matches!(
            &toks[0].kind,
            TokKind::Comment(c) if c.contains("SAFETY:")
        ));
    }
}

//! Workspace discovery: find member crates and their Rust sources
//! without depending on cargo metadata (offline, zero deps).

use std::path::{Path, PathBuf};

/// One workspace member.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (what `lint.toml` tiers name).
    pub name: String,
    /// Crate directory, relative to the workspace root.
    pub dir: PathBuf,
    /// Direct dependency names from `[dependencies]` (the call-graph
    /// resolver only lets a crate call into crates it depends on).
    pub deps: Vec<String>,
}

impl CrateInfo {
    /// The crate-root source file (`src/lib.rs`, else `src/main.rs`),
    /// relative to the workspace root; `None` for manifest-only dirs.
    pub fn root_file(&self, workspace_root: &Path) -> Option<PathBuf> {
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let rel = self.dir.join(candidate);
            if workspace_root.join(&rel).is_file() {
                return Some(rel);
            }
        }
        None
    }
}

/// Discover member crates by globbing `crates/*/Cargo.toml` (the shape
/// this workspace's root manifest declares).
pub fn discover(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let manifest = entry.path().join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        let name = package_name(&text)
            .ok_or_else(|| format!("{}: no `name = \"...\"` in [package]", manifest.display()))?;
        found.push(CrateInfo {
            name,
            dir: PathBuf::from("crates").join(entry.file_name()),
            deps: dependency_names(&text),
        });
    }
    found.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(found)
}

/// Extract `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if key.trim() == "name" {
                let v = value.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Dependency names from every `[dependencies]` /
/// `[dev-dependencies]` / `[build-dependencies]` section of a
/// manifest. Dev-deps are included because the call graph also walks
/// test helpers; over-approximating the dep set only widens candidate
/// resolution, never hides an edge.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut in_deps = false;
    let mut deps = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]"
                || line == "[dev-dependencies]"
                || line == "[build-dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, _)) = line.split_once('=') {
            deps.push(key.trim().trim_matches('"').to_string());
        }
    }
    deps.sort();
    deps.dedup();
    deps
}

/// All `.rs` files of a crate, relative to the workspace root, split
/// into (src, other) where `other` covers `tests/`, `benches/`, and
/// `examples/`. Directories named `fixtures` or `target` are skipped —
/// lint fixtures contain violations on purpose.
pub fn rust_files(root: &Path, krate: &CrateInfo) -> (Vec<PathBuf>, Vec<PathBuf>) {
    let mut src = Vec::new();
    let mut other = Vec::new();
    for (sub, bucket) in [
        ("src", 0usize),
        ("tests", 1),
        ("benches", 1),
        ("examples", 1),
    ] {
        let dir = root.join(&krate.dir).join(sub);
        if dir.is_dir() {
            let mut files = Vec::new();
            walk(&dir, &mut files);
            for f in files {
                let rel = f.strip_prefix(root).unwrap_or(&f).to_path_buf();
                if bucket == 0 {
                    src.push(rel);
                } else {
                    other.push(rel);
                }
            }
        }
    }
    src.sort();
    other.sort();
    (src, other)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "fixtures" && name != "target" {
                walk(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

//! `cocolint`: the workspace's static-analysis pass.
//!
//! Zero-dependency by design (the workspace builds offline): a small
//! Rust tokenizer ([`lexer`]), a TOML-subset policy reader ([`config`],
//! for `lint.toml` at the workspace root), a workspace walker
//! ([`workspace`]), and token-level rules ([`rules`]). Run as
//! `cargo run -p xtask -- lint`; CI and `scripts/verify.sh` treat any
//! finding as a failure.
//!
//! Policy overview (details in DESIGN.md, "Static analysis & model
//! checking"):
//! - every `unsafe` block anywhere carries a `// SAFETY:` argument;
//! - the data-plane crates (`lint.toml`'s `data_plane`) are panic-free,
//!   wall-clock-free, and use deterministic hashing in non-test code;
//! - crate roots carry the lint attributes their tier requires;
//! - exemptions live in `lint.toml` `[[allow]]` entries, each with a
//!   mandatory written reason, and an exemption that no longer
//!   suppresses anything is itself an error (allowlists must not rot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod durability;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod workspace;

use rules::Finding;
use std::path::Path;
use std::time::{Duration, Instant};

/// Wall-clock spent in each lint phase, for `--timings` and for
/// keeping `scripts/verify.sh`'s lint budget honest.
#[derive(Debug, Default)]
pub struct PassTimings {
    /// Per-file token rules (safety comments, tier rules, crate attrs).
    pub per_file: Duration,
    /// Call-graph construction.
    pub callgraph: Duration,
    /// Interprocedural dataflow (panic/overflow/hot-alloc/markers).
    pub dataflow: Duration,
    /// Atomic-ordering protocol checker.
    pub atomics: Duration,
    /// Untrusted-input taint analysis.
    pub taint: Duration,
    /// Durability-protocol checker (commit funnels, fsync pairing,
    /// dropped `io::Result`s, lock discipline).
    pub durability: Duration,
}

impl PassTimings {
    /// Render one line per phase, `name<TAB>millis`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, d) in [
            ("per-file", self.per_file),
            ("callgraph", self.callgraph),
            ("dataflow", self.dataflow),
            ("atomics", self.atomics),
            ("taint", self.taint),
            ("durability", self.durability),
        ] {
            out.push_str(&format!("{name}\t{:.1}ms\n", d.as_secs_f64() * 1e3));
        }
        out
    }
}

/// Run the full lint over the workspace at `root` (the directory
/// containing `lint.toml` and `crates/`). Returns surviving findings;
/// `Err` is reserved for configuration/IO failures, which must fail
/// the run louder than any finding.
pub fn run_lint(root: &Path) -> Result<Vec<Finding>, String> {
    run_lint_with_timings(root).map(|(f, _)| f)
}

/// [`run_lint`], also reporting per-phase wall-clock timings.
pub fn run_lint_with_timings(root: &Path) -> Result<(Vec<Finding>, PassTimings), String> {
    let cfg_text = std::fs::read_to_string(root.join("lint.toml"))
        .map_err(|e| format!("cannot read lint.toml: {e}"))?;
    let cfg = config::parse(&cfg_text)?;
    let crates = workspace::discover(root)?;

    let known: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
    for tier in [
        &cfg.data_plane,
        &cfg.forbid_unsafe,
        &cfg.deny_unsafe,
        &cfg.lock_free,
        &cfg.durability_crates,
    ] {
        for name in tier {
            if !known.contains(&name.as_str()) {
                return Err(format!(
                    "lint.toml names unknown crate `{name}` (workspace has: {})",
                    known.join(", ")
                ));
            }
        }
    }
    for name in &cfg.forbid_unsafe {
        if cfg.deny_unsafe.contains(name) {
            return Err(format!(
                "lint.toml lists `{name}` in both forbid_unsafe and deny_unsafe"
            ));
        }
    }

    let mut timings = PassTimings::default();
    let mut findings = Vec::new();
    // (file, line) pairs the per-file panic-path rule reports; the
    // transitive rule skips them so one unwrap is never two findings.
    let mut panic_path_sites: Vec<(String, u32)> = Vec::new();
    // crate name -> every fn name in its sources AND tests/benches,
    // for the atomics pass's protocol <-> model-test linkage (loom
    // models live under tests/, which the call graph does not parse).
    let mut test_fns: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    let t0 = Instant::now();
    for krate in &crates {
        let (src_files, other_files) = workspace::rust_files(root, krate);
        let is_data_plane = cfg.data_plane.contains(&krate.name);
        let is_lock_free = cfg.lock_free.contains(&krate.name);
        for rel in src_files.iter().chain(other_files.iter()) {
            let text = std::fs::read_to_string(root.join(rel))
                .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
            let toks = lexer::tokenize(&text);
            let name = rel.to_string_lossy().replace('\\', "/");
            {
                let fns = test_fns.entry(krate.name.clone()).or_default();
                for (i, t) in toks.iter().enumerate() {
                    if let lexer::TokKind::Ident(s) = &t.kind {
                        if s == "fn" {
                            if let Some(lexer::TokKind::Ident(fname)) =
                                toks.get(i + 1).map(|t| &t.kind)
                            {
                                fns.push(fname.clone());
                            }
                        }
                    }
                }
            }
            findings.extend(rules::safety_comment(&name, &toks));
            if is_data_plane && src_files.contains(rel) {
                let dp = rules::data_plane_rules(rel, &toks);
                panic_path_sites.extend(
                    dp.iter()
                        .filter(|f| f.rule == "panic-path")
                        .map(|f| (f.file.clone(), f.line)),
                );
                findings.extend(dp);
            }
            if is_lock_free && src_files.contains(rel) {
                findings.extend(rules::lock_free_rules(rel, &toks));
            }
        }
        // Crate-root attributes per tier.
        if let Some(rel) = krate.root_file(root) {
            let text = std::fs::read_to_string(root.join(&rel))
                .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
            let toks = lexer::tokenize(&text);
            let name = rel.to_string_lossy().replace('\\', "/");
            let mut need: Vec<(&str, &str)> = Vec::new();
            if cfg.forbid_unsafe.contains(&krate.name) {
                need.push(("forbid", "unsafe_code"));
            }
            if cfg.deny_unsafe.contains(&krate.name) {
                need.push(("deny", "unsafe_code"));
            }
            if is_data_plane {
                need.push(("deny", "unsafe_op_in_unsafe_fn"));
                need.push(("warn", "missing_docs"));
            }
            for (level, lint_name) in need {
                findings.extend(rules::require_crate_attr(&name, &toks, level, lint_name));
            }
        }
    }

    timings.per_file = t0.elapsed();

    // Interprocedural pass: build the workspace call graph once, then
    // run the dataflow rules over it.
    let t0 = Instant::now();
    let graph = callgraph::build(root, &crates)?;
    timings.callgraph = t0.elapsed();
    let df_cfg = dataflow::DataflowConfig {
        data_plane: cfg.data_plane.clone(),
        counters: cfg.overflow_counters.clone(),
        hot_extra: cfg.hot_extra.clone(),
    };
    // A `[hot] extra` suffix naming no workspace fn is rot — the fn
    // was renamed or removed and the policy silently stopped applying.
    for suffix in &cfg.hot_extra {
        let hits = graph.fns.iter().any(|f| {
            f.qualified.ends_with(suffix.as_str())
                && f.qualified[..f.qualified.len() - suffix.len()].ends_with("::")
        });
        if !hits {
            return Err(format!(
                "lint.toml [hot] extra entry `{suffix}` matches no workspace fn — remove or fix it"
            ));
        }
    }
    let covered = |file: &str, line: u32| {
        panic_path_sites
            .iter()
            .any(|(f, l)| f == file && *l == line)
    };
    let t0 = Instant::now();
    findings.extend(dataflow::transitive_panic(&graph, &df_cfg, &covered));
    findings.extend(dataflow::overflow(&graph, &df_cfg));
    findings.extend(dataflow::hot_alloc(&graph, &df_cfg));
    findings.extend(dataflow::marker_errors(&graph));
    timings.dataflow = t0.elapsed();

    // v3 passes: atomic-ordering protocols and untrusted-input taint.
    let t0 = Instant::now();
    findings.extend(atomics::check(&graph, &cfg, &test_fns)?);
    timings.atomics = t0.elapsed();
    let taint_cfg = taint::TaintConfig {
        sources: cfg.taint_sources.clone(),
        sanitizers: cfg.taint_sanitizers.clone(),
        length_idents: cfg.taint_length_idents.clone(),
    };
    let t0 = Instant::now();
    findings.extend(taint::check(&graph, &taint_cfg)?);
    timings.taint = t0.elapsed();

    // v4 pass: durability protocol (commit funnels, fsync-then-rename
    // pairing, dropped io::Results, lock discipline).
    let dur_cfg = durability::DurabilityConfig {
        crates: cfg.durability_crates.clone(),
        funnels: cfg.durability_funnels.clone(),
    };
    let t0 = Instant::now();
    findings.extend(durability::check(&graph, &dur_cfg)?);
    timings.durability = t0.elapsed();

    // Apply the allowlist; every entry must earn its keep. An entry
    // with a `chain` glob only covers findings whose call chain
    // matches it.
    let mut used = vec![false; cfg.allows.len()];
    findings.retain(|f| {
        for (idx, allow) in cfg.allows.iter().enumerate() {
            let chain_ok = allow.chain.is_empty()
                || f.chain
                    .as_deref()
                    .is_some_and(|c| config::glob_match(&allow.chain, c));
            if allow.file == f.file && allow.rule == f.rule && chain_ok {
                used[idx] = true;
                return false;
            }
        }
        true
    });
    for (idx, allow) in cfg.allows.iter().enumerate() {
        if !used[idx] {
            findings.push(Finding {
                file: "lint.toml".to_string(),
                line: allow.line,
                rule: "unused-allow",
                message: format!(
                    "[[allow]] for {} / {} suppresses nothing — remove it",
                    allow.file, allow.rule
                ),
                chain: None,
            });
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok((findings, timings))
}

//! Workspace-wide call graph from token streams.
//!
//! cocolint v2's interprocedural rules (transitive panic-reachability,
//! hot-path allocation freedom) need to know *who calls whom* across
//! crate boundaries. This module builds that graph from the same
//! [`crate::lexer`] token streams the per-file rules use: no `syn`, no
//! `rustc` — the offline build takes no dependencies.
//!
//! ## What is extracted
//!
//! - **Fn items**: every `fn name` in the `src/` tree of every
//!   workspace crate, with its module path (from the file path plus
//!   inline `mod name { ... }` nesting), its enclosing `impl`/`trait`
//!   type if any, its visibility (`pub` without a `pub(...)`
//!   restriction), whether it sits inside `#[cfg(test)]`, and whether a
//!   `// LINT: hot` marker comment sits just above it.
//! - **Call sites**: inside each fn body, `name(...)` (bare),
//!   `path::to::name(...)` (qualified) and `.name(...)` (method) call
//!   expressions, with the source line of each.
//! - **Annotations**: `// LINT: bounded(reason)` lines (per-site
//!   exemptions for the indexing/division panic sources),
//!   `// LINT: cold(reason)` blocks (allocation-permitted branches on
//!   otherwise hot paths), and `// LINT: relaxed(reason)` /
//!   `// LINT: seqcst(reason)` lines (justified atomic orderings for
//!   the atomics pass; see [`crate::atomics`]).
//!
//! ## Resolution policy (and its soundness caveats)
//!
//! Token-level resolution cannot see `use` imports, generics, or trait
//! dispatch, so it over- and under-approximates deliberately:
//!
//! - **Qualified calls** (`snapshot::decode(...)`) resolve to every
//!   workspace fn whose qualified path ends with the written segments,
//!   restricted to the caller's crate and its direct dependencies.
//!   `self::`/`Self::`/`crate::`/`super::` prefixes are stripped.
//! - **Bare calls** resolve by name — same file first, then same
//!   crate, then dependency crates (a call cannot lexically reach a
//!   crate the caller does not depend on).
//! - **Method calls** (`.update(...)`) resolve to every impl/trait fn
//!   of that name in the caller's crate or its *transitive*
//!   dependencies (generic receivers are typically instantiated with
//!   types the caller can name, e.g. `S: MergeSketch` in `engine`
//!   dispatching to `cocosketch` impls one dependency hop down). The
//!   cost is spurious edges between same-named methods of unrelated
//!   types; the dataflow rules only consume reachability, so spurious
//!   edges can only over-report. Exception: `self.name(...)` from
//!   inside an impl block whose type defines `name` resolves to that
//!   type's fns only — bare-`self` dispatch cannot leave the type
//!   (trait *default* methods keep the broad resolution; their `self`
//!   is any implementor). The deliberate under-approximation:
//!   a trait impl living in a crate that *depends on* the caller's
//!   crate is invisible to this resolution — its fns are still
//!   analyzed from their own crate's entry points.
//!
//! Calls that resolve to no workspace fn are kept in the graph as
//! unresolved sites — the hot-path rule treats an unresolved
//! `.push(...)`/`.collect(...)` as a std allocation.

use crate::lexer::{TokKind, Token};
use crate::workspace::CrateInfo;
use std::collections::HashMap;
use std::path::Path;

/// One extracted function item.
#[derive(Debug)]
pub struct FnItem {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    /// Package name of the owning crate.
    pub crate_name: String,
    /// Fully qualified path, `crate::module::Type::name` rendered with
    /// `::` separators (crate name with `-` mapped to `_`).
    pub qualified: String,
    /// Bare fn name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, including both braces
    /// (`toks[body.0] == '{'`). Empty range for bodyless trait decls.
    pub body: (usize, usize),
    /// `pub` without a `pub(...)` restriction.
    pub is_pub: bool,
    /// Defined directly inside an `impl` or `trait` block (callable
    /// with method syntax).
    pub in_impl: bool,
    /// Subject type name when defined inside an `impl` block (`None`
    /// for free fns and trait declarations — trait default methods
    /// dispatch to arbitrary impls, so they get no type anchor).
    pub type_ctx: Option<String>,
    /// Carries a `// LINT: hot` marker comment.
    pub is_hot: bool,
    /// Sits inside a `#[cfg(test)]` span (exempt from all rules).
    pub in_test: bool,
}

/// One call expression inside some fn body.
#[derive(Debug)]
pub struct CallSite {
    /// Index of the calling fn in [`CallGraph::fns`].
    pub caller: usize,
    /// 1-based source line of the call.
    pub line: u32,
    /// Called name (last path segment / method name).
    pub name: String,
    /// Path segments written before the name (empty for bare/method
    /// calls), `self`/`Self`/`crate`/`super` stripped.
    pub path: Vec<String>,
    /// True for `.name(...)` method syntax.
    pub is_method: bool,
    /// True for `self.name(...)`: the receiver is the bare `self`
    /// token, so dispatch cannot leave the caller's own type.
    pub self_recv: bool,
    /// Workspace fns this call may target (empty: std or external).
    pub resolved: Vec<usize>,
}

/// One `// LINT: relaxed(reason)` / `// LINT: seqcst(reason)` atomic
/// ordering annotation, kept with its own position so the atomics pass
/// can detect markers that justify nothing (annotation rot).
#[derive(Debug)]
pub struct OrderingMarker {
    /// The comment's own 1-based line.
    pub line: u32,
    /// Source lines the marker covers: its own line, plus the next
    /// line when the comment stands alone (same rule as `bounded`).
    pub covers: Vec<u32>,
}

/// One parsed source file with its annotations.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate package name.
    pub crate_name: String,
    /// Token stream.
    pub toks: Vec<Token>,
    /// `#[cfg(test)]` line spans.
    pub test_spans: Vec<(u32, u32)>,
    /// Lines covered by a `// LINT: bounded(reason)` annotation (the
    /// comment's own line and the line after a standalone comment).
    pub bounded_lines: Vec<u32>,
    /// Line spans of `// LINT: cold(reason)` blocks.
    pub cold_spans: Vec<(u32, u32)>,
    /// `// LINT: relaxed(reason)` annotations (justified `Relaxed`
    /// stores, consumed by the atomics pass).
    pub relaxed_markers: Vec<OrderingMarker>,
    /// `// LINT: seqcst(reason)` annotations (justified `SeqCst`
    /// accesses, consumed by the atomics pass).
    pub seqcst_markers: Vec<OrderingMarker>,
    /// `// LINT: lossy(reason)` annotations (justified dropped
    /// `io::Result`s, consumed by the durability pass).
    pub lossy_markers: Vec<OrderingMarker>,
    /// `LINT:` markers that failed to parse (missing reason/brace),
    /// as (line, message) — surfaced as findings, never ignored.
    pub marker_errors: Vec<(u32, String)>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every parsed `src/` file.
    pub files: Vec<ParsedFile>,
    /// Every extracted fn item.
    pub fns: Vec<FnItem>,
    /// Every call site, in fn order.
    pub calls: Vec<CallSite>,
    /// Forward adjacency: `edges[f]` = indices into [`Self::calls`]
    /// made from fn `f`.
    pub edges: Vec<Vec<usize>>,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "let", "ref",
    "mut", "box", "await", "yield", "do", "const", "unsafe", "fn", "use", "where", "impl", "dyn",
    "break", "continue",
];

/// True for identifiers that are expression-position keywords (shared
/// with the dataflow rules, which must not mistake `if [attr]`-style
/// token runs for indexing).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !matches!(toks[i].kind, TokKind::Comment(_)) {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(toks[j].kind, TokKind::Comment(_)))
}

/// Build the graph over the `src/` trees of `crates`, reading files
/// relative to `root`. `read` indirection lets fixture tests feed
/// in-memory sources.
pub fn build(root: &Path, crates: &[CrateInfo]) -> Result<CallGraph, String> {
    let mut graph = CallGraph::default();
    for krate in crates {
        let (src_files, _) = crate::workspace::rust_files(root, krate);
        for rel in src_files {
            let text = std::fs::read_to_string(root.join(&rel))
                .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
            let path = rel.to_string_lossy().replace('\\', "/");
            parse_file(&mut graph, &krate.name, &path, &text);
        }
    }
    resolve(&mut graph, crates);
    Ok(graph)
}

/// How far above a `fn` keyword a `// LINT: hot` marker may sit
/// (attributes like `#[inline]` commonly separate them).
const HOT_WINDOW_LINES: u32 = 6;

/// Parse one file: fn items, call sites, annotations.
pub fn parse_file(graph: &mut CallGraph, crate_name: &str, path: &str, text: &str) {
    let toks = crate::lexer::tokenize(text);
    let test_spans = crate::rules::cfg_test_spans(&toks);
    let file_idx = graph.files.len();

    // ----- LINT: marker annotations --------------------------------
    let mut bounded_lines = Vec::new();
    let mut cold_spans = Vec::new();
    let mut relaxed_markers = Vec::new();
    let mut seqcst_markers = Vec::new();
    let mut lossy_markers = Vec::new();
    let mut marker_errors = Vec::new();
    let mut hot_lines = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let TokKind::Comment(c) = &tok.kind else {
            continue;
        };
        let Some(directive) = lint_directive(c) else {
            continue;
        };
        if directive.starts_with("bounded") {
            match marker_reason(directive) {
                Some(_) => {
                    // A trailing comment covers its own line; a
                    // standalone comment covers the line below it.
                    let standalone = !prev_code(&toks, i).is_some_and(|p| toks[p].line == tok.line);
                    bounded_lines.push(tok.line);
                    if standalone {
                        bounded_lines.push(tok.line + 1);
                    }
                }
                None => marker_errors.push((
                    tok.line,
                    "`LINT: bounded` marker without a written reason — use \
                     `// LINT: bounded(why the index/divisor is in range)`"
                        .to_string(),
                )),
            }
        } else if directive.starts_with("cold") {
            match marker_reason(directive) {
                Some(_) => {
                    // The annotated block is the next `{ ... }` opening
                    // after the comment.
                    let open = (i + 1..toks.len()).find(|&j| is_punct(&toks[j], '{'));
                    match open {
                        Some(open) => {
                            let close = matching_brace(&toks, open);
                            cold_spans.push((tok.line, toks[close.min(toks.len() - 1)].line));
                        }
                        None => marker_errors.push((
                            tok.line,
                            "`LINT: cold` marker with no following block".to_string(),
                        )),
                    }
                }
                None => marker_errors.push((
                    tok.line,
                    "`LINT: cold` marker without a written reason — use \
                     `// LINT: cold(why this branch is off the hot path)`"
                        .to_string(),
                )),
            }
        } else if let Some(kind) = ["relaxed", "seqcst", "lossy"]
            .into_iter()
            .find(|k| directive.starts_with(k))
        {
            // Ordering and lossy-IO annotations share `bounded`'s
            // coverage rule: trailing comments cover their own line,
            // standalone comments the line below. The marker's own
            // position is kept so the atomics and durability passes
            // can flag annotation rot.
            match marker_reason(directive) {
                Some(_) => {
                    let standalone = !prev_code(&toks, i).is_some_and(|p| toks[p].line == tok.line);
                    let mut covers = vec![tok.line];
                    if standalone {
                        covers.push(tok.line + 1);
                    }
                    let marker = OrderingMarker {
                        line: tok.line,
                        covers,
                    };
                    match kind {
                        "relaxed" => relaxed_markers.push(marker),
                        "seqcst" => seqcst_markers.push(marker),
                        _ => lossy_markers.push(marker),
                    }
                }
                None => marker_errors.push((
                    tok.line,
                    format!(
                        "`LINT: {kind}` marker without a written reason — use \
                         `// LINT: {kind}(why this is sound)`"
                    ),
                )),
            }
        } else if directive.starts_with("hot") {
            hot_lines.push(tok.line);
        } else {
            marker_errors.push((
                tok.line,
                format!(
                    "unknown `LINT:` directive `{}` — known: hot, bounded(reason), \
                     cold(reason), relaxed(reason), seqcst(reason), lossy(reason)",
                    directive.split_whitespace().next().unwrap_or("")
                ),
            ));
        }
    }

    // ----- fn items and call sites ---------------------------------
    // Context stack entries are pushed when their `{` opens.
    enum Ctx {
        Mod(String),
        /// Subject type name and whether the block is an `impl` (true)
        /// or a `trait` declaration (false).
        Type(String, bool),
        Other,
    }
    let mut stack: Vec<Ctx> = Vec::new();
    let module_base = module_path_of(path);
    let mut i = 0;
    let mut fn_ranges: Vec<(usize, (usize, usize))> = Vec::new(); // (fn idx, body)
    while i < toks.len() {
        match ident(&toks[i]) {
            Some("mod") => {
                let name_i = next_code(&toks, i + 1);
                if let Some(ni) = name_i {
                    if let Some(name) = ident(&toks[ni]) {
                        if let Some(oi) = next_code(&toks, ni + 1) {
                            if is_punct(&toks[oi], '{') {
                                stack.push(Ctx::Mod(name.to_string()));
                                i = oi + 1;
                                continue;
                            }
                        }
                    }
                }
                i += 1;
            }
            Some(kw @ ("impl" | "trait")) => {
                // Find the body `{` (paren/bracket-balanced), extract
                // the subject type name from the header.
                let Some(open) = find_body_open(&toks, i + 1) else {
                    i += 1;
                    continue;
                };
                if !is_punct(&toks[open], '{') {
                    // `trait Foo: Bar;`-style or parse oddity: skip.
                    i = open + 1;
                    continue;
                }
                let ty = if kw == "impl" {
                    impl_type_name(&toks[i + 1..open])
                } else {
                    next_code(&toks, i + 1)
                        .and_then(|ni| ident(&toks[ni]))
                        .map(str::to_string)
                };
                stack.push(Ctx::Type(ty.unwrap_or_default(), kw == "impl"));
                i = open + 1;
            }
            Some("fn") => {
                let Some(ni) = next_code(&toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let Some(name) = ident(&toks[ni]) else {
                    i += 1;
                    continue;
                };
                let line = toks[i].line;
                let is_pub = fn_is_pub(&toks, i);
                let in_impl = matches!(stack.last(), Some(Ctx::Type(..)));
                let type_ctx = match stack.last() {
                    Some(Ctx::Type(t, true)) if !t.is_empty() => Some(t.clone()),
                    _ => None,
                };
                let in_test = test_spans.iter().any(|&(a, b)| line >= a && line <= b);
                let body = match find_body_open(&toks, ni + 1) {
                    Some(open) if is_punct(&toks[open], '{') => {
                        (open, matching_brace(&toks, open) + 1)
                    }
                    Some(semi) => (semi, semi), // trait decl, no body
                    None => (toks.len(), toks.len()),
                };
                let mut segs: Vec<String> = vec![crate_name.replace('-', "_")];
                segs.extend(module_base.iter().cloned());
                for ctx in &stack {
                    match ctx {
                        Ctx::Mod(m) => segs.push(m.clone()),
                        Ctx::Type(t, _) if !t.is_empty() => segs.push(t.clone()),
                        _ => {}
                    }
                }
                segs.push(name.to_string());
                let fn_idx = graph.fns.len();
                graph.fns.push(FnItem {
                    file: file_idx,
                    crate_name: crate_name.to_string(),
                    qualified: segs.join("::"),
                    name: name.to_string(),
                    line,
                    body,
                    is_pub,
                    in_impl,
                    type_ctx,
                    is_hot: false,
                    in_test,
                });
                fn_ranges.push((fn_idx, body));
                // Continue scanning *inside* the body (nested fns and
                // the call extraction below both want the tokens), but
                // don't re-push context: nested items are rare and
                // their module path is already approximate.
                i = body.0.max(ni + 1);
            }
            _ => {
                if is_punct(&toks[i], '{') {
                    stack.push(Ctx::Other);
                } else if is_punct(&toks[i], '}') {
                    stack.pop();
                }
                i += 1;
            }
        }
    }

    // Each `LINT: hot` marker attaches to exactly the *first* fn at or
    // below it (within the attribute window) — never to later
    // neighbours, which would silently widen the hot set. A marker
    // with no fn in reach is an error, not a no-op.
    for &hl in &hot_lines {
        let target = fn_ranges
            .iter()
            .map(|&(fn_idx, _)| fn_idx)
            .filter(|&fn_idx| {
                let l = graph.fns[fn_idx].line;
                l >= hl && l - hl <= HOT_WINDOW_LINES
            })
            .min_by_key(|&fn_idx| graph.fns[fn_idx].line);
        match target {
            Some(fn_idx) => graph.fns[fn_idx].is_hot = true,
            None => marker_errors.push((
                hl,
                format!("`LINT: hot` marker with no fn within {HOT_WINDOW_LINES} lines below it"),
            )),
        }
    }

    // Call sites: attribute each to the innermost enclosing fn body.
    for k in 0..toks.len() {
        let Some(name) = ident(&toks[k]) else {
            continue;
        };
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
            || KEYWORDS.contains(&name)
        {
            continue;
        }
        let Some(open) = next_code(&toks, k + 1) else {
            continue;
        };
        if !is_punct(&toks[open], '(') {
            continue;
        }
        let Some(p) = prev_code(&toks, k) else {
            continue;
        };
        if ident(&toks[p]) == Some("fn") {
            continue; // definition, not call
        }
        let caller = fn_ranges
            .iter()
            .filter(|(_, (a, b))| (*a..*b).contains(&k))
            .min_by_key(|(_, (a, b))| b - a);
        let Some(&(caller, _)) = caller else { continue };
        let (is_method, self_recv, path) = if is_punct(&toks[p], '.') {
            let recv_is_self = prev_code(&toks, p).is_some_and(|r| ident(&toks[r]) == Some("self"));
            (true, recv_is_self, Vec::new())
        } else {
            (false, false, leading_path(&toks, k))
        };
        graph.calls.push(CallSite {
            caller,
            line: toks[k].line,
            name: name.to_string(),
            path,
            is_method,
            self_recv,
            resolved: Vec::new(),
        });
    }

    graph.files.push(ParsedFile {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        toks,
        test_spans,
        bounded_lines,
        cold_spans,
        relaxed_markers,
        seqcst_markers,
        lossy_markers,
        marker_errors,
    });
}

/// The directive payload of a `// LINT: ...` comment. `Some` only for
/// plain line comments whose first content is `LINT:` — doc comments
/// (`///`, `//!`) are prose *about* directives, never directives, and
/// a trailing mention mid-comment does not count either.
fn lint_directive(c: &str) -> Option<&str> {
    let rest = c.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    rest.trim_start().strip_prefix("LINT:").map(str::trim_start)
}

/// The reason inside a `LINT: marker(reason)` suffix, if non-empty.
fn marker_reason(s: &str) -> Option<&str> {
    let open = s.find('(')?;
    let close = s[open..].find(')')? + open;
    let reason = s[open + 1..close].trim();
    (!reason.is_empty()).then_some(reason)
}

/// Index of the `}` matching the `{` at `open` (last token if
/// unterminated).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// From a signature position, the index of the body `{` or the
/// terminating `;`, whichever comes first at paren/bracket depth 0.
fn find_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') | TokKind::Punct(';') if paren == 0 && bracket == 0 => {
                return Some(j);
            }
            _ => {}
        }
    }
    None
}

/// The subject type of an `impl` header (tokens between `impl` and the
/// body `{`): the last angle-depth-0 path ident, taken after `for` if
/// present, before any `where`.
fn impl_type_name(header: &[Token]) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    for t in header {
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = (angle - 1).max(0), // `->` noise
            TokKind::Ident(s) if angle == 0 => match s.as_str() {
                "for" => last = None, // restart: the subject follows
                "where" => break,
                "dyn" | "mut" | "const" => {}
                _ => last = Some(s.clone()),
            },
            _ => {}
        }
    }
    last
}

/// True when the `fn` at token `i` is `pub` without a `(...)`
/// restriction (scan back over modifiers: `const`, `unsafe`, `extern`,
/// an ABI literal, `async`).
fn fn_is_pub(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    loop {
        let Some(p) = prev_code(toks, j) else {
            return false;
        };
        match ident(&toks[p]) {
            Some("const" | "unsafe" | "extern" | "async") => j = p,
            Some("pub") => return true,
            _ => match &toks[p].kind {
                TokKind::Literal => j = p, // extern "C"
                TokKind::Punct(')') => {
                    // `pub(crate)` / `pub(super)`: restricted, not pub.
                    return false;
                }
                _ => return false,
            },
        }
    }
}

/// Path segments written immediately before the call name at `k`
/// (`a::b::name(` → `["a", "b"]`), with `self`/`Self`/`crate`/`super`
/// dropped.
fn leading_path(toks: &[Token], k: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = k;
    while let Some(c2) = prev_code(toks, j) {
        if !is_punct(&toks[c2], ':') {
            break;
        }
        let Some(c1) = prev_code(toks, c2) else { break };
        if !is_punct(&toks[c1], ':') {
            break;
        }
        let Some(si) = prev_code(toks, c1) else { break };
        // `<Type as Trait>::name(...)` — stop at the closing angle.
        let Some(seg) = ident(&toks[si]) else { break };
        segs.push(seg.to_string());
        j = si;
    }
    segs.reverse();
    segs.retain(|s| !matches!(s.as_str(), "self" | "Self" | "crate" | "super"));
    segs
}

/// Module path segments a file contributes (`src/foo/bar.rs` →
/// `["foo", "bar"]`, `src/lib.rs`/`src/main.rs`/`mod.rs` dropping the
/// terminal name).
fn module_path_of(path: &str) -> Vec<String> {
    let Some(after) = path.split("/src/").nth(1) else {
        return Vec::new();
    };
    let mut segs: Vec<String> = after
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if matches!(
        segs.last().map(String::as_str),
        Some("lib") | Some("main") | Some("mod")
    ) {
        segs.pop();
    }
    segs
}

/// Resolve every call site against the extracted fn items (see the
/// module docs for the policy) and build the forward adjacency.
/// Public so fixture tests can assemble graphs from in-memory sources.
pub fn resolve(graph: &mut CallGraph, crates: &[CrateInfo]) {
    let dep_sets: HashMap<&str, Vec<&str>> = crates
        .iter()
        .map(|c| {
            let mut ds: Vec<&str> = c.deps.iter().map(String::as_str).collect();
            ds.push(c.name.as_str());
            (c.name.as_str(), ds)
        })
        .collect();
    // Transitive closure of the dep relation, for method dispatch: a
    // receiver's concrete type can come from anywhere the caller's
    // crate can see, including through intermediate crates.
    let trans_sets: HashMap<&str, Vec<&str>> = crates
        .iter()
        .map(|c| {
            let mut seen: Vec<&str> = vec![c.name.as_str()];
            let mut stack: Vec<&str> = vec![c.name.as_str()];
            while let Some(at) = stack.pop() {
                for dep in dep_sets.get(at).into_iter().flatten() {
                    if !seen.contains(dep) {
                        seen.push(dep);
                        stack.push(dep);
                    }
                }
            }
            (c.name.as_str(), seen)
        })
        .collect();

    // name -> fn indices
    let fns = &graph.fns;
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(idx);
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (ci, call) in graph.calls.iter_mut().enumerate() {
        let caller = &fns[call.caller];
        let caller_crate = caller.crate_name.as_str();
        let caller_file = caller.file;
        let empty = Vec::new();
        let candidates = by_name.get(call.name.as_str()).unwrap_or(&empty);
        let in_deps = |idx: &usize| -> bool {
            dep_sets
                .get(caller_crate)
                .is_some_and(|ds| ds.contains(&fns[*idx].crate_name.as_str()))
        };
        let resolved: Vec<usize> = if call.is_method {
            // `self.name(...)` from inside an impl block: dispatch
            // cannot leave the receiver's type, so when that type
            // defines `name` resolve to those fns only. This kills the
            // spurious fan-out of common method names (`update`,
            // `push`) to every same-named method in the dep closure.
            let self_targets: Vec<usize> = match caller.type_ctx.as_deref() {
                Some(ty) if call.self_recv => candidates
                    .iter()
                    .copied()
                    .filter(|&idx| {
                        fns[idx].in_impl
                            && fns[idx].crate_name == caller_crate
                            && fns[idx].type_ctx.as_deref() == Some(ty)
                    })
                    .collect(),
                _ => Vec::new(),
            };
            if !self_targets.is_empty() {
                self_targets
            } else {
                // Impl/trait fns of that name, within the caller's
                // transitive dependency closure: method syntax can
                // never reach a free fn, nor a crate the caller cannot
                // see.
                candidates
                    .iter()
                    .copied()
                    .filter(|&idx| {
                        fns[idx].in_impl
                            && trans_sets
                                .get(caller_crate)
                                .is_some_and(|ts| ts.contains(&fns[idx].crate_name.as_str()))
                    })
                    .collect()
            }
        } else if call.path.is_empty() {
            // Bare: same file, else same crate, else dependencies.
            let same_file: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&idx| fns[idx].file == caller_file)
                .collect();
            if !same_file.is_empty() {
                same_file
            } else {
                let same_crate: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&idx| fns[idx].crate_name == caller_crate)
                    .collect();
                if !same_crate.is_empty() {
                    same_crate
                } else {
                    candidates.iter().filter(|i| in_deps(i)).copied().collect()
                }
            }
        } else {
            // Qualified: the written segments must suffix-match the
            // candidate's qualified path, within the dep set.
            candidates
                .iter()
                .copied()
                .filter(|&idx| {
                    let f = &fns[idx];
                    let segs: Vec<&str> = f.qualified.split("::").collect();
                    let want: Vec<&str> = call
                        .path
                        .iter()
                        .map(String::as_str)
                        .chain(std::iter::once(call.name.as_str()))
                        .collect();
                    segs.len() >= want.len() && segs[segs.len() - want.len()..] == want[..]
                })
                .filter(|i| in_deps(i))
                .collect()
        };
        call.resolved = resolved;
        edges[call.caller].push(ci);
    }
    graph.edges = edges;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        parse_file(&mut g, "demo", "crates/demo/src/lib.rs", src);
        g
    }

    #[test]
    fn extracts_fns_with_module_and_impl_paths() {
        let g = graph_of(
            "pub fn top() {}\n\
             mod inner { fn helper() {} }\n\
             struct S;\n\
             impl S { pub fn method(&self) {} }\n\
             impl Clone for S { fn clone(&self) -> S { S } }\n\
             trait T { fn defaulted(&self) {} }\n",
        );
        let quals: Vec<&str> = g.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "demo::top",
                "demo::inner::helper",
                "demo::S::method",
                "demo::S::clone",
                "demo::T::defaulted",
            ]
        );
        assert!(g.fns[0].is_pub);
        assert!(!g.fns[1].is_pub);
        assert!(g.fns[2].is_pub);
    }

    #[test]
    fn file_paths_become_module_segments() {
        let mut g = CallGraph::default();
        parse_file(&mut g, "demo", "crates/demo/src/foo/bar.rs", "fn f() {}");
        assert_eq!(g.fns[0].qualified, "demo::foo::bar::f");
    }

    #[test]
    fn call_sites_carry_shape_and_line() {
        let g = graph_of(
            "fn a() {\n\
               helper();\n\
               other::mod_fn(1);\n\
               x.method(2);\n\
               macro_like!();\n\
             }\n\
             fn helper() {}\n",
        );
        let shapes: Vec<(&str, bool, usize, u32)> = g
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.is_method, c.path.len(), c.line))
            .collect();
        assert_eq!(
            shapes,
            vec![
                ("helper", false, 0, 2),
                ("mod_fn", false, 1, 3),
                ("method", true, 0, 4),
            ]
        );
    }

    #[test]
    fn pub_restrictions_are_not_pub() {
        let g = graph_of("pub(crate) fn a() {}\npub fn b() {}\npub(super) fn c() {}\n");
        let pubs: Vec<bool> = g.fns.iter().map(|f| f.is_pub).collect();
        assert_eq!(pubs, vec![false, true, false]);
    }

    #[test]
    fn hot_marker_attaches_through_attributes() {
        let g = graph_of(
            "// LINT: hot\n\
             #[inline]\n\
             pub fn fast(&self) {}\n\
             pub fn slow() {}\n",
        );
        assert!(g.fns[0].is_hot);
        assert!(!g.fns[1].is_hot);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let g = graph_of(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { x.unwrap(); }\n\
             }\n",
        );
        assert!(!g.fns[0].in_test);
        assert!(g.fns[1].in_test);
    }

    #[test]
    fn bounded_and_cold_annotations_are_collected() {
        let g = graph_of(
            "fn f(xs: &[u64]) -> u64 {\n\
                 let a = xs[0]; // LINT: bounded(len checked by caller)\n\
                 // LINT: cold(error path, taken once per run)\n\
                 {\n\
                     report();\n\
                 }\n\
                 a\n\
             }\n",
        );
        let file = &g.files[0];
        assert!(file.bounded_lines.contains(&2));
        assert_eq!(file.cold_spans, vec![(3, 6)]);
        assert!(file.marker_errors.is_empty());
    }

    #[test]
    fn markers_without_reasons_are_errors() {
        let g = graph_of("fn f() {}\n// LINT: bounded\n// LINT: cold()\n");
        assert_eq!(g.files[0].marker_errors.len(), 2);
    }

    #[test]
    fn ordering_markers_are_collected_with_coverage() {
        let g = graph_of(
            "fn f(a: &AtomicUsize) {\n\
                 a.store(1, Ordering::Relaxed); // LINT: relaxed(stat counter, no reader orders on it)\n\
                 // LINT: seqcst(store-buffering edge vs. the reader's pin)\n\
                 a.store(2, Ordering::SeqCst);\n\
             }\n",
        );
        let file = &g.files[0];
        assert_eq!(file.relaxed_markers.len(), 1);
        assert_eq!(file.relaxed_markers[0].covers, vec![2]);
        assert_eq!(file.seqcst_markers.len(), 1);
        assert_eq!(file.seqcst_markers[0].line, 3);
        assert_eq!(file.seqcst_markers[0].covers, vec![3, 4]);
        assert!(file.marker_errors.is_empty());
    }

    #[test]
    fn ordering_markers_without_reasons_are_errors() {
        let g = graph_of("fn f() {}\n// LINT: relaxed\n// LINT: seqcst()\n");
        assert_eq!(g.files[0].marker_errors.len(), 2);
        assert!(g.files[0].marker_errors[0].1.contains("relaxed"));
        assert!(g.files[0].marker_errors[1].1.contains("seqcst"));
    }

    #[test]
    fn self_method_calls_stay_within_their_impl_type() {
        let mut g = CallGraph::default();
        parse_file(
            &mut g,
            "demo",
            "crates/demo/src/lib.rs",
            "struct A;\n\
             impl A {\n\
                 pub fn go(&self) { self.step(); }\n\
                 fn step(&self) {}\n\
             }\n\
             struct B;\n\
             impl B { fn step(&self) {} }\n\
             fn free(a: &A) { a.step(); }\n",
        );
        let crates = vec![crate::workspace::CrateInfo {
            name: "demo".into(),
            dir: std::path::PathBuf::from("crates/demo"),
            deps: Vec::new(),
        }];
        resolve(&mut g, &crates);
        // `self.step()` inside `impl A` dispatches only to `A::step`…
        let self_call = g.calls.iter().find(|c| c.self_recv).unwrap();
        let targets: Vec<&str> = self_call
            .resolved
            .iter()
            .map(|&i| g.fns[i].qualified.as_str())
            .collect();
        assert_eq!(targets, vec!["demo::A::step"]);
        // …while a non-`self` receiver keeps the broad method fan-out
        // (the lexer does not track variable types).
        let other = g.calls.iter().find(|c| !c.self_recv).unwrap();
        assert_eq!(other.resolved.len(), 2);
    }

    #[test]
    fn trait_default_methods_keep_broad_self_dispatch() {
        // A trait default body's `self.x()` can land in any impl, so the
        // trait fn gets no type anchor and resolution stays broad.
        let mut g = CallGraph::default();
        parse_file(
            &mut g,
            "demo",
            "crates/demo/src/lib.rs",
            "trait T {\n\
                 fn x(&self);\n\
                 fn run(&self) { self.x(); }\n\
             }\n\
             struct A;\n\
             impl T for A { fn x(&self) {} }\n",
        );
        let crates = vec![crate::workspace::CrateInfo {
            name: "demo".into(),
            dir: std::path::PathBuf::from("crates/demo"),
            deps: Vec::new(),
        }];
        resolve(&mut g, &crates);
        let run = g.fns.iter().position(|f| f.name == "run").unwrap();
        assert!(
            g.fns[run].type_ctx.is_none(),
            "trait fns get no type anchor"
        );
        let call = g.calls.iter().find(|c| c.self_recv).unwrap();
        let targets: Vec<&str> = call
            .resolved
            .iter()
            .map(|&i| g.fns[i].qualified.as_str())
            .collect();
        // Both the trait decl and the concrete impl stay reachable.
        assert!(targets.contains(&"demo::A::x"), "targets: {targets:?}");
    }

    #[test]
    fn impl_header_shapes_resolve_to_the_subject_type() {
        for (hdr, want) in [
            ("impl Foo {", "demo::Foo::m"),
            ("impl Trait for Foo {", "demo::Foo::m"),
            ("impl<T: Clone> Wrap<T> {", "demo::Wrap::m"),
            ("impl<'a> Iterator for Iter<'a> {", "demo::Iter::m"),
            ("impl fmt::Display for Foo {", "demo::Foo::m"),
        ] {
            let g = graph_of(&format!("{hdr} fn m(&self) {{}} }}"));
            assert_eq!(g.fns[0].qualified, want, "header: {hdr}");
        }
    }
}

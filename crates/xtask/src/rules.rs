//! The cocolint rules, over token streams from [`crate::lexer`].
//!
//! | rule              | scope                         | what it rejects |
//! |-------------------|-------------------------------|-----------------|
//! | `safety-comment`  | every file in the workspace   | an `unsafe` block or `unsafe impl` without a `// SAFETY:` comment nearby |
//! | `panic-path`      | data-plane `src/`, non-test   | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `wall-clock`      | data-plane `src/`, non-test   | `Instant`, `SystemTime`, ambient-entropy randomness (`thread_rng`, `RandomState`, …) |
//! | `default-hashmap` | data-plane `src/`, non-test   | `HashMap`/`HashSet` (the SipHash + random-seed defaults) instead of `FastMap`/`FastSet` |
//! | `lock-free`       | `lock_free` `src/`, non-test  | `Mutex`, `RwLock`, `Condvar` — serving readers coordinate through atomics only |
//! | `crate-attrs`     | crate roots, per `lint.toml`  | missing `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` / data-plane hardening attrs |
//!
//! "Non-test" exempts `#[cfg(test)]` items (brace-matched spans) and
//! the `tests/`/`benches/`/`examples/` trees: tests may unwrap and may
//! use wall clocks; the packet path may not.

use crate::lexer::{TokKind, Token};
use std::path::Path;

/// How far above an `unsafe` block the `SAFETY:` comment may start.
/// Generous enough for a paragraph-length argument, small enough that
/// a stale comment at the top of the function does not count.
const SAFETY_WINDOW_LINES: u32 = 12;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable, used by the allowlist).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// For interprocedural rules: the call chain from a data-plane
    /// entry point to the offending site, rendered `a::b -> c::d`.
    /// `[[allow]]` entries with a `chain` pattern match against this.
    pub chain: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if let Some(chain) = &self.chain {
            write!(f, "\n    call chain: {chain}")?;
        }
        Ok(())
    }
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

/// Next token index that is not a comment, starting at `i`.
fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !matches!(toks[i].kind, TokKind::Comment(_)) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Previous token index that is not a comment, ending before `i`.
fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(toks[j].kind, TokKind::Comment(_)))
}

// ---------------------------------------------------------------------
// safety-comment
// ---------------------------------------------------------------------

/// Every `unsafe` block (`unsafe {`) and `unsafe impl` must have a
/// comment containing `SAFETY:` starting within `SAFETY_WINDOW_LINES`
/// lines above it (or on its own line). `unsafe fn` declarations are
/// exempt: their obligation sits at each call site, which is itself an
/// `unsafe` block this rule covers.
pub fn safety_comment(file: &str, toks: &[Token]) -> Vec<Finding> {
    let safety_lines: Vec<u32> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Comment(c) if c.contains("SAFETY:") => Some(t.line),
            _ => None,
        })
        .collect();
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if ident(tok) != Some("unsafe") {
            continue;
        }
        let Some(next) = next_code(toks, i + 1) else {
            continue;
        };
        let target = match (&toks[next].kind, ident(&toks[next])) {
            (TokKind::Punct('{'), _) => "unsafe block",
            (_, Some("impl")) => "unsafe impl",
            _ => continue, // unsafe fn/trait/extern declaration
        };
        let line = tok.line;
        let covered = safety_lines
            .iter()
            .any(|&sl| sl <= line && line - sl <= SAFETY_WINDOW_LINES);
        if !covered {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: "safety-comment",
                message: format!(
                    "{target} without a `// SAFETY:` comment within {SAFETY_WINDOW_LINES} lines"
                ),
                chain: None,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Data-plane code must not contain reachable panic sites: `.unwrap()`
/// / `.expect()` become typed errors, and constructively-unreachable
/// states route through `hashkit::invariant::violated` (the one
/// allowlisted funnel), so a grep for that symbol audits every
/// remaining panic in the packet path. `assert!` stays permitted:
/// a documented invariant assert is an explicit precondition, not an
/// accidental panic path.
pub fn panic_path(file: &str, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = ident(tok) else { continue };
        if PANIC_METHODS.contains(&name) {
            let is_method_call = prev_code(toks, i).is_some_and(|p| is_punct(&toks[p], '.'))
                && next_code(toks, i + 1).is_some_and(|n| is_punct(&toks[n], '('));
            if is_method_call {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: "panic-path",
                    message: format!(
                        ".{name}() on the data plane — return a typed error or use hashkit::invariant::violated with a written argument"
                    ),
                    chain: None,
                });
            }
        } else if PANIC_MACROS.contains(&name) {
            let is_macro = next_code(toks, i + 1).is_some_and(|n| is_punct(&toks[n], '!'));
            // `core::panic::...` paths (e.g. resume_unwind imports) are
            // not invocations; require the bang.
            if is_macro {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: "panic-path",
                    message: format!(
                        "{name}! on the data plane — see panic-path policy in DESIGN.md"
                    ),
                    chain: None,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------

const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "RandomState", "from_entropy", "OsRng"];

/// Sketch contents must be a pure function of (input stream, seed):
/// the reproducibility policy and the unbiasedness tests both depend
/// on it. Wall clocks and ambient entropy silently break that, so the
/// data plane may not name them; deterministic seeded generators
/// (`hashkit::XorShift64Star`) are the sanctioned randomness source.
pub fn wall_clock(file: &str, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for tok in toks {
        let Some(name) = ident(tok) else { continue };
        if CLOCK_TYPES.contains(&name) {
            findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "wall-clock",
                message: format!(
                    "{name} in deterministic sketch code — time must not influence sketch state"
                ),
                chain: None,
            });
        } else if ENTROPY_IDENTS.contains(&name) {
            findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "wall-clock",
                message: format!(
                    "{name} draws ambient entropy — use a seeded hashkit::XorShift64Star instead"
                ),
                chain: None,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// lock-free
// ---------------------------------------------------------------------

const BLOCKING_SYNC_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Crates in `lint.toml`'s `lock_free` tier serve readers concurrently
/// with a publisher by protocol (atomics + epoch pinning), not by
/// blocking: one lock on the read path would let a descheduled reader
/// stall the publisher (or vice versa) and quietly void the
/// progress-freedom the loom models verify. Naming a blocking sync
/// primitive in non-test code is therefore a finding, whatever it
/// guards.
pub fn lock_free(file: &str, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for tok in toks {
        let Some(name) = ident(tok) else { continue };
        if BLOCKING_SYNC_TYPES.contains(&name) {
            findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "lock-free",
                message: format!(
                    "{name} in a lock-free crate — readers and publisher coordinate \
                     through atomics only (see serve::catalog's left-right protocol)"
                ),
                chain: None,
            });
        }
    }
    findings
}

/// [`lock_free`] with `#[cfg(test)]` spans exempted, mirroring
/// [`data_plane_rules`] — tests may lock to build harnesses.
pub fn lock_free_rules(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let name = file.to_string_lossy().replace('\\', "/");
    let findings = lock_free(&name, toks);
    let spans = cfg_test_spans(toks);
    exempt_test_spans(findings, &spans)
}

// ---------------------------------------------------------------------
// default-hashmap
// ---------------------------------------------------------------------

/// `std`'s `HashMap`/`HashSet` default to SipHash with a per-process
/// random seed: slow on short flow keys and nondeterministic in
/// iteration order. Data-plane code uses `hashkit::FastMap`/`FastSet`
/// (same types, deterministic multiply-rotate hasher) instead.
pub fn default_hashmap(file: &str, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for tok in toks {
        let Some(name) = ident(tok) else { continue };
        if name == "HashMap" || name == "HashSet" {
            let fast = if name == "HashMap" {
                "FastMap"
            } else {
                "FastSet"
            };
            findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "default-hashmap",
                message: format!(
                    "{name} uses the SipHash + random-seed default on a hot path — use hashkit::{fast}"
                ),
                chain: None,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// crate-attrs
// ---------------------------------------------------------------------

/// True when the token stream contains the inner attribute
/// `#![<level>(<lint>)]`.
pub fn has_crate_attr(toks: &[Token], level: &str, lint_name: &str) -> bool {
    toks.windows(7).any(|w| {
        is_punct(&w[0], '#')
            && is_punct(&w[1], '!')
            && is_punct(&w[2], '[')
            && ident(&w[3]) == Some(level)
            && is_punct(&w[4], '(')
            && ident(&w[5]) == Some(lint_name)
            && is_punct(&w[6], ')')
    })
}

/// Require `#![<level>(<lint>)]` at a crate root.
pub fn require_crate_attr(
    file: &str,
    toks: &[Token],
    level: &str,
    lint_name: &str,
) -> Option<Finding> {
    if has_crate_attr(toks, level, lint_name) {
        None
    } else {
        Some(Finding {
            file: file.to_string(),
            line: 1,
            rule: "crate-attrs",
            message: format!("crate root is missing #![{level}({lint_name})]"),
            chain: None,
        })
    }
}

// ---------------------------------------------------------------------
// #[cfg(test)] spans
// ---------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)]` items: from the
/// attribute to the matching close brace of the item's body (or its
/// terminating `;` for braceless items). Used to exempt in-file test
/// modules from the data-plane rules.
pub fn cfg_test_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let w = &toks[i..i + 7];
        let is_cfg_test = is_punct(&w[0], '#')
            && is_punct(&w[1], '[')
            && ident(&w[2]) == Some("cfg")
            && is_punct(&w[3], '(')
            && ident(&w[4]) == Some("test")
            && is_punct(&w[5], ')')
            && is_punct(&w[6], ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Scan forward to the item body: first `{` at bracket level 0
        // (skipping over further `#[...]` attributes), or a `;`.
        let mut j = i + 7;
        let mut end_line = start_line;
        let mut attr_depth = 0usize;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('[') => attr_depth += 1,
                TokKind::Punct(']') => attr_depth = attr_depth.saturating_sub(1),
                TokKind::Punct(';') if attr_depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                TokKind::Punct('{') if attr_depth == 0 => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < toks.len() && depth > 0 {
                        match &toks[k].kind {
                            TokKind::Punct('{') => depth += 1,
                            TokKind::Punct('}') => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end_line = toks[k.saturating_sub(1).min(toks.len() - 1)].line;
                    j = k;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j.max(i + 7);
    }
    spans
}

/// Drop findings whose line falls inside any `#[cfg(test)]` span.
pub fn exempt_test_spans(findings: Vec<Finding>, spans: &[(u32, u32)]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| !spans.iter().any(|&(a, b)| f.line >= a && f.line <= b))
        .collect()
}

/// Convenience used by `run_lint` and the fixture tests: all data-plane
/// rules on one file, with `#[cfg(test)]` spans exempted.
pub fn data_plane_rules(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let name = file.to_string_lossy().replace('\\', "/");
    let mut findings = Vec::new();
    findings.extend(panic_path(&name, toks));
    findings.extend(wall_clock(&name, toks));
    findings.extend(default_hashmap(&name, toks));
    let spans = cfg_test_spans(toks);
    exempt_test_spans(findings, &spans)
}

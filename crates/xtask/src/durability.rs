//! Durability-protocol checker over the [`crate::callgraph`].
//!
//! The epoch tier's crash-safety argument rests on a narrow protocol:
//! every file mutation flows through a handful of audited *commit
//! funnels* (`write_file_atomic` and the `EpochDir` entry points),
//! each funnel fsyncs before it renames, and no durable-tier code
//! silently discards an `io::Result`. `crashsim` verifies the protocol
//! holds schedule-by-schedule at runtime; this pass pins it statically
//! so a refactor cannot quietly open a new, unverified mutation path.
//!
//! | rule                       | what it rejects |
//! |----------------------------|-----------------|
//! | `durability-funnel`        | `rename` / `create` / `remove_file` / `write_all` reachable from a durability-crate `pub fn` without passing a declared funnel |
//! | `durability-sync`          | a handle `create`d and `write_all`'d, then `rename`d with no `sync_all` in between (torn-publish window) |
//! | `durability-drop`          | `.ok()` / `let _ =` discarding an `io::Result` in durable-tier code, unless annotated `// LINT: lossy(reason)` |
//! | `durability-unused-marker` | a `lossy` marker that justifies no dropped result (annotation rot) |
//! | `durability-lock`          | a second `Mutex` acquired (directly or transitively) while one is held |
//!
//! Scope: `[durability] crates` from `lint.toml`, non-test spans only.
//! The funnel rule generalizes the invariant-funnel discipline from
//! the panic pass: funnels are *absorbing* — reachability stops at
//! them, and their own bodies are exempt, because the funnel body is
//! exactly the audited code `crashsim` enumerates. Funnel entries that
//! match no workspace fn are fatal configuration rot, same as `[taint]
//! sources`: a renamed funnel must not silently disable the policy.

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::rules::Finding;
use std::collections::VecDeque;

/// Configuration slice for the durability pass (from `lint.toml`
/// `[durability]`).
#[derive(Debug, Clone, Default)]
pub struct DurabilityConfig {
    /// Crates whose non-test code the rules apply to.
    pub crates: Vec<String>,
    /// Qualified-path suffixes of the commit funnels.
    pub funnels: Vec<String>,
}

/// Call names that mutate the filesystem. Reaching one of these
/// outside a funnel is a new, unaudited commit path.
const MUTATION_CALLS: &[&str] = &["rename", "create", "remove_file", "write_all"];

/// Call names returning `io::Result` whose silent discard loses a
/// write error. `write!` is not in scope: the `!` makes it a macro,
/// not a call site, and durable-tier code does not format to disk.
const IO_RESULT_CALLS: &[&str] = &[
    "write_all",
    "write",
    "sync_all",
    "sync_data",
    "sync_dir",
    "flush",
    "rename",
    "remove_file",
    "create",
    "create_dir_all",
    "remove_dir_all",
    "set_len",
];

/// Lock acquisition call names. `RwLock::read`/`write` are too
/// ambiguous for name-based matching; the durable tier uses `Mutex`.
const LOCK_CALLS: &[&str] = &["lock", "try_lock"];

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !matches!(toks[i].kind, TokKind::Comment(_)) {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(toks[j].kind, TokKind::Comment(_)))
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Suffix match with a `::` segment boundary (same rule as `[taint]
/// sources`): `"EpochDir::append"` matches
/// `cocosketch::segment::EpochDir::append` but not `::reappend`.
fn suffix_matches(qualified: &str, suffix: &str) -> bool {
    qualified == suffix
        || (qualified.ends_with(suffix)
            && qualified[..qualified.len() - suffix.len()].ends_with("::"))
}

/// Render a BFS path (parent pointers per fn index) as `a::b -> c::d`.
fn render_chain(graph: &CallGraph, parent: &[Option<(usize, u32)>], idx: usize) -> String {
    let mut hops = vec![idx];
    let mut at = idx;
    while let Some((up, _)) = parent[at] {
        hops.push(up);
        at = up;
    }
    hops.reverse();
    hops.iter()
        .map(|&h| graph.fns[h].qualified.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Run the durability pass. `Err` is configuration rot: a `[durability]
/// funnels` suffix naming no workspace fn means a funnel was renamed
/// and the reachability fence silently moved.
pub fn check(graph: &CallGraph, cfg: &DurabilityConfig) -> Result<Vec<Finding>, String> {
    if cfg.crates.is_empty() {
        return Ok(Vec::new());
    }
    let mut funnel: Vec<bool> = vec![false; graph.fns.len()];
    for suffix in &cfg.funnels {
        let mut hit = false;
        for (idx, f) in graph.fns.iter().enumerate() {
            if suffix_matches(&f.qualified, suffix) {
                funnel[idx] = true;
                hit = true;
            }
        }
        if !hit {
            return Err(format!(
                "lint.toml [durability] funnels entry `{suffix}` matches no workspace fn — \
                 remove or fix it"
            ));
        }
    }

    let mut findings = Vec::new();
    findings.extend(funnel_rule(graph, cfg, &funnel));
    findings.extend(sync_rule(graph, cfg));
    findings.extend(drop_rules(graph, cfg));
    findings.extend(lock_rule(graph, cfg));
    Ok(findings)
}

// ---------------------------------------------------------------------
// durability-funnel
// ---------------------------------------------------------------------

/// BFS from every non-funnel `pub fn` of the durability crates;
/// funnels are absorbing (never expanded, bodies exempt). Any visited
/// fn containing a [`MUTATION_CALLS`] call site is a commit path that
/// bypasses the audited funnels.
fn funnel_rule(graph: &CallGraph, cfg: &DurabilityConfig, funnel: &[bool]) -> Vec<Finding> {
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.fns.len()];
    let mut seen: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.is_pub && !f.in_test && !funnel[idx] && cfg.crates.contains(&f.crate_name) {
            seen[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &ci in &graph.edges[at] {
            let call = &graph.calls[ci];
            for &callee in &call.resolved {
                if !seen[callee] && !funnel[callee] && !graph.fns[callee].in_test {
                    seen[callee] = true;
                    parent[callee] = Some((at, call.line));
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if !seen[idx] {
            continue;
        }
        let file = &graph.files[f.file];
        let chain = render_chain(graph, &parent, idx);
        for &ci in &graph.edges[idx] {
            let call = &graph.calls[ci];
            if !MUTATION_CALLS.contains(&call.name.as_str())
                || in_spans(&file.test_spans, call.line)
            {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line: call.line,
                rule: "durability-funnel",
                message: format!(
                    "`{}` in `{}` mutates the filesystem outside the declared commit \
                     funnels — route it through a `[durability] funnels` fn (crashsim \
                     only verifies the funnels)",
                    call.name, f.qualified
                ),
                chain: Some(chain.clone()),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// durability-sync
// ---------------------------------------------------------------------

/// One file handle created inside the fn under scan.
struct Handle {
    name: String,
    /// Has an un-`sync_all`'d `write_all` (torn-publish candidate).
    dirty: bool,
}

/// Per-fn token scan: a handle obtained from a `create(...)` call,
/// written with `write_all`, must see `sync_all` on the same handle
/// before any `rename(...)` in the fn — otherwise the rename can
/// publish a name whose bytes never reached the platter.
fn sync_rule(graph: &CallGraph, cfg: &DurabilityConfig) -> Vec<Finding> {
    // Parent chains for the report: plain reachability from the
    // durability crates' pub fns, funnels *not* absorbing, so a broken
    // funnel body shows the entry path that trusts it.
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.fns.len()];
    let mut seen: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.is_pub && !f.in_test && cfg.crates.contains(&f.crate_name) {
            seen[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &ci in &graph.edges[at] {
            let call = &graph.calls[ci];
            for &callee in &call.resolved {
                if !seen[callee] && !graph.fns[callee].in_test {
                    seen[callee] = true;
                    parent[callee] = Some((at, call.line));
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.in_test || !cfg.crates.contains(&f.crate_name) {
            continue;
        }
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let end = f.body.1.min(toks.len());
        let mut handles: Vec<Handle> = Vec::new();
        let mut k = f.body.0;
        while k < end {
            let tok = &toks[k];
            if in_spans(&file.test_spans, tok.line) {
                k += 1;
                continue;
            }
            match ident(tok) {
                // `let [mut] h = ... create(...) ...;` registers `h`.
                Some("let") => {
                    let Some(mut j) = next_code(toks, k + 1) else {
                        break;
                    };
                    if ident(&toks[j]) == Some("mut") {
                        let Some(n) = next_code(toks, j + 1) else {
                            break;
                        };
                        j = n;
                    }
                    let Some(name) = ident(&toks[j]) else {
                        k += 1;
                        continue;
                    };
                    // Scan the initializer (to the statement `;`) for
                    // a `create(` call.
                    let mut m = j + 1;
                    let mut depth = 0i32;
                    let mut creates = false;
                    while m < end {
                        match &toks[m].kind {
                            TokKind::Punct('(') | TokKind::Punct('{') | TokKind::Punct('[') => {
                                depth += 1
                            }
                            TokKind::Punct(')') | TokKind::Punct('}') | TokKind::Punct(']') => {
                                depth -= 1
                            }
                            TokKind::Punct(';') if depth <= 0 => break,
                            TokKind::Ident(s)
                                if s == "create"
                                    && next_code(toks, m + 1)
                                        .is_some_and(|p| is_punct(&toks[p], '(')) =>
                            {
                                creates = true;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    if creates {
                        handles.push(Handle {
                            name: name.to_string(),
                            dirty: false,
                        });
                    }
                    k = j + 1;
                }
                // `h.write_all(` / `h.sync_all(` updates the handle.
                Some(name) if handles.iter().any(|h| h.name == name) => {
                    if let Some(d) = next_code(toks, k + 1) {
                        if is_punct(&toks[d], '.') {
                            if let Some(m) = next_code(toks, d + 1) {
                                let h = handles.iter_mut().find(|h| h.name == name).unwrap();
                                match ident(&toks[m]) {
                                    Some("write_all") | Some("write") => h.dirty = true,
                                    Some("sync_all") | Some("sync_data") => h.dirty = false,
                                    _ => {}
                                }
                            }
                        }
                    }
                    k += 1;
                }
                // `rename(` with a dirty handle in scope is the bug.
                Some("rename") => {
                    let is_call = next_code(toks, k + 1).is_some_and(|p| is_punct(&toks[p], '('))
                        && !prev_code(toks, k).is_some_and(|p| ident(&toks[p]) == Some("fn"));
                    if is_call {
                        for h in handles.iter_mut().filter(|h| h.dirty) {
                            findings.push(Finding {
                                file: file.path.clone(),
                                line: tok.line,
                                rule: "durability-sync",
                                message: format!(
                                    "`rename` in `{}` publishes `{}` without `sync_all` \
                                     after its last write — a crash can surface the new \
                                     name with torn or missing bytes; fsync the handle \
                                     before renaming",
                                    f.qualified, h.name
                                ),
                                chain: seen[idx].then(|| render_chain(graph, &parent, idx)),
                            });
                            // One report per broken pairing, not per
                            // subsequent rename.
                            h.dirty = false;
                        }
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// durability-drop + durability-unused-marker
// ---------------------------------------------------------------------

/// Scan durability-crate files for silently discarded `io::Result`s:
/// `.ok()` directly on an [`IO_RESULT_CALLS`] call, and `let _ =`
/// statements whose initializer contains one. A `// LINT:
/// lossy(reason)` marker covering the line exempts it; markers that
/// exempt nothing are themselves flagged (annotation rot).
fn drop_rules(graph: &CallGraph, cfg: &DurabilityConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &graph.files {
        if !cfg.crates.contains(&file.crate_name) {
            continue;
        }
        let toks = &file.toks;
        let covered = |line: u32| {
            file.lossy_markers
                .iter()
                .find(|m| m.covers.contains(&line))
                .map(|m| m.line)
        };
        let mut used_markers: Vec<u32> = Vec::new();
        let mut drop_site = |line: u32, what: &str, findings: &mut Vec<Finding>| {
            if let Some(marker_line) = covered(line) {
                used_markers.push(marker_line);
                return;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line,
                rule: "durability-drop",
                message: format!(
                    "dropped `io::Result` of `{what}` in durable-tier code — a swallowed \
                     write error is silent data loss; handle it or annotate the line \
                     with `// LINT: lossy(reason)`"
                ),
                chain: None,
            });
        };

        for (i, tok) in toks.iter().enumerate() {
            if in_spans(&file.test_spans, tok.line) {
                continue;
            }
            match ident(tok) {
                // `<io call>(...).ok()`
                Some("ok") => {
                    let Some(open) = next_code(toks, i + 1) else {
                        continue;
                    };
                    let close = next_code(toks, open + 1);
                    if !is_punct(&toks[open], '(')
                        || !close.is_some_and(|c| is_punct(&toks[c], ')'))
                    {
                        continue;
                    }
                    let Some(dot) = prev_code(toks, i) else {
                        continue;
                    };
                    if !is_punct(&toks[dot], '.') {
                        continue;
                    }
                    // The receiver must be a completed call `name(...)`:
                    // match the `)` before the dot back to its `(`.
                    let Some(mut p) = prev_code(toks, dot) else {
                        continue;
                    };
                    // Tolerate `?` between the call and `.ok()`.
                    if is_punct(&toks[p], '?') {
                        let Some(q) = prev_code(toks, p) else {
                            continue;
                        };
                        p = q;
                    }
                    if !is_punct(&toks[p], ')') {
                        continue;
                    }
                    let mut depth = 1i32;
                    let mut o = p;
                    while o > 0 && depth > 0 {
                        o -= 1;
                        match &toks[o].kind {
                            TokKind::Punct(')') => depth += 1,
                            TokKind::Punct('(') => depth -= 1,
                            _ => {}
                        }
                    }
                    let Some(callee) = prev_code(toks, o) else {
                        continue;
                    };
                    if let Some(name) = ident(&toks[callee]) {
                        if IO_RESULT_CALLS.contains(&name) {
                            drop_site(tok.line, name, &mut findings);
                        }
                    }
                }
                // `let _ = <expr containing an io call>;`
                Some("let") => {
                    let Some(u) = next_code(toks, i + 1) else {
                        continue;
                    };
                    if ident(&toks[u]) != Some("_") {
                        continue;
                    }
                    let Some(eq) = next_code(toks, u + 1) else {
                        continue;
                    };
                    if !is_punct(&toks[eq], '=') {
                        continue;
                    }
                    let mut m = eq + 1;
                    let mut depth = 0i32;
                    while m < toks.len() {
                        match &toks[m].kind {
                            TokKind::Punct('(') | TokKind::Punct('{') | TokKind::Punct('[') => {
                                depth += 1
                            }
                            TokKind::Punct(')') | TokKind::Punct('}') | TokKind::Punct(']') => {
                                depth -= 1
                            }
                            TokKind::Punct(';') if depth <= 0 => break,
                            TokKind::Ident(s)
                                if IO_RESULT_CALLS.contains(&s.as_str())
                                    && next_code(toks, m + 1)
                                        .is_some_and(|p| is_punct(&toks[p], '(')) =>
                            {
                                drop_site(tok.line, s, &mut findings);
                                break;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                }
                _ => {}
            }
        }

        for marker in &file.lossy_markers {
            if in_spans(&file.test_spans, marker.line) || used_markers.contains(&marker.line) {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line: marker.line,
                rule: "durability-unused-marker",
                message: "`LINT: lossy` marker covers no dropped `io::Result` — the code \
                          it justified is gone; remove the stale annotation"
                    .to_string(),
                chain: None,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// durability-lock
// ---------------------------------------------------------------------

/// From every durability-crate fn that acquires a lock, walk its
/// non-lock call edges; reaching a *different* fn that also acquires
/// one means two `Mutex`es can be held at once — the deadlock shape
/// the poisoning/compaction protocol forbids. Self-loop edges are
/// skipped: broad method resolution maps `guard.append(..)` back onto
/// the caller itself, which holds one lock, not two.
fn lock_rule(graph: &CallGraph, cfg: &DurabilityConfig) -> Vec<Finding> {
    // First lock-acquisition line per fn, outside test spans.
    let acq: Vec<Option<u32>> = graph
        .fns
        .iter()
        .enumerate()
        .map(|(idx, f)| {
            if f.in_test {
                return None;
            }
            let file = &graph.files[f.file];
            graph.edges[idx]
                .iter()
                .map(|&ci| &graph.calls[ci])
                .find(|c| {
                    LOCK_CALLS.contains(&c.name.as_str()) && !in_spans(&file.test_spans, c.line)
                })
                .map(|c| c.line)
        })
        .collect();

    let mut findings = Vec::new();
    for (root, f) in graph.fns.iter().enumerate() {
        if f.in_test || acq[root].is_none() || !cfg.crates.contains(&f.crate_name) {
            continue;
        }
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.fns.len()];
        let mut seen: Vec<bool> = vec![false; graph.fns.len()];
        seen[root] = true;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(at) = queue.pop_front() {
            // A reached fn that itself acquires is reported and not
            // expanded: code beyond it runs under *its* lock and is
            // analyzed with it as the root.
            if at != root && acq[at].is_some() {
                let g = &graph.fns[at];
                findings.push(Finding {
                    file: graph.files[g.file].path.clone(),
                    line: acq[at].unwrap(),
                    rule: "durability-lock",
                    message: format!(
                        "`{}` acquires a lock while `{}` (line {}) already holds one — \
                         nested Mutex acquisition deadlocks under contention; release \
                         the first guard before calling down",
                        g.qualified,
                        f.qualified,
                        acq[root].unwrap()
                    ),
                    chain: Some(render_chain(graph, &parent, at)),
                });
                continue;
            }
            for &ci in &graph.edges[at] {
                let call = &graph.calls[ci];
                if LOCK_CALLS.contains(&call.name.as_str()) {
                    continue;
                }
                // Follow only precisely-resolved edges: bare-`self`
                // methods and free/path calls. Broad method resolution
                // (any same-named in-impl fn) is fine for rare sinks
                // like panics, but lock acquisition hides behind
                // ubiquitous accessor names (`len`, `covers`), and
                // `guard.len()` must not become an edge into every
                // type with a `len`.
                if call.is_method && !call.self_recv {
                    continue;
                }
                for &callee in &call.resolved {
                    if callee == at || seen[callee] || graph.fns[callee].in_test {
                        continue;
                    }
                    seen[callee] = true;
                    parent[callee] = Some((at, call.line));
                    queue.push_back(callee);
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn demo_cfg() -> DurabilityConfig {
        DurabilityConfig {
            crates: vec!["store".to_string()],
            funnels: vec!["disk::commit".to_string()],
        }
    }

    fn graph(store_src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        crate::callgraph::parse_file(&mut g, "store", "crates/store/src/disk.rs", store_src);
        let crates = vec![crate::workspace::CrateInfo {
            name: "store".into(),
            dir: "crates/store".into(),
            deps: vec![],
        }];
        crate::callgraph::resolve(&mut g, &crates);
        g
    }

    const CLEAN_FUNNEL: &str = "\
        pub fn publish(data: &[u8]) -> io::Result<()> { commit(data) }\n\
        fn commit(data: &[u8]) -> io::Result<()> {\n\
            let mut f = fs.create(tmp)?;\n\
            f.write_all(data)?;\n\
            f.sync_all()?;\n\
            fs.rename(tmp, dst)\n\
        }\n";

    #[test]
    fn missing_funnel_is_fatal_rot() {
        let g = graph("pub fn publish() {}");
        let err = check(&g, &demo_cfg()).unwrap_err();
        assert!(err.contains("matches no workspace fn"), "{err}");
    }

    #[test]
    fn clean_funnel_protocol_passes() {
        let g = graph(CLEAN_FUNNEL);
        let f = check(&g, &demo_cfg()).unwrap();
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn rogue_rename_outside_the_funnel_is_flagged_with_chain() {
        let src = "\
            pub fn publish(data: &[u8]) -> io::Result<()> { commit(data) }\n\
            fn commit(data: &[u8]) -> io::Result<()> { fs::rename(a, b) }\n";
        let cfg = DurabilityConfig {
            crates: vec!["store".to_string()],
            funnels: vec!["disk::publish".to_string()],
        };
        // `publish` is the funnel here, so `commit`'s rename is fine —
        // but only when reached through it. Add a second entry that
        // skips the funnel:
        let src2 = format!("{src}pub fn sidedoor() -> io::Result<()> {{ commit(&[]) }}\n");
        let f = check(&graph(src), &cfg).unwrap();
        assert!(f.is_empty(), "{f:#?}");
        let f = check(&graph(&src2), &cfg).unwrap();
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "durability-funnel");
        assert_eq!(f[0].line, 2);
        assert_eq!(
            f[0].chain.as_deref().unwrap(),
            "store::disk::sidedoor -> store::disk::commit"
        );
    }

    #[test]
    fn broken_sync_rename_pairing_is_flagged() {
        let src = "\
            pub fn publish(data: &[u8]) -> io::Result<()> { commit(data) }\n\
            fn commit(data: &[u8]) -> io::Result<()> {\n\
                let mut f = fs.create(tmp)?;\n\
                f.write_all(data)?;\n\
                fs.rename(tmp, dst)\n\
            }\n";
        let f = check(&graph(src), &demo_cfg()).unwrap();
        let sync: Vec<_> = f.iter().filter(|f| f.rule == "durability-sync").collect();
        assert_eq!(sync.len(), 1, "{f:#?}");
        assert_eq!(sync[0].line, 5);
        assert_eq!(
            sync[0].chain.as_deref().unwrap(),
            "store::disk::publish -> store::disk::commit"
        );
    }

    #[test]
    fn dropped_io_results_require_a_lossy_marker() {
        let src = "\
            pub fn publish(data: &[u8]) -> io::Result<()> { commit(data) }\n\
            fn commit(data: &[u8]) -> io::Result<()> {\n\
                let mut f = fs.create(tmp)?;\n\
                f.write_all(data)?;\n\
                f.sync_all()?;\n\
                fs.rename(tmp, dst)?;\n\
                let _ = fs.sync_dir(root);\n\
                fs.remove_file(tmp).ok();\n\
                sync_dir(root).ok(); // LINT: lossy(best effort, reopen adopts)\n\
                Ok(())\n\
            }\n";
        let f = check(&graph(src), &demo_cfg()).unwrap();
        let drops: Vec<_> = f.iter().filter(|f| f.rule == "durability-drop").collect();
        assert_eq!(drops.len(), 2, "{f:#?}");
        assert_eq!(drops[0].line, 7);
        assert_eq!(drops[1].line, 8);
        assert!(!f.iter().any(|f| f.rule == "durability-unused-marker"));
    }

    #[test]
    fn stale_lossy_marker_is_rot() {
        let src = "\
            pub fn publish(data: &[u8]) -> io::Result<()> { commit(data) }\n\
            fn commit(data: &[u8]) -> io::Result<()> {\n\
                // LINT: lossy(this used to cover a sync_dir drop)\n\
                let x = 1;\n\
                let _ = x;\n\
                commit_inner(data)\n\
            }\n\
            fn commit_inner(data: &[u8]) -> io::Result<()> {\n\
                let mut f = fs.create(tmp)?;\n\
                f.write_all(data)?;\n\
                f.sync_all()?;\n\
                fs.rename(tmp, dst)\n\
            }\n";
        let cfg = DurabilityConfig {
            crates: vec!["store".to_string()],
            funnels: vec!["disk::commit".to_string()],
        };
        let f = check(&graph(src), &cfg).unwrap();
        let rot: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "durability-unused-marker")
            .collect();
        assert_eq!(rot.len(), 1, "{f:#?}");
        assert_eq!(rot[0].line, 3);
    }

    #[test]
    fn nested_lock_is_flagged_with_chain() {
        let src = "\
            pub struct A { m: Mutex<u32> }\n\
            impl A {\n\
                pub fn outer(&self) {\n\
                    let g = self.m.lock().unwrap();\n\
                    helper(*g);\n\
                }\n\
            }\n\
            fn helper(v: u32) { inner(v) }\n\
            fn inner(v: u32) {\n\
                let g = OTHER.lock().unwrap();\n\
            }\n";
        let g = graph(src);
        let f = check(&g, &demo_cfg());
        // `disk::commit` funnel is absent in this source; use a cfg
        // with a funnel that exists.
        let cfg = DurabilityConfig {
            crates: vec!["store".to_string()],
            funnels: vec!["disk::helper".to_string()],
        };
        let f = f.err().map(|_| check(&g, &cfg).unwrap()).unwrap();
        let locks: Vec<_> = f.iter().filter(|f| f.rule == "durability-lock").collect();
        assert_eq!(locks.len(), 1, "{f:#?}");
        assert_eq!(locks[0].line, 10);
        assert_eq!(
            locks[0].chain.as_deref().unwrap(),
            "store::disk::A::outer -> store::disk::helper -> store::disk::inner"
        );
    }

    #[test]
    fn single_lock_paths_are_clean() {
        let src = "\
            pub struct A { m: Mutex<u32> }\n\
            impl A {\n\
                pub fn outer(&self) -> u32 { *self.m.lock().unwrap() }\n\
                pub fn twice(&self) -> u32 { self.outer() + self.outer() }\n\
            }\n";
        let cfg = DurabilityConfig {
            crates: vec!["store".to_string()],
            funnels: vec!["A::outer".to_string()],
        };
        let f = check(&graph(src), &cfg).unwrap();
        assert!(f.is_empty(), "{f:#?}");
    }
}

//! Untrusted-input taint analysis over the [`crate::callgraph`].
//!
//! The wire protocol parses hostile bytes into lengths, counts, and
//! indices. A length that reaches `Vec::with_capacity` unclamped is a
//! remote allocation bomb; length arithmetic that wraps defeats the
//! very bounds check guarding it (a `rows * row_len` product that
//! overflows can equal `body.len()` while `rows` is enormous). This
//! pass follows bytes from the `[taint] sources` in `lint.toml` to
//! those sinks and demands visible sanitization on every path.
//!
//! ## Propagation
//!
//! Multi-source BFS over the call graph, seeded at every fn whose
//! qualified path suffix-matches a `[taint] sources` entry. Taint
//! follows *raw bytes*: an edge is taken only when the callee's
//! signature mentions `u8` (byte slices, byte readers) — once a parser
//! returns typed values, its callers are the query engine's problem,
//! not this pass's. Each reached fn carries the shortest call chain
//! from its source, rendered `a::b -> c::d` like the panic pass.
//!
//! ## Sinks and sanitizers
//!
//! | sink          | fires on                                   | sanitized by |
//! |---------------|--------------------------------------------|--------------|
//! | `taint-alloc` | `with_capacity(len)` / `.resize(len, ..)` with a non-literal length | `.min(...)`, a `[taint] sanitizers` ident in the argument, a `checked_*` producing the length, or an earlier comparison of the length ident |
//! | `taint-index` | slice indexing in a taint-reachable fn     | the panic pass's boundedness heuristics (`%`/`&` masking, literal index) or `// LINT: bounded(reason)` |
//! | `taint-arith` | `+`/`*` between identifiers where either side is a `[taint] length_idents` name | `checked_*`/`saturating_*` (no bare operator remains) or `// LINT: bounded(reason)` |
//!
//! The asymmetry is deliberate: an earlier comparison sanitizes an
//! *allocation* (the length was range-checked before use) but never
//! *arithmetic* — wrapping happens before any comparison of the
//! product, which is exactly the bug class the arith sink exists to
//! catch.

use crate::callgraph::{CallGraph, FnItem};
use crate::lexer::{TokKind, Token};
use crate::rules::Finding;
use std::collections::VecDeque;

/// Configuration slice for the taint pass (from `lint.toml` `[taint]`).
#[derive(Debug, Clone, Default)]
pub struct TaintConfig {
    /// Qualified-path suffixes of untrusted-input entry points.
    pub sources: Vec<String>,
    /// Identifier names whose presence in a length expression bounds
    /// it (e.g. `MAX_FRAME`).
    pub sanitizers: Vec<String>,
    /// Identifier names treated as attacker-controlled lengths by the
    /// arithmetic sink.
    pub length_idents: Vec<String>,
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(toks[j].kind, TokKind::Comment(_)))
}

fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !matches!(toks[i].kind, TokKind::Comment(_)) {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Suffix match with a `::` segment boundary (same rule as `[hot]
/// extra`): `"Request::decode"` matches `serve::wire::Request::decode`
/// but not `serve::wire::PreRequest::redecode`.
fn suffix_matches(qualified: &str, suffix: &str) -> bool {
    qualified == suffix
        || (qualified.ends_with(suffix)
            && qualified[..qualified.len() - suffix.len()].ends_with("::"))
}

/// Does the fn's signature (tokens between its `fn` keyword and its
/// body `{`) mention `u8`? Bytes are the taint carrier: an edge into a
/// fn that does not take raw bytes leaves the parse boundary.
fn sig_mentions_u8(graph: &CallGraph, f: &FnItem) -> bool {
    let toks = &graph.files[f.file].toks;
    let end = f.body.0.min(toks.len());
    // Walk back from the body to the `fn` keyword of *this* fn.
    let mut start = end;
    while start > 0 {
        start -= 1;
        if ident(&toks[start]) == Some("fn") && toks[start].line == f.line {
            break;
        }
    }
    toks[start..end].iter().any(|t| ident(t) == Some("u8"))
}

/// Render the BFS path from a taint source down to `idx`.
fn render_chain(graph: &CallGraph, parent: &[Option<(usize, u32)>], idx: usize) -> String {
    let mut hops = vec![idx];
    let mut at = idx;
    while let Some((up, _)) = parent[at] {
        hops.push(up);
        at = up;
    }
    hops.reverse();
    hops.iter()
        .map(|&h| graph.fns[h].qualified.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Is the identifier at `k` visibly sanitized at this use or earlier
/// in `toks[from..k]`? Recognized shapes, per the module docs:
/// `x.min(...)`, `x.checked_*(...)`/`x.saturating_*(...)`, and
/// comparisons (`x <`, `x >`, `<= x`, `== x`, `!= x`, ...). A plain
/// `= x` (assignment RHS) is not a comparison.
fn ident_sanitized(toks: &[Token], from: usize, k: usize, name: &str) -> bool {
    let mut j = from;
    while j <= k {
        if ident(&toks[j]) != Some(name) {
            j += 1;
            continue;
        }
        // `name . min (` / `name . checked_* (` / `name . saturating_* (`
        if let Some(d) = next_code(toks, j + 1) {
            if is_punct(&toks[d], '.') {
                if let Some(m) = next_code(toks, d + 1) {
                    if ident(&toks[m]).is_some_and(|s| {
                        s == "min" || s.starts_with("checked_") || s.starts_with("saturating_")
                    }) {
                        return true;
                    }
                }
            }
            // `name <` / `name >`
            if is_punct(&toks[d], '<') || is_punct(&toks[d], '>') {
                return true;
            }
        }
        if let Some(p) = prev_code(toks, j) {
            // `< name` / `> name`
            if is_punct(&toks[p], '<') || is_punct(&toks[p], '>') {
                return true;
            }
            // `== name` / `!= name` / `<= name` / `>= name`: the `=`
            // directly before must itself follow a comparison head.
            if is_punct(&toks[p], '=') {
                if let Some(pp) = prev_code(toks, p) {
                    if matches!(
                        toks[pp].kind,
                        TokKind::Punct('=')
                            | TokKind::Punct('!')
                            | TokKind::Punct('<')
                            | TokKind::Punct('>')
                    ) {
                        return true;
                    }
                }
            }
        }
        j += 1;
    }
    false
}

/// Run the taint pass. `Err` is configuration rot: a `[taint] sources`
/// suffix naming no workspace fn means the entry point was renamed and
/// the policy silently stopped applying.
pub fn check(graph: &CallGraph, cfg: &TaintConfig) -> Result<Vec<Finding>, String> {
    if cfg.sources.is_empty() {
        return Ok(Vec::new());
    }
    for suffix in &cfg.sources {
        let hits = graph
            .fns
            .iter()
            .any(|f| suffix_matches(&f.qualified, suffix));
        if !hits {
            return Err(format!(
                "lint.toml [taint] sources entry `{suffix}` matches no workspace fn — \
                 remove or fix it"
            ));
        }
    }

    // Multi-source BFS with parent chains; edges only into fns whose
    // signature mentions u8 (see the module docs).
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.fns.len()];
    let mut seen: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if !f.in_test && cfg.sources.iter().any(|s| suffix_matches(&f.qualified, s)) {
            seen[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &ci in &graph.edges[at] {
            let call = &graph.calls[ci];
            for &callee in &call.resolved {
                if seen[callee] || graph.fns[callee].in_test {
                    continue;
                }
                if !sig_mentions_u8(graph, &graph.fns[callee]) {
                    continue;
                }
                seen[callee] = true;
                parent[callee] = Some((at, call.line));
                queue.push_back(callee);
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, reached) in seen.iter().enumerate() {
        if !reached {
            continue;
        }
        let f = &graph.fns[idx];
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let chain = render_chain(graph, &parent, idx);
        let body_end = f.body.1.min(toks.len());
        let skip =
            |line: u32| in_spans(&file.test_spans, line) || file.bounded_lines.contains(&line);

        let mut k = f.body.0;
        while k < body_end {
            match &toks[k].kind {
                // ----- allocation-from-length sinks -----------------
                TokKind::Ident(m) if m == "with_capacity" || m == "resize" => {
                    let Some(open) = next_code(toks, k + 1) else {
                        k += 1;
                        continue;
                    };
                    if !is_punct(&toks[open], '(')
                        || prev_code(toks, k).is_some_and(|p| ident(&toks[p]) == Some("fn"))
                        || skip(toks[k].line)
                    {
                        k += 1;
                        continue;
                    }
                    // First argument's tokens (to `,` or `)` at depth 1).
                    let mut depth = 1usize;
                    let mut j = open + 1;
                    let mut arg: Vec<usize> = Vec::new();
                    while j < toks.len() && depth > 0 {
                        match toks[j].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                            TokKind::Punct(',') if depth == 1 => break,
                            _ => {}
                        }
                        if depth > 0 && !matches!(toks[j].kind, TokKind::Comment(_)) {
                            arg.push(j);
                        }
                        j += 1;
                    }
                    let all_literal = !arg.is_empty()
                        && arg.iter().all(|&i| matches!(toks[i].kind, TokKind::Num(_)));
                    let inline_sane = arg.iter().any(|&i| {
                        ident(&toks[i]).is_some_and(|s| {
                            s == "min"
                                || s.starts_with("checked_")
                                || s.starts_with("saturating_")
                                || cfg.sanitizers.iter().any(|z| z == s)
                        })
                    });
                    if arg.is_empty() || all_literal || inline_sane {
                        k += 1;
                        continue;
                    }
                    // Single-ident length: accept an earlier
                    // comparison/clamp of that ident in this body.
                    let len_ident = arg
                        .iter()
                        .filter_map(|&i| ident(&toks[i]))
                        .find(|s| !crate::callgraph::is_keyword(s));
                    let earlier_sane =
                        len_ident.is_some_and(|name| ident_sanitized(toks, f.body.0, k, name));
                    if !earlier_sane {
                        findings.push(Finding {
                            file: file.path.clone(),
                            line: toks[k].line,
                            rule: "taint-alloc",
                            message: format!(
                                "`{m}` with an untrusted length in `{}` — clamp it \
                                 (`.min(...)`, compare against MAX_FRAME) before \
                                 allocating, or the wire can demand gigabytes per frame",
                                f.qualified
                            ),
                            chain: Some(chain.clone()),
                        });
                    }
                }
                // ----- indexing sinks -------------------------------
                TokKind::Punct('[') => {
                    if let Some(site) = crate::dataflow::index_site(toks, k, body_end) {
                        if !skip(site.line) {
                            findings.push(Finding {
                                file: file.path.clone(),
                                line: site.line,
                                rule: "taint-index",
                                message: format!(
                                    "slice indexing with an untrusted index in `{}` — \
                                     use `get()` or mask/clamp the index, or annotate \
                                     with `// LINT: bounded(reason)`",
                                    f.qualified
                                ),
                                chain: Some(chain.clone()),
                            });
                        }
                    }
                }
                // ----- length-arithmetic sinks ----------------------
                TokKind::Punct(op @ ('+' | '*')) => {
                    if skip(toks[k].line) {
                        k += 1;
                        continue;
                    }
                    let lhs = prev_code(toks, k).and_then(|p| ident(&toks[p]).map(String::from));
                    let rhs =
                        next_code(toks, k + 1).and_then(|n| ident(&toks[n]).map(String::from));
                    let involved = [lhs.as_deref(), rhs.as_deref()]
                        .into_iter()
                        .flatten()
                        .any(|s| cfg.length_idents.iter().any(|l| l == s));
                    // Both operands must be expression-like (rules out
                    // `&x`, generics noise) and at least one a
                    // configured length name.
                    if involved && lhs.is_some() && rhs.is_some() {
                        let (a, b) = (lhs.as_deref().unwrap(), rhs.as_deref().unwrap());
                        let fix = if *op == '+' {
                            "checked_add"
                        } else {
                            "checked_mul"
                        };
                        findings.push(Finding {
                            file: file.path.clone(),
                            line: toks[k].line,
                            rule: "taint-arith",
                            message: format!(
                                "unchecked `{a} {op} {b}` on an untrusted length in `{}` — \
                                 the product can wrap and defeat the very bounds check \
                                 comparing it; use `{fix}` (wrap-on-purpose is never right \
                                 for a length)",
                                f.qualified
                            ),
                            chain: Some(chain.clone()),
                        });
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn demo_cfg() -> TaintConfig {
        TaintConfig {
            sources: vec!["wire::decode".to_string()],
            sanitizers: vec!["MAX_FRAME".to_string()],
            length_idents: vec!["rows".to_string(), "row_len".to_string()],
        }
    }

    fn graph(wire_src: &str, core_src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        crate::callgraph::parse_file(&mut g, "srv", "crates/srv/src/wire.rs", wire_src);
        crate::callgraph::parse_file(&mut g, "core", "crates/core/src/snap.rs", core_src);
        let crates = vec![
            crate::workspace::CrateInfo {
                name: "srv".into(),
                dir: "crates/srv".into(),
                deps: vec!["core".into()],
            },
            crate::workspace::CrateInfo {
                name: "core".into(),
                dir: "crates/core".into(),
                deps: vec![],
            },
        ];
        crate::callgraph::resolve(&mut g, &crates);
        g
    }

    #[test]
    fn missing_source_is_fatal_rot() {
        let g = graph("fn other() {}", "");
        let err = check(&g, &demo_cfg()).unwrap_err();
        assert!(err.contains("matches no workspace fn"), "{err}");
    }

    #[test]
    fn unclamped_capacity_is_reported_with_chain() {
        let g = graph(
            "pub fn decode(body: &[u8]) -> usize { snap::parse(body) }\n",
            "pub fn parse(b: &[u8]) -> usize {\n\
                 let n = b.len();\n\
                 let v: Vec<u8> = Vec::with_capacity(n);\n\
                 v.len()\n\
             }\n",
        );
        let f = check(&g, &demo_cfg()).unwrap();
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "taint-alloc");
        assert_eq!(f[0].file, "crates/core/src/snap.rs");
        assert_eq!(f[0].line, 3);
        assert_eq!(
            f[0].chain.as_deref().unwrap(),
            "srv::wire::decode -> core::snap::parse"
        );
    }

    #[test]
    fn min_clamp_and_sanitizer_comparisons_are_accepted() {
        let g = graph(
            "pub fn decode(body: &[u8]) -> usize {\n\
                 let n = body.len();\n\
                 let a: Vec<u8> = Vec::with_capacity(n.min(256));\n\
                 if n > MAX_FRAME { return 0; }\n\
                 let b: Vec<u8> = Vec::with_capacity(n);\n\
                 a.len() + b.len()\n\
             }\n",
            "",
        );
        let f = check(&g, &demo_cfg()).unwrap();
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn taint_stops_at_the_parse_boundary() {
        // `answer` takes no bytes: the allocation inside it is the
        // query engine's business, not taint's.
        let g = graph(
            "pub fn decode(body: &[u8]) -> usize { answer(body.len()) }\n\
             fn answer(n: usize) -> usize {\n\
                 let v: Vec<u64> = Vec::with_capacity(n);\n\
                 v.len()\n\
             }\n",
            "",
        );
        let f = check(&g, &demo_cfg()).unwrap();
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn length_arithmetic_is_flagged_even_when_compared() {
        // The comparison happens AFTER the product wraps — exactly the
        // bug the arith sink exists for.
        let g = graph(
            "pub fn decode(body: &[u8]) -> bool {\n\
                 let rows = body.len();\n\
                 let row_len = 12;\n\
                 body.len() != rows * row_len\n\
             }\n",
            "",
        );
        let f = check(&g, &demo_cfg()).unwrap();
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "taint-arith");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("checked_mul"));
    }

    #[test]
    fn checked_mul_has_no_bare_operator_to_flag() {
        let g = graph(
            "pub fn decode(body: &[u8]) -> bool {\n\
                 let rows = body.len();\n\
                 let row_len = 12;\n\
                 rows.checked_mul(row_len).is_some()\n\
             }\n",
            "",
        );
        let f = check(&g, &demo_cfg()).unwrap();
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn untrusted_indexing_honors_bounded_annotations() {
        let g = graph(
            "pub fn decode(body: &[u8]) -> u8 {\n\
                 let a = body[0];\n\
                 let i = a as usize;\n\
                 let b = body[i]; // LINT: bounded(i < len checked by the header parse)\n\
                 let c = body[i];\n\
                 a + b + c\n\
             }\n",
            "",
        );
        let f = check(&g, &demo_cfg()).unwrap();
        let idx: Vec<u32> = f
            .iter()
            .filter(|x| x.rule == "taint-index")
            .map(|x| x.line)
            .collect();
        // line 2 is a literal index (bounded heuristic), line 4 is
        // annotated; only line 5 fires.
        assert_eq!(idx, vec![5], "{f:#?}");
    }
}

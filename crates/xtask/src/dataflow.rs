//! Interprocedural dataflow rules over the [`crate::callgraph`].
//!
//! | rule               | what it proves                                        |
//! |--------------------|-------------------------------------------------------|
//! | `transitive-panic` | no data-plane `pub fn` reaches a panic site — syntactic (`panic!`, `unwrap`) or implicit (unbounded indexing, unguarded integer division) — anywhere in the workspace |
//! | `overflow`         | counter accumulators in data-plane crates use `wrapping_*`/`saturating_*`/`checked_*`, never bare `+`/`*`/`+=`/`*=` |
//! | `hot-alloc`        | `// LINT: hot` functions never transitively allocate outside `// LINT: cold(...)` branches |
//!
//! Findings are anchored at the offending *site* (the thing to fix)
//! and carry the full call chain from a data-plane entry point, so a
//! reviewer sees both where the panic lives and why it is reachable.
//!
//! ## Implicit panic sources and the `bounded` escape hatch
//!
//! Slice indexing and integer `/`/`%` panic only when an index is out
//! of range or a divisor is zero — conditions a token-level analysis
//! cannot prove absent. The rules use documented heuristics:
//!
//! - an index expression containing `%` or `&` (range reduction /
//!   masking) or consisting of a single integer literal is *bounded*;
//! - a divisor that is a nonzero literal, a float (`f32`/`f64` in
//!   either operand's vicinity), or clamped via `.max(...)` is
//!   *guarded*;
//! - anything else needs either a real fix (`get()`, `checked_div`) or
//!   a same-line `// LINT: bounded(reason)` annotation whose written
//!   reason states why the value is in range — the inline analogue of
//!   a `[[allow]]` entry.

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::rules::Finding;
use std::collections::VecDeque;

/// Configuration slice the dataflow rules need (assembled by
/// [`crate::run_lint`] from `lint.toml`).
#[derive(Debug, Clone, Default)]
pub struct DataflowConfig {
    /// Crates whose `pub fn`s are the transitive-panic sinks and whose
    /// files the overflow rule scans.
    pub data_plane: Vec<String>,
    /// Identifier names treated as counter accumulators by the
    /// overflow rule (field or variable names).
    pub counters: Vec<String>,
    /// Qualified-path suffixes treated as hot entry points in addition
    /// to inline `// LINT: hot` markers (e.g. `"Ring::push"`).
    pub hot_extra: Vec<String>,
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !matches!(toks[i].kind, TokKind::Comment(_)) {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(toks[j].kind, TokKind::Comment(_)))
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------
// panic-source extraction
// ---------------------------------------------------------------------

/// One direct panic site inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// 1-based line.
    pub line: u32,
    /// What panics there, e.g. "`.unwrap()`" or "slice indexing".
    pub what: String,
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Direct panic sites in `toks[range]`, honouring the file's
/// `LINT: bounded` annotations.
pub fn panic_sources(
    toks: &[Token],
    range: (usize, usize),
    bounded_lines: &[u32],
) -> Vec<PanicSource> {
    let mut out = Vec::new();
    let bounded = |line: u32| bounded_lines.contains(&line);
    let mut k = range.0;
    while k < range.1.min(toks.len()) {
        let tok = &toks[k];
        match &tok.kind {
            TokKind::Ident(name) if PANIC_METHODS.contains(&name.as_str()) => {
                let is_call = prev_code(toks, k).is_some_and(|p| is_punct(&toks[p], '.'))
                    && next_code(toks, k + 1).is_some_and(|n| is_punct(&toks[n], '('));
                if is_call {
                    out.push(PanicSource {
                        line: tok.line,
                        what: format!("`.{name}()`"),
                    });
                }
            }
            TokKind::Ident(name)
                if PANIC_MACROS.contains(&name.as_str())
                    && next_code(toks, k + 1).is_some_and(|n| is_punct(&toks[n], '!')) =>
            {
                out.push(PanicSource {
                    line: tok.line,
                    what: format!("`{name}!`"),
                });
            }
            TokKind::Punct('[') => {
                if let Some(site) = index_site(toks, k, range.1) {
                    if !bounded(tok.line) {
                        out.push(site);
                    }
                    // Either way, skip to the matching `]` so nested
                    // indexes inside the brackets are still visited
                    // exactly once: they are part of the inner walk.
                }
            }
            TokKind::Punct(op @ ('/' | '%')) => {
                if let Some(site) = division_site(toks, k, *op, range.1) {
                    if !bounded(tok.line) {
                        out.push(site);
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Classify the `[` at `k`: `Some` when it is expression indexing with
/// an unbounded index, `None` when it is not indexing at all or the
/// index is visibly bounded. Shared with the taint pass, whose
/// indexing sink uses the same boundedness heuristics.
pub(crate) fn index_site(toks: &[Token], k: usize, limit: usize) -> Option<PanicSource> {
    // Expression position: an indexable expression ends just before.
    let p = prev_code(toks, k)?;
    let indexable = match &toks[p].kind {
        TokKind::Ident(name) => !crate::callgraph::is_keyword(name),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    };
    if !indexable {
        return None;
    }
    // Inner token walk to the matching `]`.
    let mut depth = 1usize;
    let mut j = k + 1;
    let mut inner_code = 0usize;
    let mut saw_bound = false;
    let mut single_literal: Option<bool> = None; // Some(is_int)
    while j < limit.min(toks.len()) && depth > 0 {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('%') | TokKind::Punct('&') if depth == 1 => saw_bound = true,
            _ => {}
        }
        if depth > 0 && !matches!(toks[j].kind, TokKind::Comment(_)) {
            inner_code += 1;
            single_literal = match (&toks[j].kind, inner_code) {
                (TokKind::Num(text), 1) => Some(!text.contains('.')),
                _ => None,
            };
        }
        j += 1;
    }
    if saw_bound || single_literal == Some(true) {
        return None;
    }
    Some(PanicSource {
        line: toks[k].line,
        what: "slice/array indexing with an unbounded index".to_string(),
    })
}

/// Classify the `/` or `%` at `k`: `Some` when it is integer division
/// with an unguarded divisor.
fn division_site(toks: &[Token], k: usize, op: char, limit: usize) -> Option<PanicSource> {
    // LHS must be an expression (rules out `&/`, attribute noise).
    let p = prev_code(toks, k)?;
    let lhs_expr = matches!(
        &toks[p].kind,
        TokKind::Ident(_) | TokKind::Num(_) | TokKind::Punct(')') | TokKind::Punct(']')
    );
    if !lhs_expr || ident(&toks[p]).is_some_and(crate::callgraph::is_keyword) {
        return None;
    }
    // Float context on the LHS? Look a few tokens back for f32/f64.
    for back in (0..p + 1).rev().take(6) {
        if matches!(ident(&toks[back]), Some("f64") | Some("f32")) {
            return None;
        }
    }
    // RHS window: skip `=` of a compound assign, then walk one operand.
    let mut j = next_code(toks, k + 1)?;
    if is_punct(&toks[j], '=') {
        j = next_code(toks, j + 1)?;
    }
    // First RHS token a literal: nonzero integers and floats are safe;
    // a literal zero divisor is *definitely* a panic.
    if let TokKind::Num(text) = &toks[j].kind {
        let is_float = text.contains('.') || (text.contains('e') && !text.starts_with("0x"));
        let is_zero = text.trim_end_matches(|c: char| c.is_alphabetic() || c == '_') == "0";
        if is_float || !is_zero {
            return None;
        }
        return Some(PanicSource {
            line: toks[k].line,
            what: format!("`{op}` with a literal-zero divisor"),
        });
    }
    // Walk the operand: idents, field/method chains, balanced parens.
    let mut paren = 0i32;
    let mut guarded = false;
    let mut float = false;
    while j < limit.min(toks.len()) {
        match &toks[j].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') if paren > 0 => paren -= 1,
            TokKind::Ident(s) if paren >= 0 => match s.as_str() {
                "f64" | "f32" => float = true,
                "max" => guarded = true, // the `.max(1)` clamp idiom
                "as" => {}
                _ => {}
            },
            TokKind::Punct('.') | TokKind::Punct(':') | TokKind::Num(_) => {}
            _ if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if guarded || float {
        return None;
    }
    Some(PanicSource {
        line: toks[k].line,
        what: format!("integer `{op}` with an unguarded divisor"),
    })
}

// ---------------------------------------------------------------------
// transitive-panic
// ---------------------------------------------------------------------

/// Run the transitive panic-reachability rule. `per_file_covered`
/// tells the rule which (file, line) sites the per-file `panic-path`
/// rule already reports, so the same unwrap is not reported twice.
pub fn transitive_panic(
    graph: &CallGraph,
    cfg: &DataflowConfig,
    per_file_covered: &dyn Fn(&str, u32) -> bool,
) -> Vec<Finding> {
    // Direct sources per fn.
    let mut sources: Vec<Vec<PanicSource>> = Vec::with_capacity(graph.fns.len());
    for f in &graph.fns {
        if f.in_test {
            sources.push(Vec::new());
            continue;
        }
        let file = &graph.files[f.file];
        let mut srcs: Vec<PanicSource> = panic_sources(&file.toks, f.body, &file.bounded_lines)
            .into_iter()
            .filter(|s| !in_spans(&file.test_spans, s.line))
            .collect();
        // The invariant funnel (`hashkit::invariant::violated`) is the
        // audited panic; its internal `panic!` is allowlisted at the
        // per-file layer, and transitively it is *meant* to be
        // reachable — calls to it are deliberate, so its own body is
        // not a source for this rule. Callers still see it via the
        // per-file allowlist discipline.
        if f.qualified.ends_with("invariant::violated")
            || f.qualified.ends_with("invariant::violated_err")
        {
            srcs.clear();
        }
        sources.push(srcs);
    }

    // Multi-source BFS from the data-plane pub fns over forward edges;
    // `parent[f]` records (caller fn, call line) on a shortest path.
    let sink = |f: &crate::callgraph::FnItem| {
        f.is_pub && !f.in_test && cfg.data_plane.contains(&f.crate_name)
    };
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.fns.len()];
    let mut seen: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if sink(f) {
            seen[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &ci in &graph.edges[at] {
            let call = &graph.calls[ci];
            for &callee in &call.resolved {
                if !seen[callee] && !graph.fns[callee].in_test {
                    seen[callee] = true;
                    parent[callee] = Some((at, call.line));
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, srcs) in sources.iter().enumerate() {
        if srcs.is_empty() || !seen[idx] {
            continue;
        }
        let f = &graph.fns[idx];
        let file = &graph.files[f.file];
        let chain = render_chain(graph, &parent, idx);
        for s in srcs {
            if per_file_covered(&file.path, s.line) {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line: s.line,
                rule: "transitive-panic",
                message: format!(
                    "{} in `{}` is reachable from a data-plane `pub fn` — fix the site \
                     (`get()`, `checked_div`, typed error) or annotate the line with \
                     `// LINT: bounded(reason)`",
                    s.what, f.qualified
                ),
                chain: Some(chain.clone()),
            });
        }
    }
    findings
}

/// Render the BFS path from a data-plane entry down to `idx` as
/// `entry -> mid -> leaf`.
fn render_chain(graph: &CallGraph, parent: &[Option<(usize, u32)>], idx: usize) -> String {
    let mut hops = vec![idx];
    let mut at = idx;
    while let Some((up, _)) = parent[at] {
        hops.push(up);
        at = up;
    }
    hops.reverse();
    hops.iter()
        .map(|&h| graph.fns[h].qualified.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

// ---------------------------------------------------------------------
// overflow
// ---------------------------------------------------------------------

/// Unchecked `+`/`*`/`+=`/`*=` on counter-named accumulators in
/// data-plane `src/` files. Wrapping is the sanctioned semantics for
/// u64 counters: release builds already wrap, so `wrapping_*` is
/// bit-identical where it matters while removing the debug panic path
/// — the conservation invariant (sums preserved mod 2^64) survives.
pub fn overflow(graph: &CallGraph, cfg: &DataflowConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &graph.files {
        if !cfg.data_plane.contains(&file.crate_name) {
            continue;
        }
        let toks = &file.toks;
        for k in 0..toks.len() {
            let op = match toks[k].kind {
                TokKind::Punct('+') => '+',
                TokKind::Punct('*') => '*',
                _ => continue,
            };
            if in_spans(&file.test_spans, toks[k].line) {
                continue;
            }
            // `+=`/`*=` or binary `a + b` — never unary/deref: the
            // token before must end an expression.
            let Some(p) = prev_code(toks, k) else {
                continue;
            };
            // `..=`? `+` after `.` impossible; `**`? skip doubled ops.
            let accum = match &toks[p].kind {
                TokKind::Ident(name) => Some(name.clone()),
                TokKind::Punct(']') => {
                    // `rows[i][j] += w`: walk back over one or more
                    // bracket groups to the container name.
                    let mut j = p;
                    loop {
                        let mut depth = 1usize;
                        let mut i2 = j;
                        while depth > 0 && i2 > 0 {
                            i2 -= 1;
                            match toks[i2].kind {
                                TokKind::Punct(']') => depth += 1,
                                TokKind::Punct('[') => depth -= 1,
                                _ => {}
                            }
                        }
                        let Some(q) = prev_code(toks, i2) else {
                            break None;
                        };
                        match &toks[q].kind {
                            TokKind::Ident(name) => break Some(name.clone()),
                            TokKind::Punct(']') => j = q,
                            _ => break None,
                        }
                    }
                }
                _ => None,
            };
            let Some(accum) = accum else { continue };
            if !cfg.counters.iter().any(|c| c == &accum) {
                continue;
            }
            let compound = next_code(toks, k + 1).is_some_and(|n| is_punct(&toks[n], '='));
            let (shown, fix) = if compound {
                (
                    format!("{op}="),
                    if op == '+' {
                        "`x = x.wrapping_add(y)`"
                    } else {
                        "`x = x.wrapping_mul(y)`"
                    },
                )
            } else {
                (
                    op.to_string(),
                    if op == '+' {
                        "`wrapping_add`"
                    } else {
                        "`wrapping_mul`"
                    },
                )
            };
            findings.push(Finding {
                file: file.path.clone(),
                line: toks[k].line,
                rule: "overflow",
                message: format!(
                    "unchecked `{shown}` on counter `{accum}` — use {fix} (or \
                     `saturating_*`/`checked_*`) so overflow is defined, not a debug panic"
                ),
                chain: None,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// hot-alloc
// ---------------------------------------------------------------------

/// Method names that allocate when they resolve to nothing in the
/// workspace (std containers).
const ALLOC_METHODS_IF_STD: &[&str] = &["push", "insert", "extend", "reserve", "push_back"];
/// Method names that always mean allocation (no workspace fn shadows
/// them).
const ALLOC_METHODS_ALWAYS: &[&str] = &["collect", "to_vec", "to_string", "to_owned"];
/// Path heads whose associated fns allocate (`Vec::with_capacity`,
/// `Box::new`, ...).
const ALLOC_PATH_HEADS: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];
/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Run the hot-path allocation-freedom rule.
pub fn hot_alloc(graph: &CallGraph, cfg: &DataflowConfig) -> Vec<Finding> {
    // Hot roots: inline markers plus config-named suffixes.
    let hot = |idx: usize| {
        let f = &graph.fns[idx];
        f.is_hot
            || cfg.hot_extra.iter().any(|suffix| {
                f.qualified.ends_with(suffix)
                    && f.qualified[..f.qualified.len() - suffix.len()].ends_with("::")
            })
    };
    let in_cold =
        |f: &crate::callgraph::FnItem, line: u32| in_spans(&graph.files[f.file].cold_spans, line);

    // BFS from hot roots; edges leaving a cold span are not followed.
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.fns.len()];
    let mut seen: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, slot) in seen.iter_mut().enumerate() {
        if hot(idx) && !graph.fns[idx].in_test {
            *slot = true;
            queue.push_back(idx);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &ci in &graph.edges[at] {
            let call = &graph.calls[ci];
            if in_cold(&graph.fns[at], call.line) {
                continue;
            }
            for &callee in &call.resolved {
                if !seen[callee] && !graph.fns[callee].in_test {
                    seen[callee] = true;
                    parent[callee] = Some((at, call.line));
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, reachable) in seen.iter().enumerate() {
        if !reachable {
            continue;
        }
        let f = &graph.fns[idx];
        let file = &graph.files[f.file];
        let chain = render_chain(graph, &parent, idx);
        let mut report = |line: u32, what: &str| {
            if in_cold(f, line) || in_spans(&file.test_spans, line) {
                return;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line,
                rule: "hot-alloc",
                message: format!(
                    "{what} on the hot path (`{}` is reachable from a `// LINT: hot` \
                     function) — preallocate, reuse a scratch buffer, or move the branch \
                     under `// LINT: cold(reason)`",
                    f.qualified
                ),
                chain: Some(chain.clone()),
            });
        };
        // Call-shaped allocation sites inside this fn's body.
        for &ci in &graph.edges[idx] {
            let call = &graph.calls[ci];
            if call.is_method {
                if ALLOC_METHODS_ALWAYS.contains(&call.name.as_str())
                    || (ALLOC_METHODS_IF_STD.contains(&call.name.as_str())
                        && call.resolved.is_empty())
                {
                    report(call.line, &format!("`.{}(...)` allocates", call.name));
                }
            } else if let Some(head) = call.path.last() {
                if ALLOC_PATH_HEADS.contains(&head.as_str()) {
                    report(
                        call.line,
                        &format!("`{}::{}(...)` allocates", head, call.name),
                    );
                }
            }
        }
        // Macro allocation sites (not call sites: `vec![...]`).
        let toks = &file.toks;
        let mut k = f.body.0;
        while k < f.body.1.min(toks.len()) {
            if let Some(name) = ident(&toks[k]) {
                if ALLOC_MACROS.contains(&name)
                    && next_code(toks, k + 1).is_some_and(|n| is_punct(&toks[n], '!'))
                {
                    report(toks[k].line, &format!("`{name}!` allocates"));
                }
            }
            k += 1;
        }
    }
    findings.sort_by_key(|a| (a.file.clone(), a.line));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    findings
}

/// Marker-syntax errors (a `LINT:` annotation missing its written
/// reason) as findings — a malformed exemption must fail the run, not
/// silently exempt or silently lapse.
pub fn marker_errors(graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &graph.files {
        for (line, msg) in &file.marker_errors {
            findings.push(Finding {
                file: file.path.clone(),
                line: *line,
                rule: "lint-marker",
                message: msg.clone(),
                chain: None,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn demo_cfg() -> DataflowConfig {
        DataflowConfig {
            data_plane: vec!["dp".to_string()],
            counters: vec!["value".to_string(), "weight".to_string()],
            hot_extra: Vec::new(),
        }
    }

    fn two_crate_graph(dp_src: &str, util_src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        crate::callgraph::parse_file(&mut g, "dp", "crates/dp/src/lib.rs", dp_src);
        crate::callgraph::parse_file(&mut g, "util", "crates/util/src/lib.rs", util_src);
        let crates = vec![
            crate::workspace::CrateInfo {
                name: "dp".into(),
                dir: "crates/dp".into(),
                deps: vec!["util".into()],
            },
            crate::workspace::CrateInfo {
                name: "util".into(),
                dir: "crates/util".into(),
                deps: vec![],
            },
        ];
        crate::callgraph::resolve(&mut g, &crates);
        g
    }

    #[test]
    fn unwrap_two_calls_deep_is_reported_with_the_chain() {
        let g = two_crate_graph(
            "pub fn entry(x: u64) -> u64 { helper(x) }\n\
             fn helper(x: u64) -> u64 { util::deep(x) }\n",
            "pub fn deep(x: u64) -> u64 { Some(x).unwrap() }\n",
        );
        let f = transitive_panic(&g, &demo_cfg(), &|_, _| false);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].file, "crates/util/src/lib.rs");
        assert_eq!(f[0].line, 1);
        let chain = f[0].chain.as_deref().unwrap();
        assert_eq!(chain, "dp::entry -> dp::helper -> util::deep");
    }

    #[test]
    fn unreachable_panic_sites_are_not_reported() {
        let g = two_crate_graph(
            "pub fn entry(x: u64) -> u64 { x }\n",
            "pub fn lonely(x: u64) -> u64 { Some(x).unwrap() }\n",
        );
        let f = transitive_panic(&g, &demo_cfg(), &|_, _| false);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn bounded_annotation_silences_indexing() {
        let g = two_crate_graph(
            "pub fn entry(xs: &[u64], i: usize) -> u64 {\n\
                 let a = xs[i % xs.len().max(1)];\n\
                 let b = xs[i]; // LINT: bounded(caller guarantees i < len)\n\
                 let c = xs[i];\n\
                 a + b + c\n\
             }\n",
            "",
        );
        let f = transitive_panic(&g, &demo_cfg(), &|_, _| false);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("indexing"));
    }

    #[test]
    fn division_guards_are_recognised() {
        let g = two_crate_graph(
            "pub fn entry(a: u64, b: u64, xs: &[u64]) -> u64 {\n\
                 let safe_lit = a / 8;\n\
                 let safe_float = a as f64 / b as f64;\n\
                 let safe_max = a / b.max(1);\n\
                 let risky = a / b;\n\
                 safe_lit + safe_float as u64 + safe_max + risky\n\
             }\n",
            "",
        );
        let f = transitive_panic(&g, &demo_cfg(), &|_, _| false);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn overflow_flags_counter_arithmetic_only() {
        let g = two_crate_graph(
            "pub struct B { pub value: u64 }\n\
             pub fn bump(b: &mut B, w: u64, i: usize) -> u64 {\n\
                 b.value += w;\n\
                 let x = i + 1;\n\
                 b.value = b.value.wrapping_add(w);\n\
                 x as u64\n\
             }\n",
            "",
        );
        let f = overflow(&g, &demo_cfg());
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("wrapping_add"));
    }

    #[test]
    fn overflow_sees_through_index_chains() {
        let g = two_crate_graph(
            "pub fn bump(value: &mut [Vec<u64>], i: usize, j: usize, w: u64) {\n\
                 value[i][j] += w;\n\
             }\n",
            "",
        );
        let f = overflow(&g, &demo_cfg());
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hot_fn_reaching_alloc_is_reported_with_chain() {
        let g = two_crate_graph(
            "// LINT: hot\n\
             pub fn fast(x: u64) -> u64 { helper(x) }\n\
             fn helper(x: u64) -> u64 { util::build(x) }\n",
            "pub fn build(x: u64) -> u64 { let v = vec![x]; v[0] }\n",
        );
        let f = hot_alloc(&g, &demo_cfg());
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].file, "crates/util/src/lib.rs");
        assert!(f[0].message.contains("`vec!` allocates"), "{}", f[0]);
        assert_eq!(
            f[0].chain.as_deref().unwrap(),
            "dp::fast -> dp::helper -> util::build"
        );
    }

    #[test]
    fn cold_branches_may_allocate() {
        let g = two_crate_graph(
            "// LINT: hot\n\
             pub fn fast(x: u64) -> u64 {\n\
                 if x == u64::MAX {\n\
                     // LINT: cold(overflow report, once per run)\n\
                     {\n\
                         let msg = format!(\"overflow {x}\");\n\
                         return msg.len() as u64;\n\
                     }\n\
                 }\n\
                 x\n\
             }\n",
            "",
        );
        let f = hot_alloc(&g, &demo_cfg());
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn non_hot_fns_may_allocate() {
        let g = two_crate_graph("pub fn slow(x: u64) -> Vec<u64> { vec![x] }\n", "");
        let f = hot_alloc(&g, &demo_cfg());
        assert!(f.is_empty(), "{f:#?}");
    }
}

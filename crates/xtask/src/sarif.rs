//! SARIF 2.1.0 output for cocolint findings.
//!
//! Hand-rolled serialization (the workspace builds offline with zero
//! dependencies): a minimal JSON string escaper plus the subset of the
//! SARIF object model that `github/codeql-action/upload-sarif` and
//! other consumers require — `runs[0].tool.driver` with a populated
//! rule catalog, and one `result` per finding carrying `ruleId`,
//! `message.text`, and a `physicalLocation` (workspace-relative URI +
//! 1-based `startLine`). Call-chain context travels in the message
//! text so it survives viewers that only render messages.

use crate::rules::Finding;

/// Tool version stamped into `tool.driver.version`.
const VERSION: &str = "4.0.0";

/// Escape `s` for inclusion in a JSON string literal (RFC 8259 §7:
/// quote, backslash, and control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Short description per rule id, for the `tool.driver.rules` catalog.
/// Unknown ids (future rules) get a generic entry rather than failing.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "safety-comment" => "every unsafe block carries a written // SAFETY: argument",
        "panic-path" => "data-plane code must not contain syntactic panic sites",
        "transitive-panic" => {
            "no data-plane pub fn may transitively reach a panic site anywhere in the workspace"
        }
        "overflow" => "counter accumulators use wrapping/saturating/checked arithmetic",
        "hot-alloc" => "LINT: hot functions must not transitively allocate outside cold branches",
        "wall-clock" => "data-plane code must not read wall-clock time",
        "default-hashmap" => "data-plane code uses deterministic hashing",
        "crate-attrs" => "crate roots carry the lint attributes their tier requires",
        "unused-allow" => "every lint.toml [[allow]] entry must still suppress something",
        "lint-marker" => "inline LINT: markers must be well-formed and carry a reason",
        "atomics-unpaired" => {
            "an Acquire-loaded atomic needs a Release-or-stronger store somewhere, and vice versa"
        }
        "atomics-relaxed-store" => {
            "Relaxed stores to Acquire-loaded atomics carry a // LINT: relaxed(reason) annotation"
        }
        "atomics-seqcst" => {
            "SeqCst accesses document their store-buffering edge with // LINT: seqcst(reason)"
        }
        "atomics-unused-marker" => {
            "every relaxed/seqcst ordering annotation still covers a matching atomic access"
        }
        "atomics-protocol" => {
            "atomics with acquire/release edges belong to a named [[atomics.protocol]] with a model test"
        }
        "taint-alloc" => "allocations sized by untrusted wire input are clamped before use",
        "taint-index" => "slice indexing with untrusted indices is bounded or annotated",
        "taint-arith" => "length arithmetic on untrusted input uses checked operations",
        "durability-funnel" => {
            "file mutations in durable-tier code flow only through the declared commit funnels"
        }
        "durability-sync" => {
            "a written file handle is fsynced (sync_all) before any rename publishes it"
        }
        "durability-drop" => {
            "durable-tier io::Results are handled or annotated // LINT: lossy(reason), never silently dropped"
        }
        "durability-unused-marker" => {
            "every lossy annotation still covers a dropped io::Result"
        }
        "durability-lock" => {
            "durable-tier code never acquires a second Mutex while holding one"
        }
        _ => "cocolint finding",
    }
}

/// Render `findings` as a complete SARIF 2.1.0 log.
pub fn render(findings: &[Finding]) -> String {
    // Rule catalog: distinct ids in first-appearance order.
    let mut rule_ids: Vec<&str> = Vec::new();
    for f in findings {
        if !rule_ids.contains(&f.rule) {
            rule_ids.push(f.rule);
        }
    }

    let rules_json: Vec<String> = rule_ids
        .iter()
        .map(|id| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                escape(id),
                escape(rule_description(id))
            )
        })
        .collect();

    let results_json: Vec<String> = findings
        .iter()
        .map(|f| {
            let rule_index = rule_ids.iter().position(|r| *r == f.rule).unwrap_or(0);
            let mut text = f.message.clone();
            if let Some(chain) = &f.chain {
                text.push_str("; call chain: ");
                text.push_str(chain);
            }
            format!(
                "{{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"error\",\
                 \"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\
                 \"artifactLocation\":{{\"uri\":\"{}\",\"uriBaseId\":\"%SRCROOT%\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                escape(f.rule),
                rule_index,
                escape(&text),
                escape(&f.file),
                f.line.max(1)
            )
        })
        .collect();

    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"cocolint\",\"version\":\"{VERSION}\",\
         \"informationUri\":\"https://example.invalid/cocolint\",\
         \"rules\":[{rules}]}}}},\
         \"columnKind\":\"utf16CodeUnits\",\
         \"results\":[{results}]}}]}}\n",
        rules = rules_json.join(","),
        results = results_json.join(",")
    )
}

/// Render `findings` as a plain JSON array (the `--format json` shape:
/// `[{"file", "line", "rule", "message", "chain"?}]`).
pub fn render_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            let chain = match &f.chain {
                Some(c) => format!(",\"chain\":\"{}\"", escape(c)),
                None => String::new(),
            };
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"{}}}",
                escape(&f.file),
                f.line,
                escape(f.rule),
                escape(&f.message),
                chain
            )
        })
        .collect();
    format!("[{}]\n", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny recursive-descent JSON checker: enough to prove the
    /// hand-rolled output is well-formed without a JSON dependency.
    fn check_json(s: &str) -> Result<(), String> {
        let b: Vec<char> = s.chars().collect();
        let mut i = 0usize;
        fn ws(b: &[char], i: &mut usize) {
            while *i < b.len() && b[*i].is_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[char], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            match b.get(*i) {
                Some('{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        string(b, i)?;
                        ws(b, i);
                        if b.get(*i) != Some(&':') {
                            return Err(format!("expected ':' at {i:?}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(',') => *i += 1,
                            Some('}') => {
                                *i += 1;
                                return Ok(());
                            }
                            other => return Err(format!("expected ',' or '}}', got {other:?}")),
                        }
                    }
                }
                Some('[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(',') => *i += 1,
                            Some(']') => {
                                *i += 1;
                                return Ok(());
                            }
                            other => return Err(format!("expected ',' or ']', got {other:?}")),
                        }
                    }
                }
                Some('"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == '-' => {
                    while *i < b.len()
                        && (b[*i].is_ascii_digit() || matches!(b[*i], '.' | 'e' | 'E' | '+' | '-'))
                    {
                        *i += 1;
                    }
                    Ok(())
                }
                Some('t') | Some('f') | Some('n') => {
                    while *i < b.len() && b[*i].is_ascii_alphabetic() {
                        *i += 1;
                    }
                    Ok(())
                }
                other => Err(format!("unexpected {other:?}")),
            }
        }
        fn string(b: &[char], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            if b.get(*i) != Some(&'"') {
                return Err(format!("expected '\"' at {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    '\\' => *i += 2,
                    '"' => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => *i += 1,
                }
            }
            Err("unterminated string".to_string())
        }
        value(&b, &mut i)?;
        ws(&b, &mut i);
        if i != b.len() {
            return Err(format!("trailing content at {i}"));
        }
        Ok(())
    }

    fn demo_findings() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/core/src/basic.rs".to_string(),
                line: 42,
                rule: "transitive-panic",
                message: "a \"quoted\" message with a\nnewline and \\backslash".to_string(),
                chain: Some("cocosketch::Sketch::update -> util::deep".to_string()),
            },
            Finding {
                file: "lint.toml".to_string(),
                line: 7,
                rule: "unused-allow",
                message: "suppresses nothing".to_string(),
                chain: None,
            },
        ]
    }

    #[test]
    fn sarif_output_is_valid_json_with_required_fields() {
        let out = render(&demo_findings());
        check_json(&out).unwrap();
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("\"name\":\"cocolint\""));
        assert!(out.contains("\"ruleId\":\"transitive-panic\""));
        assert!(out.contains("\"startLine\":42"));
        assert!(out.contains("\"uri\":\"crates/core/src/basic.rs\""));
        // The rule catalog holds one entry per distinct rule id.
        assert!(out.contains("\"id\":\"transitive-panic\""));
        assert!(out.contains("\"id\":\"unused-allow\""));
        // Chain context rides along inside the message text.
        assert!(out.contains("call chain: cocosketch::Sketch::update"));
    }

    #[test]
    fn empty_findings_produce_an_empty_results_array() {
        let out = render(&[]);
        check_json(&out).unwrap();
        assert!(out.contains("\"results\":[]"));
    }

    #[test]
    fn json_format_escapes_and_round_trips_structure() {
        let out = render_json(&demo_findings());
        check_json(&out).unwrap();
        assert!(out.contains("\\\"quoted\\\""));
        assert!(out.contains("\\n"));
        assert!(out.contains("\"chain\":\"cocosketch::Sketch::update"));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("q\"w\\e"), "q\\\"w\\\\e");
    }
}

//! `lint.toml` reader: a minimal TOML-subset parser (zero deps, per
//! the offline-build policy).
//!
//! Supported grammar — everything `lint.toml` needs and nothing more:
//! `#` comments, top-level `key = [array-of-strings]` (single line),
//! `[attrs]`/`[overflow]`/`[hot]`/`[taint]` with the same key shape,
//! and `[[allow]]`/`[[atomics.protocol]]` entries with `key = "string"`
//! (or single-line array) fields. Anything else is a hard error, so a
//! typo in the policy file fails the lint run instead of silently
//! relaxing it.

/// One allowlist entry: suppresses findings of `rule` in `file`.
/// `reason` is mandatory and must be non-empty — an allowlist without
/// written justification is itself a lint violation.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Workspace-relative path the exemption applies to.
    pub file: String,
    /// Rule name being exempted.
    pub rule: String,
    /// Why the exemption is sound; surfaces in `--explain` style docs.
    pub reason: String,
    /// Optional call-chain glob (`*` wildcards) an interprocedural
    /// finding's chain must match for the entry to apply. Empty: match
    /// any chain (including none).
    pub chain: String,
    /// Line of the `[[allow]]` header, for error reporting.
    pub line: u32,
}

/// One `[[atomics.protocol]]` entry: a named group of atomic fields
/// implementing one synchronization protocol, linked to the model test
/// that verifies it. Naming a nonexistent field or test is fatal —
/// protocol tables must not rot.
#[derive(Debug, Clone, Default)]
pub struct ProtocolEntry {
    /// Protocol name, e.g. `"left-right"` (documentation only).
    pub name: String,
    /// Crate (must be in the `lock_free` tier) declaring the fields.
    pub krate: String,
    /// Atomic field/binding names the protocol groups.
    pub fields: Vec<String>,
    /// Test fn (usually a loom model) that verifies the protocol.
    pub model: String,
    /// Line of the `[[atomics.protocol]]` header, for error reporting.
    pub line: u32,
}

/// Match `pattern` (a glob where `*` matches any run of characters,
/// including `::`) against `text`, anchored at both ends.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'*') => (0..=t.len()).any(|skip| inner(&p[1..], &t[skip..])),
            Some(&c) => t.first() == Some(&c) && inner(&p[1..], &t[1..]),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates whose non-test code the panic-path / wall-clock /
    /// default-hashmap rules apply to.
    pub data_plane: Vec<String>,
    /// Crates whose non-test code must not name blocking sync
    /// primitives (`Mutex`, `RwLock`, `Condvar`) — the lock-free rule.
    pub lock_free: Vec<String>,
    /// Crates that must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe: Vec<String>,
    /// Crates that must carry `#![deny(unsafe_code)]` (audited unsafe
    /// kept behind item-level `#[allow]`s).
    pub deny_unsafe: Vec<String>,
    /// File/rule exemptions.
    pub allows: Vec<AllowEntry>,
    /// `[overflow] counters`: identifier names the overflow rule
    /// treats as counter accumulators.
    pub overflow_counters: Vec<String>,
    /// `[hot] extra`: qualified-path suffixes treated as hot entry
    /// points in addition to inline `// LINT: hot` markers.
    pub hot_extra: Vec<String>,
    /// `[taint] sources`: qualified-path suffixes of fns whose
    /// byte-slice parameters carry untrusted (socket/file) input.
    pub taint_sources: Vec<String>,
    /// `[taint] sanitizers`: identifier names whose appearance in a
    /// length expression bounds it (e.g. `MAX_FRAME`).
    pub taint_sanitizers: Vec<String>,
    /// `[taint] length_idents`: identifier names treated as
    /// attacker-controlled lengths by the arithmetic sink.
    pub taint_length_idents: Vec<String>,
    /// `[[atomics.protocol]]` entries.
    pub protocols: Vec<ProtocolEntry>,
    /// `[durability] crates`: crates whose non-test code the
    /// durability rules (commit funnels, fsync pairing, dropped
    /// `io::Result`s, lock discipline) apply to.
    pub durability_crates: Vec<String>,
    /// `[durability] funnels`: qualified-path suffixes of the commit
    /// funnels — the only fns from which file creation, `write_all`,
    /// `rename`, and deletion may be reached.
    pub durability_funnels: Vec<String>,
}

#[derive(PartialEq)]
enum Section {
    Top,
    Attrs,
    Overflow,
    Hot,
    Taint,
    Allow,
    Protocol,
    Durability,
}

/// Parse `src` (the contents of `lint.toml`). Errors carry the line
/// number and are fatal to the lint run.
pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = Section::Top;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            section = Section::Allow;
            cfg.allows.push(AllowEntry {
                line: lineno,
                ..AllowEntry::default()
            });
            continue;
        }
        if line == "[attrs]" {
            section = Section::Attrs;
            continue;
        }
        if line == "[overflow]" {
            section = Section::Overflow;
            continue;
        }
        if line == "[hot]" {
            section = Section::Hot;
            continue;
        }
        if line == "[taint]" {
            section = Section::Taint;
            continue;
        }
        if line == "[durability]" {
            section = Section::Durability;
            continue;
        }
        if line == "[[atomics.protocol]]" {
            section = Section::Protocol;
            cfg.protocols.push(ProtocolEntry {
                line: lineno,
                ..ProtocolEntry::default()
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown section {line}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        match (&section, key) {
            (Section::Top, "data_plane") => cfg.data_plane = parse_array(value, lineno)?,
            (Section::Top, "lock_free") => cfg.lock_free = parse_array(value, lineno)?,
            (Section::Attrs, "forbid_unsafe") => cfg.forbid_unsafe = parse_array(value, lineno)?,
            (Section::Attrs, "deny_unsafe") => cfg.deny_unsafe = parse_array(value, lineno)?,
            (Section::Overflow, "counters") => cfg.overflow_counters = parse_array(value, lineno)?,
            (Section::Hot, "extra") => cfg.hot_extra = parse_array(value, lineno)?,
            (Section::Taint, "sources") => cfg.taint_sources = parse_array(value, lineno)?,
            (Section::Taint, "sanitizers") => cfg.taint_sanitizers = parse_array(value, lineno)?,
            (Section::Taint, "length_idents") => {
                cfg.taint_length_idents = parse_array(value, lineno)?
            }
            (Section::Durability, "crates") => cfg.durability_crates = parse_array(value, lineno)?,
            (Section::Durability, "funnels") => {
                cfg.durability_funnels = parse_array(value, lineno)?
            }
            (Section::Protocol, "name") => {
                last_protocol(&mut cfg)?.name = parse_string(value, lineno)?
            }
            (Section::Protocol, "crate") => {
                last_protocol(&mut cfg)?.krate = parse_string(value, lineno)?
            }
            (Section::Protocol, "fields") => {
                last_protocol(&mut cfg)?.fields = parse_array(value, lineno)?
            }
            (Section::Protocol, "model") => {
                last_protocol(&mut cfg)?.model = parse_string(value, lineno)?
            }
            (Section::Allow, "file") => last_allow(&mut cfg)?.file = parse_string(value, lineno)?,
            (Section::Allow, "rule") => last_allow(&mut cfg)?.rule = parse_string(value, lineno)?,
            (Section::Allow, "reason") => {
                last_allow(&mut cfg)?.reason = parse_string(value, lineno)?
            }
            (Section::Allow, "chain") => last_allow(&mut cfg)?.chain = parse_string(value, lineno)?,
            _ => return Err(format!("lint.toml:{lineno}: unknown key `{key}`")),
        }
    }
    for a in &cfg.allows {
        if a.file.is_empty() || a.rule.is_empty() {
            return Err(format!(
                "lint.toml:{}: [[allow]] entry needs both `file` and `rule`",
                a.line
            ));
        }
        if a.reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{}: [[allow]] for {} / {} has no `reason` — every exemption must be justified",
                a.line, a.file, a.rule
            ));
        }
    }
    for p in &cfg.protocols {
        if p.name.is_empty() || p.krate.is_empty() || p.model.is_empty() || p.fields.is_empty() {
            return Err(format!(
                "lint.toml:{}: [[atomics.protocol]] entry needs `name`, `crate`, `fields`, \
                 and `model`",
                p.line
            ));
        }
    }
    Ok(cfg)
}

fn last_allow(cfg: &mut Config) -> Result<&mut AllowEntry, String> {
    cfg.allows
        .last_mut()
        .ok_or_else(|| "lint.toml: key outside [[allow]] entry".to_string())
}

fn last_protocol(cfg: &mut Config) -> Result<&mut ProtocolEntry, String> {
    cfg.protocols
        .last_mut()
        .ok_or_else(|| "lint.toml: key outside [[atomics.protocol]] entry".to_string())
}

/// Remove a trailing `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!(
            "lint.toml:{lineno}: expected a quoted string, got `{value}`"
        ))
    }
}

fn parse_array(value: &str, lineno: u32) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            format!("lint.toml:{lineno}: expected a single-line `[\"...\"]` array, got `{value}`")
        })?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = parse(
            r#"
# comment
data_plane = ["a", "b"]
lock_free = ["b"]

[attrs]
forbid_unsafe = ["c"]  # trailing comment
deny_unsafe = []

[[allow]]
file = "crates/a/src/x.rs"
rule = "wall-clock"
reason = "metrics only"
"#,
        )
        .unwrap();
        assert_eq!(cfg.data_plane, vec!["a", "b"]);
        assert_eq!(cfg.lock_free, vec!["b"]);
        assert_eq!(cfg.forbid_unsafe, vec!["c"]);
        assert!(cfg.deny_unsafe.is_empty());
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "wall-clock");
    }

    #[test]
    fn missing_reason_is_fatal() {
        let err = parse("[[allow]]\nfile = \"f\"\nrule = \"r\"\nreason = \"  \"\n").unwrap_err();
        assert!(err.contains("must be justified"), "{err}");
    }

    #[test]
    fn unknown_key_is_fatal() {
        let err = parse("data_plne = [\"a\"]\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn parses_overflow_hot_and_chain_keys() {
        let cfg = parse(
            "data_plane = [\"a\"]\n\
             [overflow]\n\
             counters = [\"value\", \"weight\"]\n\
             [hot]\n\
             extra = [\"Ring::push\"]\n\
             [[allow]]\n\
             file = \"crates/a/src/x.rs\"\n\
             rule = \"transitive-panic\"\n\
             chain = \"a::entry -> *\"\n\
             reason = \"entry validates its input\"\n",
        )
        .unwrap();
        assert_eq!(cfg.overflow_counters, vec!["value", "weight"]);
        assert_eq!(cfg.hot_extra, vec!["Ring::push"]);
        assert_eq!(cfg.allows[0].chain, "a::entry -> *");
    }

    #[test]
    fn unknown_keys_in_new_sections_are_fatal() {
        let err = parse("[overflow]\ncounter = [\"value\"]\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = parse("[hot]\nextras = []\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn glob_matching_is_anchored_with_star_wildcards() {
        assert!(glob_match("a::entry -> *", "a::entry -> b::deep"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*::deep", "a::b::deep"));
        assert!(!glob_match("a::entry", "a::entry -> b::deep"));
        assert!(glob_match("a*c*e", "abcde"));
        assert!(!glob_match("a*z", "abcde"));
    }

    #[test]
    fn parses_taint_and_protocol_sections() {
        let cfg = parse(
            "[taint]\n\
             sources = [\"wire::read_frame\", \"Request::decode\"]\n\
             sanitizers = [\"MAX_FRAME\"]\n\
             length_idents = [\"rows\"]\n\
             [[atomics.protocol]]\n\
             name = \"left-right\"\n\
             crate = \"serve\"\n\
             fields = [\"read_idx\", \"readers\"]\n\
             model = \"publish_vs_reader_is_race_free\"\n",
        )
        .unwrap();
        assert_eq!(cfg.taint_sources.len(), 2);
        assert_eq!(cfg.taint_sanitizers, vec!["MAX_FRAME"]);
        assert_eq!(cfg.taint_length_idents, vec!["rows"]);
        assert_eq!(cfg.protocols.len(), 1);
        assert_eq!(cfg.protocols[0].name, "left-right");
        assert_eq!(cfg.protocols[0].krate, "serve");
        assert_eq!(cfg.protocols[0].fields, vec!["read_idx", "readers"]);
        assert_eq!(cfg.protocols[0].model, "publish_vs_reader_is_race_free");
    }

    #[test]
    fn incomplete_protocol_entry_is_fatal() {
        let err = parse("[[atomics.protocol]]\nname = \"p\"\ncrate = \"c\"\n").unwrap_err();
        assert!(err.contains("needs `name`, `crate`, `fields`"), "{err}");
        let err = parse("[taint]\nsource = []\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[[allow]]\nfile = \"a#b.rs\"\nrule = \"r\"\nreason = \"x\"\n").unwrap();
        assert_eq!(cfg.allows[0].file, "a#b.rs");
    }
}

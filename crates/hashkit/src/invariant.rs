//! The data plane's single audited panic site.
//!
//! Data-plane crates (`hashkit`, `cocosketch`, `sketches`, `engine`)
//! ban `unwrap()`/`expect()`/`panic!` outright — the `cocolint` pass
//! (`cargo run -p xtask -- lint`) enforces it. Conditions that are
//! *constructively unreachable* (an iterator over a non-empty
//! collection yielding nothing, a merge of shards built with identical
//! dimensions failing the dimension check) still need a terminator the
//! type system can see, and hiding them behind `unwrap()` would erase
//! both the invariant and the audit trail. [`violated`] is that
//! terminator: every data-plane invariant failure funnels through this
//! one function, so the panic policy is reviewed in exactly one place
//! (and allowlisted in exactly one `lint.toml` entry).

/// Abort on a broken internal invariant, naming it.
///
/// Use via `unwrap_or_else(|| invariant::violated("..."))` (or the
/// `_err` variant for `Result`), stating the invariant that was
/// supposed to hold — not the consequence of it breaking.
#[cold]
#[inline(never)]
#[track_caller]
pub fn violated(what: &str) -> ! {
    // This is the one audited panic of the data plane; see module docs.
    panic!("internal invariant violated: {what}")
}

/// [`violated`] for `Result` contexts: names the invariant and carries
/// the error that contradicted it.
#[cold]
#[inline(never)]
#[track_caller]
pub fn violated_err(what: &str, err: &dyn std::fmt::Display) -> ! {
    panic!("internal invariant violated: {what}: {err}")
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic(expected = "internal invariant violated: the moon is full")]
    fn names_the_invariant() {
        super::violated("the moon is full");
    }

    #[test]
    #[should_panic(expected = "internal invariant violated: dims agree: boom")]
    fn err_variant_carries_the_error() {
        super::violated_err("dims agree", &"boom");
    }
}

//! Lane-parallel Bob-hash kernels and cache-control shims for the
//! batched sketch hot path.
//!
//! [`bob_hash_13x8`] hashes a whole window of eight 13-byte 5-tuple
//! keys under one seed, bit-identically to eight calls of
//! [`crate::bob_hash_13`]. The portable implementation is plain Rust
//! over `[u32; 8]` lanes (independent per-lane arithmetic that LLVM
//! auto-vectorizes); with the `simd` feature enabled on x86-64 an
//! explicit AVX2 kernel is selected at runtime via
//! `is_x86_feature_detected!`, falling back to the portable path on
//! hosts without AVX2. Either way the scalar hash remains the oracle:
//! the kernels are tested bit-identical against it lane by lane, and
//! the sketch hot path asserts that identity before any timed run.
//!
//! The window width is fixed at [`LANES`] = 8 — one AVX2 register of
//! 32-bit lanes, and the same window the batched sketch update uses
//! for software pipelining. Callers with partial windows fill the
//! spare lanes with anything (commonly zeroes) and ignore those
//! outputs; hashing consumes no random state, so dead lanes cannot
//! perturb sketch contents.
//!
//! [`prefetch_read`] is the software-prefetch shim the sketch update
//! loop uses to pull candidate bucket cache lines into L1 one window
//! ahead of their use.

use crate::bob::mix;

/// Number of keys a lane-parallel kernel hashes per call: one AVX2
/// register of 32-bit lanes.
pub const LANES: usize = 8;

/// Jenkins' golden-ratio initialiser, identical to the scalar hash.
const GOLDEN: u32 = 0x9e37_79b9;

/// Transposed 32-bit words of up to [`LANES`] 13-byte keys.
///
/// The batched update transposes each window of keys once — four
/// little-endian words per key: bytes `0..4`, `4..8`, `8..12`, and the
/// zero-extended tail byte 12 — and then reuses the transposed form
/// across all `d` seeds, so the per-key byte shuffling is paid once
/// per window instead of once per `(key, seed)` pair.
#[derive(Debug, Clone, Copy)]
pub struct KeyWords8 {
    w0: [u32; LANES],
    w1: [u32; LANES],
    w2: [u32; LANES],
    tail: [u32; LANES],
}

impl KeyWords8 {
    /// A window with every lane holding the all-zero key.
    #[must_use]
    pub const fn zeroed() -> Self {
        Self {
            w0: [0; LANES],
            w1: [0; LANES],
            w2: [0; LANES],
            tail: [0; LANES],
        }
    }

    /// Load one 13-byte key into lane `lane & (LANES - 1)`.
    ///
    /// The lane index is masked rather than bounds-checked so the hot
    /// loop stays branch-free; callers enumerate window chunks of at
    /// most [`LANES`] keys, which a debug assertion pins.
    #[inline]
    pub fn set_lane(&mut self, lane: usize, key: &[u8; 13]) {
        debug_assert!(lane < LANES, "lane {lane} out of range");
        self.w0[lane & (LANES - 1)] = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        self.w1[lane & (LANES - 1)] = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        self.w2[lane & (LANES - 1)] = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        self.tail[lane & (LANES - 1)] = u32::from(key[12]);
    }
}

impl Default for KeyWords8 {
    fn default() -> Self {
        Self::zeroed()
    }
}

/// Hash all [`LANES`] transposed keys under one `seed`.
///
/// Lane `i` of the result equals `bob_hash_13(key_i, seed)` exactly —
/// the kernels replicate the scalar mix arithmetic (wrapping adds and
/// subs, logical shifts) per 32-bit lane, so SIMD-built sketches place
/// keys identically to scalar-built ones.
///
/// Dispatch: with the `simd` feature on x86-64, the AVX2 kernel is
/// used when the CPU supports it (`is_x86_feature_detected!` caches
/// the CPUID probe, so the check is a load-and-branch per call);
/// otherwise the portable lane-loop below runs.
#[inline]
#[must_use]
pub fn bob_hash_13x8(words: &KeyWords8, seed: u32) -> [u32; LANES] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 kernel's only precondition is that the
            // host supports AVX2, which the runtime probe just
            // established for this process.
            #[allow(unsafe_code)]
            return unsafe { avx2::hash13x8(words, seed) };
        }
    }
    portable13x8(words, seed)
}

/// Which kernel [`bob_hash_13x8`] dispatches to on this host/build:
/// `"avx2"` or `"portable"`. Reported by the throughput bench so the
/// recorded numbers say what they measured.
#[must_use]
pub fn backend() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "portable"
}

/// Portable lane-parallel kernel: the scalar [`mix`] applied to each
/// lane of the transposed window. Each iteration is independent, so
/// LLVM vectorizes the loops even without the `simd` feature; more
/// importantly, reusing the scalar `mix` makes bit-identity true by
/// construction.
#[inline]
fn portable13x8(words: &KeyWords8, seed: u32) -> [u32; LANES] {
    let mut a = [0u32; LANES];
    let mut b = [0u32; LANES];
    let mut c = [0u32; LANES];
    for (((a, b), c), ((&w0, &w1), &w2)) in a
        .iter_mut()
        .zip(b.iter_mut())
        .zip(c.iter_mut())
        .zip(words.w0.iter().zip(words.w1.iter()).zip(words.w2.iter()))
    {
        *a = GOLDEN.wrapping_add(w0);
        *b = GOLDEN.wrapping_add(w1);
        *c = seed.wrapping_add(w2);
    }
    mix8(&mut a, &mut b, &mut c);
    for ((a, c), &tail) in a.iter_mut().zip(c.iter_mut()).zip(words.tail.iter()) {
        *c = c.wrapping_add(13);
        *a = a.wrapping_add(tail);
    }
    mix8(&mut a, &mut b, &mut c);
    c
}

/// One scalar [`mix`] round per lane.
#[inline(always)]
fn mix8(a: &mut [u32; LANES], b: &mut [u32; LANES], c: &mut [u32; LANES]) {
    for ((a, b), c) in a.iter_mut().zip(b.iter_mut()).zip(c.iter_mut()) {
        let (x, y, z) = mix(*a, *b, *c);
        *a = x;
        *b = y;
        *c = z;
    }
}

/// Prefetch the cache line containing `p` for reading (T0 hint: pull
/// into every cache level). A no-op off x86-64.
///
/// Safe for any pointer, valid or not: `prefetcht0` is an
/// architectural hint that never faults and never reads architectural
/// state — at worst a bad address wastes one fill buffer.
#[allow(unsafe_code)]
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // SAFETY: `_mm_prefetch` has no memory-safety preconditions;
        // the instruction is a pure hint, documented to never fault
        // regardless of the address's validity or mapping.
        unsafe {
            _mm_prefetch::<_MM_HINT_T0>(p.cast::<i8>());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! Explicit AVX2 kernel: the same Jenkins mix, one `__m256i`
    //! register per 96-bit-state lane-set, eight keys per instruction.

    use super::{KeyWords8, GOLDEN, LANES};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_set1_epi32, _mm256_slli_epi32,
        _mm256_srli_epi32, _mm256_storeu_si256, _mm256_sub_epi32, _mm256_xor_si256,
    };

    /// Eight-lane [`super::bob_hash_13x8`] over AVX2 registers.
    ///
    /// # Safety
    ///
    /// The host CPU must support AVX2; the dispatch site establishes
    /// this with `is_x86_feature_detected!("avx2")` before calling.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn hash13x8(words: &KeyWords8, seed: u32) -> [u32; LANES] {
        // SAFETY: the four loads read 32 bytes each from `&[u32; 8]`
        // fields of `words`, which are live for the whole call;
        // `loadu` has no alignment requirement. The store writes 32
        // bytes into `out`, a local `[u32; 8]`. The intrinsics
        // themselves require AVX2, guaranteed by this fn's contract.
        unsafe {
            let golden = _mm256_set1_epi32(GOLDEN as i32);
            let mut a = _mm256_add_epi32(golden, _mm256_loadu_si256(words.w0.as_ptr().cast()));
            let mut b = _mm256_add_epi32(golden, _mm256_loadu_si256(words.w1.as_ptr().cast()));
            let mut c = _mm256_add_epi32(
                _mm256_set1_epi32(seed as i32),
                _mm256_loadu_si256(words.w2.as_ptr().cast()),
            );
            (a, b, c) = mix8(a, b, c);
            // Tail fold: length byte into c, trailing byte into a —
            // the same two adds as the scalar fast path.
            c = _mm256_add_epi32(c, _mm256_set1_epi32(13));
            a = _mm256_add_epi32(a, _mm256_loadu_si256(words.tail.as_ptr().cast()));
            (_, _, c) = mix8(a, b, c);
            let mut out = [0u32; LANES];
            _mm256_storeu_si256(out.as_mut_ptr().cast(), c);
            out
        }
    }

    /// Jenkins' 96-bit `mix`, eight lanes wide. `sub_epi32` wraps like
    /// `wrapping_sub`; `srli`/`slli` are the logical shifts of the
    /// scalar `u32` code, so each lane computes exactly [`crate::bob::mix`].
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn mix8(mut a: __m256i, mut b: __m256i, mut c: __m256i) -> (__m256i, __m256i, __m256i) {
        a = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(a, b), c),
            _mm256_srli_epi32(c, 13),
        );
        b = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(b, c), a),
            _mm256_slli_epi32(a, 8),
        );
        c = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(c, a), b),
            _mm256_srli_epi32(b, 13),
        );
        a = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(a, b), c),
            _mm256_srli_epi32(c, 12),
        );
        b = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(b, c), a),
            _mm256_slli_epi32(a, 16),
        );
        c = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(c, a), b),
            _mm256_srli_epi32(b, 5),
        );
        a = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(a, b), c),
            _mm256_srli_epi32(c, 3),
        );
        b = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(b, c), a),
            _mm256_slli_epi32(a, 10),
        );
        c = _mm256_xor_si256(
            _mm256_sub_epi32(_mm256_sub_epi32(c, a), b),
            _mm256_srli_epi32(b, 15),
        );
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bob_hash_13;
    use crate::SplitMix64;

    fn random_key(rng: &mut SplitMix64) -> [u8; 13] {
        let mut k = [0u8; 13];
        let (lo, hi) = (rng.next_u64().to_le_bytes(), rng.next_u64().to_le_bytes());
        k[..8].copy_from_slice(&lo);
        k[8..13].copy_from_slice(&hi[..5]);
        k
    }

    /// Lane-by-lane bit-identity against the scalar oracle. Runs with
    /// whatever kernel the build/host dispatches to — under
    /// `--features simd` on an AVX2 host this exercises the AVX2
    /// path, otherwise the portable one.
    #[test]
    fn lanes_match_scalar_oracle() {
        let mut rng = SplitMix64::new(0xc0c0_13e8);
        for trial in 0..200u32 {
            let keys: Vec<[u8; 13]> = (0..LANES).map(|_| random_key(&mut rng)).collect();
            let mut words = KeyWords8::zeroed();
            for (lane, key) in keys.iter().enumerate() {
                words.set_lane(lane, key);
            }
            for seed in [0u32, 1, trial, 0x9e37_79b9, u32::MAX] {
                let got = bob_hash_13x8(&words, seed);
                for (lane, key) in keys.iter().enumerate() {
                    assert_eq!(
                        got[lane],
                        bob_hash_13(key, seed),
                        "trial {trial} lane {lane} seed {seed:#x}"
                    );
                }
            }
        }
    }

    /// The portable kernel is the oracle-shaped reference: check it
    /// explicitly too, so a dispatch bug cannot mask a portable bug.
    #[test]
    fn portable_matches_scalar_oracle() {
        let mut rng = SplitMix64::new(0x5eed_f00d);
        for _ in 0..200 {
            let keys: Vec<[u8; 13]> = (0..LANES).map(|_| random_key(&mut rng)).collect();
            let mut words = KeyWords8::zeroed();
            for (lane, key) in keys.iter().enumerate() {
                words.set_lane(lane, key);
            }
            let seed = rng.next_u64() as u32;
            let got = portable13x8(&words, seed);
            for (lane, key) in keys.iter().enumerate() {
                assert_eq!(got[lane], bob_hash_13(key, seed));
            }
        }
    }

    /// Partial windows: unset lanes hold the zero key and hash to the
    /// zero key's hash — they never contaminate the set lanes.
    #[test]
    fn unset_lanes_hash_the_zero_key() {
        let mut words = KeyWords8::zeroed();
        words.set_lane(0, &[0xab; 13]);
        let got = bob_hash_13x8(&words, 7);
        assert_eq!(got[0], bob_hash_13(&[0xab; 13], 7));
        for lane in 1..LANES {
            assert_eq!(got[lane], bob_hash_13(&[0u8; 13], 7));
        }
    }

    /// Prefetch is a hint: callable on anything, including dangling
    /// and null pointers, without observable effect.
    #[test]
    fn prefetch_never_faults() {
        let x = 42u64;
        prefetch_read(&raw const x);
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(0xdead_beefusize as *const u8);
        assert_eq!(x, 42);
    }
}

//! Tiny deterministic PRNGs for seed derivation and hot-path coin flips.
//!
//! Sketch updates need randomness (the stochastic key replacement at the
//! heart of unbiased SpaceSaving-style algorithms), but the packet loop
//! cannot afford a heavyweight RNG, and experiments must be reproducible.
//! These generators are a few ALU ops per draw and fully determined by
//! their seed.

/// SplitMix64: the standard seed-expansion generator.
///
/// Used to derive independent sub-seeds (per sketch array, per thread)
/// from one experiment seed. Passes through zero state safely because the
/// increment is odd.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an arbitrary 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (high bits, which are the best-mixed).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n // LINT: bounded(contract: n > 0, debug-asserted above)
    }

    /// Uniform integer in `[lo, hi)` (half-open, like `gen_range`).
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` on an empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            xs.get(self.below(xs.len() as u64) as usize)
        }
    }
}

/// xorshift64*: the in-sketch coin-flip generator.
///
/// Three shifts and one multiply per draw; quality is more than sufficient
/// for Bernoulli trials with probabilities derived from counter values.
/// The state must be non-zero; construction guarantees it.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Create from a seed; a zero seed is remapped to a fixed constant so
    /// the generator never gets stuck at zero.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x853c_49e6_748f_ea9b
            } else {
                seed
            },
        }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: returns `true` with probability `num / den`.
    ///
    /// `den == 0` is treated as certain success (the convention the sketch
    /// update wants for empty buckets). Probabilities ≥ 1 always succeed.
    #[inline]
    pub fn coin(&mut self, num: u64, den: u64) -> bool {
        if num >= den {
            return true;
        }
        // Map the draw into [0, den): success iff draw < num. The modulo
        // bias is ≤ den/2^64, negligible for counter-sized denominators.
        self.next_u64() % den < num // LINT: bounded(num >= den early-return above implies den > 0)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n // LINT: bounded(contract: n > 0, debug-asserted above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic_and_distinct() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut c = SplitMix64::new(2);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, c.next_u64());
        }
    }

    #[test]
    fn xorshift_zero_seed_recovers() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64Star::new(99);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn coin_edge_cases() {
        let mut r = XorShift64Star::new(5);
        assert!(r.coin(1, 0), "den=0 means certain success");
        assert!(r.coin(5, 5), "p=1 always succeeds");
        assert!(r.coin(7, 3), "p>1 always succeeds");
        for _ in 0..1000 {
            assert!(!r.coin(0, 10), "p=0 never succeeds");
        }
    }

    #[test]
    fn coin_frequency_matches_probability() {
        let mut r = XorShift64Star::new(2024);
        let trials = 200_000u32;
        let hits = (0..trials).filter(|_| r.coin(1, 4)).count() as f64;
        let freq = hits / f64::from(trials);
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = XorShift64Star::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn splitmix_shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        SplitMix64::new(9).shuffle(&mut a);
        SplitMix64::new(9).shuffle(&mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..100).collect();
        SplitMix64::new(10).shuffle(&mut c);
        assert_ne!(a, c, "different seed should permute differently");
    }

    #[test]
    fn splitmix_range_and_choose() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.choose::<u8>(&[]), None);
        let xs = [1u8, 2, 3];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs).unwrap()));
        }
    }

    #[test]
    fn splitmix_chance_frequency() {
        let mut r = SplitMix64::new(77);
        let trials = 100_000u32;
        let hits = (0..trials).filter(|_| r.chance(0.3)).count() as f64;
        let freq = hits / f64::from(trials);
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn splitmix_mean_is_centered() {
        let mut r = SplitMix64::new(31337);
        let n = 100_000;
        let mean = (0..n).map(|_| (r.next_u64() >> 11) as f64).sum::<f64>()
            / n as f64
            / (1u64 << 53) as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

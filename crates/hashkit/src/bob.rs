//! Bob Jenkins' `lookup2` hash ("Bob Hash" / evahash).
//!
//! This is the hash function the CocoSketch reference implementation uses
//! for all sketch arrays (`http://burtleburtle.net/bob/hash/evahash.html`,
//! paper reference [83]). It consumes the key 12 bytes at a time, mixing
//! three 32-bit lanes, and folds the trailing bytes into the final mix.
//!
//! The function is deterministic, seedable (the seed is the original
//! `initval` parameter), and distributes well enough that two instances
//! with different seeds behave as independent hash functions for sketching
//! purposes — exactly the property multi-array sketches need.

/// One round of Jenkins' 96-bit `mix`.
///
/// Identical to the C macro: every lane is reversibly mixed with the other
/// two, so no entropy is lost between rounds.
#[inline(always)]
pub(crate) fn mix(mut a: u32, mut b: u32, mut c: u32) -> (u32, u32, u32) {
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 13);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 8);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 13);
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 12);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 16);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 5);
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 3);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 10);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 15);
    (a, b, c)
}

/// Read up to 4 little-endian bytes starting at `data[i]`, zero-padded.
/// Out-of-range `i` reads as zero (the tail folds below may probe past
/// the remainder).
#[inline(always)]
fn le_partial(data: &[u8], i: usize) -> u32 {
    let mut v = 0u32;
    for (shift, &byte) in data.iter().skip(i).take(4).enumerate() {
        v |= u32::from(byte) << (8 * shift);
    }
    v
}

/// 32-bit Bob Jenkins `lookup2` hash of `data` with the given `seed`.
///
/// Every bit of the key affects every bit of the result; different seeds
/// give effectively independent functions.
///
/// ```
/// use hashkit::bob_hash;
/// let h1 = bob_hash(b"10.0.0.1:443", 1);
/// let h2 = bob_hash(b"10.0.0.1:443", 2);
/// assert_eq!(h1, bob_hash(b"10.0.0.1:443", 1)); // deterministic
/// assert_ne!(h1, h2); // seed-dependent
/// ```
#[inline]
pub fn bob_hash(data: &[u8], seed: u32) -> u32 {
    // Fixed-width fast path for the 13-byte 5-tuple key, by far the
    // most common width on the sketch hot path.
    if let Ok(fixed) = <&[u8; 13]>::try_from(data) {
        return bob_hash_13(fixed, seed);
    }
    bob_hash_generic(data, seed)
}

/// [`bob_hash`] specialised to 13-byte keys (the encoded 5-tuple).
///
/// Fully unrolled — one 12-byte mix block plus the 1-byte tail — with
/// no bounds checks or trailing-byte loop. Bit-identical to the generic
/// path on the same input.
#[inline]
pub fn bob_hash_13(data: &[u8; 13], seed: u32) -> u32 {
    let golden = 0x9e37_79b9u32;
    let a = golden.wrapping_add(u32::from_le_bytes([data[0], data[1], data[2], data[3]]));
    let b = golden.wrapping_add(u32::from_le_bytes([data[4], data[5], data[6], data[7]]));
    let c = seed.wrapping_add(u32::from_le_bytes([data[8], data[9], data[10], data[11]]));
    let (a, b, c) = mix(a, b, c);
    // Tail: length byte into c, the one trailing byte into a.
    let c = c.wrapping_add(13);
    let a = a.wrapping_add(u32::from(data[12]));
    let (_, _, c) = mix(a, b, c);
    c
}

#[inline]
fn bob_hash_generic(data: &[u8], seed: u32) -> u32 {
    let golden = 0x9e37_79b9u32;
    let mut a = golden;
    let mut b = golden;
    let mut c = seed;

    let mut blocks = data.chunks_exact(12);
    for blk in blocks.by_ref() {
        a = a.wrapping_add(u32::from_le_bytes([blk[0], blk[1], blk[2], blk[3]]));
        b = b.wrapping_add(u32::from_le_bytes([blk[4], blk[5], blk[6], blk[7]]));
        c = c.wrapping_add(u32::from_le_bytes([blk[8], blk[9], blk[10], blk[11]]));
        let (x, y, z) = mix(a, b, c);
        a = x;
        b = y;
        c = z;
    }

    // Trailing bytes: c's low byte is reserved for the length, as in the
    // original (the first byte of c is the length, so keys that are
    // prefixes of each other hash differently).
    let tail = blocks.remainder();
    c = c.wrapping_add(data.len() as u32);
    a = a.wrapping_add(le_partial(tail, 0));
    if tail.len() > 4 {
        b = b.wrapping_add(le_partial(tail, 4));
    }
    if tail.len() > 8 {
        // Shift by one byte: the length already occupies c's low byte.
        c = c.wrapping_add(le_partial(tail, 8) << 8);
    }
    let (_, _, c) = mix(a, b, c);
    c
}

/// 64-bit hash assembled from two independently seeded [`bob_hash`] calls.
///
/// Used where 32 bits of hash space is not enough (e.g. deriving both a
/// bucket index and a replacement-probability coin from one logical hash).
#[inline]
pub fn bob_hash64(data: &[u8], seed: u32) -> u64 {
    let lo = bob_hash(data, seed);
    let hi = bob_hash(data, seed ^ 0xdead_beef);
    (u64::from(hi) << 32) | u64::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let k = b"192.168.0.1 -> 10.0.0.1";
        assert_eq!(bob_hash(k, 7), bob_hash(k, 7));
        assert_eq!(bob_hash64(k, 7), bob_hash64(k, 7));
    }

    #[test]
    fn seed_changes_output() {
        let k = b"flow-key";
        let outs: Vec<u32> = (0..16).map(|s| bob_hash(k, s)).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            outs.len(),
            "seeds should not collide: {outs:?}"
        );
    }

    #[test]
    fn length_is_mixed_in() {
        // A key and its zero-extension must not collide systematically.
        assert_ne!(bob_hash(b"ab", 1), bob_hash(b"ab\0", 1));
        assert_ne!(bob_hash(b"", 1), bob_hash(b"\0", 1));
    }

    #[test]
    fn empty_key_is_fine() {
        let _ = bob_hash(b"", 0);
        let _ = bob_hash64(b"", u32::MAX);
    }

    #[test]
    fn handles_all_block_remainders() {
        // Exercise every remainder 0..12 around the 12-byte block size.
        let data: Vec<u8> = (0..64u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(
                seen.insert(bob_hash(&data[..len], 3)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn fixed_width_path_matches_generic() {
        // The 13-byte fast path must be indistinguishable from the
        // generic implementation: sketches built before and after the
        // optimisation landed have to place keys identically.
        let mut key = [0u8; 13];
        for trial in 0u32..500 {
            for (i, byte) in key.iter_mut().enumerate() {
                *byte = (trial.wrapping_mul(31).wrapping_add(i as u32 * 7)) as u8;
            }
            for seed in [0, 1, 0xDEAD_BEEF, u32::MAX] {
                assert_eq!(bob_hash_13(&key, seed), bob_hash_generic(&key, seed));
                assert_eq!(bob_hash(&key, seed), bob_hash_generic(&key, seed));
            }
        }
    }

    #[test]
    fn avalanche_is_reasonable() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = b"0123456789abcdef";
        let h0 = bob_hash(base, 42);
        let mut total_flips = 0u32;
        let mut samples = 0u32;
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut k = *base;
                k[byte] ^= 1 << bit;
                total_flips += (h0 ^ bob_hash(&k, 42)).count_ones();
                samples += 1;
            }
        }
        let avg = f64::from(total_flips) / f64::from(samples);
        assert!(
            (10.0..22.0).contains(&avg),
            "avalanche average {avg} out of range"
        );
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        // Chi-square-ish sanity check: hash sequential keys into 64 buckets.
        const BUCKETS: usize = 64;
        const N: usize = 64 * 1000;
        let mut counts = [0u32; BUCKETS];
        for i in 0..N {
            let k = (i as u64).to_le_bytes();
            counts[bob_hash(&k, 11) as usize % BUCKETS] += 1;
        }
        let expected = (N / BUCKETS) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        // 63 degrees of freedom; 120 is far beyond the 0.999 quantile (~104)
        // but leaves slack so the test is not flaky across platforms.
        assert!(chi2 < 120.0, "chi2 {chi2} too high, counts {counts:?}");
    }
}

//! Families of independently seeded hash functions.

use crate::bob::bob_hash;
use crate::rng::SplitMix64;

/// Map a 32-bit hash uniformly into `[0, len)` without a division:
/// Lemire's multiply-shift reduction. `len` must fit in 32 bits of
/// headroom, which every sketch array does by orders of magnitude.
#[inline]
pub fn fastrange(hash: u32, len: usize) -> usize {
    debug_assert!(len <= u32::MAX as usize);
    ((u64::from(hash) * len as u64) >> 32) as usize
}

/// `d` seeded hash functions, one per sketch array.
///
/// Seeds are expanded from a single master seed with [`SplitMix64`], so a
/// whole multi-array sketch is reproducible from one integer. Index
/// computation ([`HashFamily::index`]) maps the 32-bit hash into the array
/// with the multiply-shift ("fastrange") reduction `(h * len) >> 32` — a
/// multiply instead of an integer division on the per-packet path; for the
/// array lengths used in sketching (≤ a few million) its bias is as
/// negligible as the modulo it replaces.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u32>,
}

impl HashFamily {
    /// Create `d` hash functions from a master seed.
    pub fn new(d: usize, master_seed: u64) -> Self {
        let mut rng = SplitMix64::new(master_seed);
        let seeds = (0..d).map(|_| rng.next_u32()).collect();
        Self { seeds }
    }

    /// Number of functions in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True when the family is empty (a zero-array sketch; degenerate but
    /// allowed so constructors can validate and report it themselves).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Hash `key` with the `i`-th function.
    #[inline]
    pub fn hash(&self, i: usize, key: &[u8]) -> u32 {
        bob_hash(key, self.seeds[i]) // LINT: bounded(i < d is the family contract; callers iterate 0..len())
    }

    /// Bucket index of `key` in an array of `len` buckets under the `i`-th
    /// function.
    #[inline]
    pub fn index(&self, i: usize, key: &[u8], len: usize) -> usize {
        debug_assert!(len > 0);
        fastrange(self.hash(i, key), len)
    }

    /// The raw seed of the `i`-th function (exposed for hardware-model
    /// resource accounting, which charges per configured hash unit).
    #[inline]
    pub fn seed(&self, i: usize) -> u32 {
        self.seeds[i] // LINT: bounded(i < d is the family contract; callers iterate 0..len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_master_seed() {
        let a = HashFamily::new(4, 42);
        let b = HashFamily::new(4, 42);
        for i in 0..4 {
            assert_eq!(a.hash(i, b"key"), b.hash(i, b"key"));
        }
    }

    #[test]
    fn functions_differ() {
        let f = HashFamily::new(8, 9);
        let hashes: Vec<u32> = (0..8).map(|i| f.hash(i, b"same-key")).collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len(), "{hashes:?}");
    }

    #[test]
    fn index_in_bounds() {
        let f = HashFamily::new(3, 1);
        for i in 0..3 {
            for k in 0u32..1000 {
                assert!(f.index(i, &k.to_le_bytes(), 17) < 17);
            }
        }
    }

    #[test]
    fn independence_proxy_low_pairwise_collision() {
        // Two functions should collide on 64 buckets at roughly 1/64 rate.
        let f = HashFamily::new(2, 123);
        let n = 20_000;
        let collisions = (0..n)
            .filter(|k: &u32| {
                let kb = k.to_le_bytes();
                f.index(0, &kb, 64) == f.index(1, &kb, 64)
            })
            .count() as f64;
        let rate = collisions / f64::from(n);
        assert!((rate - 1.0 / 64.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fastrange_bounds_and_spread() {
        for len in [1usize, 2, 17, 64, 1 << 20] {
            assert!(fastrange(0, len) < len);
            assert!(fastrange(u32::MAX, len) < len);
        }
        // The reduction must cover the whole range, not collapse it.
        let mut seen = std::collections::HashSet::new();
        for h in 0..10_000u32 {
            seen.insert(fastrange(h.wrapping_mul(2_654_435_761), 64));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn empty_family() {
        let f = HashFamily::new(0, 0);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }
}

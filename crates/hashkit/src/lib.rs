//! Seeded non-cryptographic hashing and fast in-sketch randomness.
//!
//! The CocoSketch paper's CPU implementation hashes flow keys with the
//! 32-bit Bob Jenkins hash ("Bob Hash", a.k.a. `lookup2`/evahash) under
//! different seeds, one seed per sketch array. This crate provides:
//!
//! - [`bob_hash`]: a faithful implementation of Jenkins' `lookup2` with a
//!   caller-supplied seed (the `initval` of the original C code);
//! - [`bob_hash64`]: a 64-bit variant built from two independently seeded
//!   32-bit invocations, used where a larger hash space is needed;
//! - [`HashFamily`]: `d` pairwise-independent-in-practice seeded hash
//!   functions, the building block for multi-array sketches;
//! - [`SplitMix64`] and [`XorShift64Star`]: tiny, allocation-free PRNGs for
//!   seed derivation and for the probabilistic key-replacement decisions in
//!   the sketch hot path (where pulling in a full RNG crate would be
//!   overkill and non-deterministic).
//!
//! Everything here is deterministic given its seeds; experiments built on
//! top are bit-reproducible.


#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bob;
mod family;
mod rng;

pub use bob::{bob_hash, bob_hash64};
pub use family::HashFamily;
pub use rng::{SplitMix64, XorShift64Star};

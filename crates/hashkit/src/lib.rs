//! Seeded non-cryptographic hashing and fast in-sketch randomness.
//!
//! The CocoSketch paper's CPU implementation hashes flow keys with the
//! 32-bit Bob Jenkins hash ("Bob Hash", a.k.a. `lookup2`/evahash) under
//! different seeds, one seed per sketch array. This crate provides:
//!
//! - [`bob_hash`]: a faithful implementation of Jenkins' `lookup2` with a
//!   caller-supplied seed (the `initval` of the original C code), with a
//!   fully unrolled fast path ([`bob_hash_13`]) for the 13-byte 5-tuple
//!   key that dominates the sketch hot path;
//! - [`bob_hash64`]: a 64-bit variant built from two independently seeded
//!   32-bit invocations, used where a larger hash space is needed;
//! - [`HashFamily`]: `d` pairwise-independent-in-practice seeded hash
//!   functions, the building block for multi-array sketches, indexing
//!   arrays via the division-free [`fastrange`] reduction;
//! - [`simd`]: lane-parallel [`simd::bob_hash_13x8`] kernels (portable
//!   lane-loop always; explicit AVX2 behind the `simd` cargo feature
//!   with runtime dispatch) plus the [`prefetch_read`] cache-control
//!   shim, both serving the batched sketch hot path;
//! - [`SplitMix64`] and [`XorShift64Star`]: tiny, allocation-free PRNGs.
//!   `XorShift64Star` drives the probabilistic key-replacement decisions
//!   in the sketch hot path; `SplitMix64` doubles as the workspace's
//!   general-purpose RNG (seed derivation, trace generation, shuffles),
//!   which is also what keeps the build hermetic: no external RNG crate,
//!   and every random draw is deterministic given its seed.
//!
//! Everything here is deterministic given its seeds; experiments built on
//! top are bit-reproducible.

//!
//! Unsafe policy: the crate is `#![deny(unsafe_code)]`. The only
//! escape hatches are the item-level `#[allow(unsafe_code)]` blocks in
//! [`simd`] — the prefetch hint and the feature-gated AVX2 kernel —
//! each carrying a SAFETY comment audited by cocolint's
//! safety-comment rule (see `lint.toml`, `deny_unsafe`).

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

mod bob;
mod family;
pub mod fastmap;
pub mod invariant;
mod rng;
pub mod simd;

pub use bob::{bob_hash, bob_hash64, bob_hash_13};
pub use family::{fastrange, HashFamily};
pub use fastmap::{
    fast_map_with_capacity, fast_set_with_capacity, FastBuildHasher, FastHasher, FastMap, FastSet,
};
pub use rng::{SplitMix64, XorShift64Star};
pub use simd::{bob_hash_13x8, prefetch_read, KeyWords8};

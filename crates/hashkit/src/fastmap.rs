//! Deterministic fast hashing for hot-path maps.
//!
//! `std::collections::HashMap`'s default hasher is SipHash-1-3 seeded
//! from per-process OS entropy. That is the right default for maps
//! keyed by untrusted input, but wrong twice over for the sketch data
//! plane: SipHash costs a large multiple of a multiply-mix hash on the
//! short fixed-width flow keys the query plane aggregates by, and the
//! random seed makes iteration order differ
//! between two runs of the *same* binary on the *same* input — exactly
//! the nondeterminism the workspace's bit-reproducibility policy
//! forbids. HashDoS resistance is not needed here: map keys are flow
//! keys already admitted by the sketch, whose capacity bounds the
//! attacker long before the map does.
//!
//! [`FastMap`]/[`FastSet`] are drop-in `HashMap`/`HashSet` aliases over
//! [`FastHasher`], an FxHash-style multiply-rotate word hasher with a
//! fixed (zero) initial state. The `cocolint` static-analysis pass
//! (`cargo run -p xtask -- lint`) enforces that data-plane crates use
//! these instead of the default-hashed `std` types.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier for the word-mixing step: the fractional part of the
/// golden ratio in 64 bits, the usual choice for multiplicative
/// hashing's spectral behaviour.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// An FxHash-style word-at-a-time hasher: fast, deterministic, and not
/// HashDoS-resistant (see the module docs for why that trade is right
/// on the data plane).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix_word(&mut self, word: u64) {
        self.state = (self.state ^ word)
            .wrapping_mul(GOLDEN_GAMMA)
            .rotate_left(26);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low output bits depend on every input
        // word (the rotate alone leaves the last multiply's low bits
        // weak, and HashMap uses the low bits for bucket selection).
        let mut z = self.state;
        z ^= z >> 32;
        z = z.wrapping_mul(GOLDEN_GAMMA);
        z ^ (z >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.mix_word(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem); // LINT: bounded(chunks_exact(8) remainder has len < 8)
                                                    // Tag the tail with its length so prefixes hash differently
                                                    // even when the spare bytes are zero.
            word[7] = rem.len() as u8;
            self.mix_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix_word(i as u64);
    }
}

/// The `BuildHasher` for [`FastMap`]/[`FastSet`]: stateless, so every
/// map in every run hashes identically.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` with the deterministic [`FastHasher`] — the workspace's
/// standard map for flow-keyed aggregation.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` with the deterministic [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

/// A [`FastMap`] pre-sized for `capacity` entries (type aliases cannot
/// carry inherent constructors, so `HashMap::with_capacity` — which is
/// only defined for the default hasher — needs this stand-in).
#[inline]
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FastBuildHasher::default())
}

/// A [`FastSet`] pre-sized for `capacity` entries.
#[inline]
pub fn fast_set_with_capacity<T>(capacity: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(capacity, FastBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key: Vec<u8> = (0..13).collect();
        assert_eq!(hash_of(&key), hash_of(&key));
        let a = FastBuildHasher::default().hash_one(42u64);
        let b = FastBuildHasher::default().hash_one(42u64);
        assert_eq!(a, b, "no per-instance seeding");
    }

    #[test]
    fn distinguishes_prefixes_and_lengths() {
        assert_ne!(hash_of(&vec![1u8, 2, 3]), hash_of(&vec![1u8, 2, 3, 0]));
        assert_ne!(hash_of(&vec![0u8; 8]), hash_of(&vec![0u8; 16]));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn low_bits_spread() {
        // HashMap buckets by low bits; sequential keys must not
        // collide there. An ideal random hash puts 128 keys into
        // ~128·(1−1/e) ≈ 81 distinct low-7-bit slots; catastrophic
        // aliasing (a weak final mix) collapses far below that.
        let mut seen = [false; 128];
        let mut distinct = 0;
        for i in 0..128u64 {
            let h = (hash_of(&i) & 127) as usize;
            if !seen[h] {
                seen[h] = true;
                distinct += 1;
            }
        }
        assert!(distinct >= 70, "only {distinct}/128 distinct low-bit slots");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastMap<Vec<u8>, u64> = fast_map_with_capacity(16);
        assert!(m.capacity() >= 16);
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m[&vec![1, 2, 3]], 7);
        let mut s: FastSet<u32> = fast_set_with_capacity(4);
        s.insert(9);
        assert!(s.contains(&9));
    }
}

//! Exhaustive model-checking of the catalog's left-right protocol and
//! the cache's slot election.
//!
//! Compiled only with `--features heavy-tests` (which enables the
//! `loom` feature): the catalog and cache are then built against the
//! model checker's tracked primitives (see `serve/src/sync.rs`), so
//! every test here interleaves the *real* publish/pin/evict
//! implementation under all schedules within the checker's preemption
//! bound, with vector-clock race detection on both `UnsafeCell`
//! states. The store-buffering edge the module docs call load-bearing
//! (reader `inc; check` vs writer `flip; drain`) is exactly the kind
//! of bug these schedules surface: demote those `SeqCst`s and the
//! model finds a schedule where a confirmed reader overlaps the
//! writer's mutation, which the cell tracking reports as a race.
//!
//! Models stay tiny on purpose (one or two epochs, one or two
//! readers): the schedule tree grows exponentially in tracked
//! operations, and small models already cover every protocol edge —
//! pin/flip interleavings, straggler retraction, evict-under-reader.
//! Each test asserts `Report::complete`, so the exhaustiveness claim
//! is checked, not assumed.

#![cfg(feature = "loom")]

use cocosketch::Epoch;
use loom::sync::Arc;
use loom::Builder;
use serve::catalog::catalog;
use serve::ProjectorCache;
use traffic::KeySpec;

fn check_exhaustive(f: impl Fn() + Send + Sync + 'static) {
    let report = Builder::new().check(f);
    assert!(
        report.complete,
        "model did not exhaust its schedule tree ({} iterations)",
        report.iterations
    );
}

/// A tiny sealed epoch whose fields encode its id redundantly, so a
/// torn read would be visible as an internal inconsistency.
fn epoch(id: u64) -> std::sync::Arc<Epoch> {
    std::sync::Arc::new(Epoch {
        id,
        packets: id * 10,
        weight: id * 100,
        tables: vec![],
    })
}

/// Readers pinned across a publish see either the old or the new
/// state, never a torn one; handles resolve consistently.
#[test]
fn publish_vs_reader_is_race_free() {
    check_exhaustive(|| {
        let (mut writer, reader) = catalog(8);
        writer.publish(epoch(0));
        let r = reader.clone();
        let t = loom::thread::spawn(move || {
            for _ in 0..2 {
                if let Some(e) = r.latest() {
                    assert!(e.id <= 1, "latest is one of the published epochs");
                    assert_eq!(e.packets, e.id * 10, "never torn");
                }
                if let Some((lo, hi)) = r.ids() {
                    assert!(lo <= hi);
                }
            }
        });
        writer.publish(epoch(1));
        t.join().unwrap();
        // Both sides converged: the reader handle sees the final state.
        assert_eq!(reader.ids(), Some((0, 1)));
        assert_eq!(reader.len(), 2);
    });
}

/// Eviction under a live reader: a handle obtained before the evict
/// keeps resolving its contents; the catalog stops resolving the id.
#[test]
fn evict_vs_live_reader_is_race_free() {
    check_exhaustive(|| {
        let (mut writer, reader) = catalog(1);
        writer.publish(epoch(0));
        let r = reader.clone();
        let t = loom::thread::spawn(move || {
            // Hold a handle from before/while the evicting publish.
            let held = r.get(0);
            let again = r.get(0);
            (held, again)
        });
        // keep == 1: publishing epoch 1 evicts epoch 0 in one flip.
        writer.publish(epoch(1));
        let (held, again) = t.join().unwrap();
        if let Some(e) = &held {
            assert_eq!((e.id, e.packets, e.weight), (0, 0, 0));
        }
        // Once an id stops resolving it never comes back (the second
        // lookup can only fail if the first did, or both succeeded
        // before the flip — it must never resurrect).
        if held.is_none() {
            assert!(again.is_none(), "evicted ids must not resurrect");
        }
        // After the publish, id 0 is gone and id 1 is current.
        assert!(reader.get(0).is_none());
        assert_eq!(reader.ids(), Some((1, 1)));
    });
}

/// Two concurrent readers share pins on both sides across a flip
/// without ever observing torn state.
#[test]
fn two_readers_one_publish() {
    check_exhaustive(|| {
        let (mut writer, reader) = catalog(4);
        writer.publish(epoch(0));
        let spawn_reader = |r: serve::SnapshotCatalog| {
            loom::thread::spawn(move || {
                let e = r.latest();
                if let Some(e) = &e {
                    assert_eq!(e.weight, e.id * 100);
                }
                e.map(|e| e.id)
            })
        };
        let t1 = spawn_reader(reader.clone());
        let t2 = spawn_reader(reader.clone());
        writer.publish(epoch(1));
        let (a, b) = (t1.join().unwrap(), t2.join().unwrap());
        for seen in [a, b] {
            assert!(matches!(seen, Some(0) | Some(1)));
        }
        assert_eq!(reader.ids(), Some((0, 1)));
    });
}

/// The wire server's shutdown handshake: `serve_connection` finishes
/// its response bookkeeping and then raises `stop` with a `Release`
/// store; the accept loop `Acquire`-loads the flag. Once the acceptor
/// observes `true`, everything the connection thread wrote beforehand
/// has happened-before it — modeled here with a tracked cell standing
/// in for the bookkeeping, so demoting either side to `Relaxed` turns
/// the cell pair into a detected race.
#[test]
fn shutdown_flag_handoff_is_race_free() {
    use loom::cell::UnsafeCell;
    use loom::sync::atomic::{AtomicBool, Ordering};

    struct Handshake {
        stop: AtomicBool,
        served: UnsafeCell<u64>,
    }
    // SAFETY: the Release store on `stop` publishes the `served` write,
    // and the acceptor reads `served` only after an Acquire load
    // observes `true` — the exclusion this model exists to check.
    #[allow(unsafe_code)] // audited: see the SAFETY comment above
    unsafe impl Sync for Handshake {}

    check_exhaustive(|| {
        let hs = Arc::new(Handshake {
            stop: AtomicBool::new(false),
            served: UnsafeCell::new(0),
        });
        let h2 = Arc::clone(&hs);
        let worker = loom::thread::spawn(move || {
            h2.served.with_mut(|p| {
                // SAFETY: the single connection thread writes before
                // the Release store; no reader until the flag is up.
                #[allow(unsafe_code)] // audited: handshake argument above
                unsafe {
                    *p = 1
                };
            });
            h2.stop.store(true, Ordering::Release);
        });
        loop {
            if hs.stop.load(Ordering::Acquire) {
                let v = hs.served.with(|p| {
                    // SAFETY: Acquire saw the Release store, so the
                    // worker's write happened-before this read.
                    #[allow(unsafe_code)] // audited: handshake argument above
                    unsafe {
                        *p
                    }
                });
                assert_eq!(v, 1, "shutdown flag published stale bookkeeping");
                break;
            }
            loom::thread::yield_now();
        }
        worker.join().unwrap();
    });
}

/// Cache slot election: two threads inserting the same key race on
/// one `EMPTY -> BUSY` compare-exchange; both must come back with the
/// (deterministic) compiled projector, and the published entry is
/// read only after its `Release`/`Acquire` edge.
#[test]
fn cache_insert_race_is_race_free() {
    check_exhaustive(|| {
        let cache = Arc::new(ProjectorCache::new());
        let full = KeySpec::FIVE_TUPLE;
        let spec = KeySpec::SRC_IP;
        let c = Arc::clone(&cache);
        let t = loom::thread::spawn(move || c.projector(&full, &spec).out_len());
        let here = cache.projector(&full, &spec).out_len();
        let there = t.join().unwrap();
        assert_eq!(here, spec.encoded_len());
        assert_eq!(there, spec.encoded_len());
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses + stats.bypasses, 2);
        assert!(stats.misses >= 1, "someone interned the entry");
    });
}

//! Concurrency primitives, cfg-switched between `std` and the `loom`
//! model checker.
//!
//! Same facade the engine's ring uses (`engine/src/sync.rs`):
//! production builds get zero-cost `std` types; with the `loom`
//! feature (enabled by `heavy-tests`), the catalog and cache compile
//! against the tracked types, so the model tests in `tests/model.rs`
//! exhaustively interleave the *real* publish/pin/evict protocol, not
//! a copy of it. Only the primitives this crate actually uses are
//! exposed.
//!
//! Both variants share loom's access-closure `UnsafeCell` API
//! ([`UnsafeCell::with`] / [`UnsafeCell::with_mut`]): the closures
//! receive raw pointers, so dereferencing stays an explicit `unsafe`
//! obligation at the call site — the std variant's closures inline to
//! nothing.

#[cfg(feature = "loom")]
pub(crate) use loom::cell::UnsafeCell;
#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "loom")]
pub(crate) use loom::thread::yield_now;

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(feature = "loom"))]
pub(crate) use std::thread::yield_now;

/// The std stand-in for `loom::cell::UnsafeCell`: a plain
/// [`std::cell::UnsafeCell`] behind the same `with`/`with_mut` API.
#[cfg(not(feature = "loom"))]
#[derive(Debug, Default)]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(feature = "loom"))]
impl<T> UnsafeCell<T> {
    pub(crate) const fn new(data: T) -> Self {
        Self(std::cell::UnsafeCell::new(data))
    }

    /// Call `f` with a shared raw pointer to the contents.
    #[inline(always)]
    pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Call `f` with a mutable raw pointer to the contents.
    #[inline(always)]
    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

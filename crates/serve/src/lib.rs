//! Resident query service for sealed CocoSketch epochs.
//!
//! CocoSketch's premise — answer **arbitrary** partial-key queries
//! after the fact from one compact structure — only pays off
//! operationally if many readers can ask concurrently while packets
//! keep flowing. This crate is that serving layer:
//!
//! * [`mod@catalog`]: a lock-free [`catalog::SnapshotCatalog`] publishing
//!   sealed [`cocosketch::Epoch`]s behind `Arc` handles — readers pin
//!   a snapshot with two atomic ops, never a lock, and handles
//!   outlive eviction.
//! * [`cache`]: a lock-free, insert-only [`cache::ProjectorCache`] so
//!   each compiled projection plan is built once and shared across
//!   readers and epochs.
//! * [`mod@service`]: the in-process API — a unique [`service::Publisher`]
//!   for the seal thread, a shared [`service::Service`] for readers
//!   (partial-key, hierarchy, and windowed rollup queries, always
//!   bit-identical to querying the epoch's table directly).
//! * [`wire`]: a length-prefixed protocol over Unix/TCP sockets
//!   reusing the `CEP1` epoch envelope, with a std-only threaded
//!   server and client.
//!
//! Concurrency claims are model-checked: `tests/model.rs` runs the
//! real catalog and cache under the loom shim (`--features
//! heavy-tests`) and exhausts every schedule within the preemption
//! bound, including the seqcst edges the protocol depends on.

#![deny(unsafe_code)] // audited item-level allows only (see lint.toml)
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod service;
mod sync;
pub mod wire;

pub use cache::{CacheStats, ProjectorCache};
pub use catalog::{catalog, CatalogWriter, SnapshotCatalog};
pub use service::{service, service_with_cold, Answer, Publisher, Select, Service, ServiceInfo};
pub use wire::{connect, Client, Request, Response, Server};

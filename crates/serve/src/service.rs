//! The in-process query service: a snapshot catalog plus a shared
//! projector cache behind one read API.
//!
//! A [`Service`] is built with [`service`] and split at birth into the
//! unique [`Publisher`] (kept by the ingest/seal thread) and a shared
//! `Arc<Service>` handed to any number of reader threads — in-process
//! callers, the wire server in [`crate::wire`], or both at once. Every
//! reader method takes `&self`, never blocks the publisher, and
//! answers from a sealed, immutable epoch snapshot, so an answer is
//! bit-identical to running the same query directly on that epoch's
//! table (`tests` and the `qps` bench both assert this against
//! [`FlowTable::query_all_entries`]).

use crate::cache::{CacheStats, ProjectorCache};
use crate::catalog::{catalog, CatalogWriter, SnapshotCatalog};
use crate::sync::{AtomicU64, Ordering};
use cocosketch::segment::SegmentMeta;
use cocosketch::{DirReader, Epoch, FlowTable};
use hashkit::{fast_map_with_capacity, FastMap};
use std::sync::Arc;
use traffic::{KeyBytes, KeySpec};

/// Which epoch a query addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Select {
    /// The most recently published epoch.
    Latest,
    /// The epoch with this id (fails if unpublished or evicted).
    Id(u64),
}

/// One answered partial-key query: the sorted entry table for `spec`
/// over the selected epoch(s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Answer {
    /// Id of the answering epoch (the last one, for window queries).
    pub epoch: u64,
    /// Packets the answering epoch ingested (summed across epochs for
    /// window queries).
    pub packets: u64,
    /// Stream weight the answering epoch ingested (summed likewise).
    pub weight: u64,
    /// The spec the entries are keyed by.
    pub spec: KeySpec,
    /// `(partial key, size)` rows, sorted by lexicographic key bytes —
    /// the same shape [`FlowTable::query_all_entries`] produces.
    pub entries: Vec<(KeyBytes, u64)>,
}

/// Catalog occupancy and cache effectiveness, for operators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceInfo {
    /// `(oldest, latest)` retained epoch ids, if any are retained.
    pub ids: Option<(u64, u64)>,
    /// Number of retained epochs.
    pub epochs: usize,
    /// Projector-cache counters.
    pub cache: CacheStats,
    /// Cold-tier reads that failed with an I/O or validation error
    /// (counted since the service was built). Cold failures answer as
    /// misses so queries never error on a flaky disk, but a non-zero,
    /// growing value here is how an operator tells a dying spill
    /// directory apart from ordinary evicted/compacted misses.
    pub cold_errors: u64,
}

/// The resident query service's shared read half.
#[derive(Debug)]
pub struct Service {
    snapshots: SnapshotCatalog,
    projectors: ProjectorCache,
    /// The durable tier, if attached: epochs that aged out of the
    /// catalog are backfilled from this epoch directory on miss.
    cold: Option<DirReader>,
    /// Failed cold-tier reads (all-Relaxed counter; see
    /// [`ServiceInfo::cold_errors`]).
    cold_errors: AtomicU64,
}

/// The unique publishing half (wraps the catalog's single writer).
#[derive(Debug)]
pub struct Publisher {
    writer: CatalogWriter,
}

/// Create a service retaining the last `keep` published epochs.
pub fn service(keep: usize) -> (Publisher, Arc<Service>) {
    service_inner(keep, None)
}

/// [`service`] with a durable tier attached: reads that miss the
/// in-memory catalog fall through to `cold` (a stateless reader over
/// an epoch directory that the seal path streams segments into), so
/// readers can query windows that aged out of memory. Cold answers go
/// through exactly the same aggregation as warm ones, and segment
/// reads validate checksum and envelope, so a backfilled answer is
/// bit-identical to the answer the in-memory epoch gave before
/// eviction.
pub fn service_with_cold(keep: usize, cold: DirReader) -> (Publisher, Arc<Service>) {
    service_inner(keep, Some(cold))
}

fn service_inner(keep: usize, cold: Option<DirReader>) -> (Publisher, Arc<Service>) {
    let (writer, snapshots) = catalog(keep);
    (
        Publisher { writer },
        Arc::new(Service {
            snapshots,
            projectors: ProjectorCache::new(),
            cold,
            cold_errors: AtomicU64::new(0),
        }),
    )
}

impl Publisher {
    /// Publish a sealed epoch; readers see it before this returns.
    ///
    /// # Panics
    /// Panics when `epoch.id` is not the next dense id (see
    /// [`CatalogWriter::publish`]).
    pub fn publish(&mut self, epoch: Arc<Epoch>) -> u64 {
        self.writer.publish(epoch)
    }

    /// [`publish`](Self::publish) for an epoch not yet behind an
    /// [`Arc`].
    pub fn publish_epoch(&mut self, epoch: Epoch) -> u64 {
        self.publish(Arc::new(epoch))
    }

    /// Evict down to `keep` retained epochs; returns how many were
    /// dropped (readers holding handles keep them — see
    /// [`mod@crate::catalog`]).
    pub fn evict_to(&mut self, keep: usize) -> usize {
        self.writer.evict_to(keep)
    }
}

impl Service {
    /// The selected epoch's snapshot handle: from the in-memory
    /// catalog when retained, else backfilled from the durable tier
    /// (when one is attached — see [`service_with_cold`]). A cold read
    /// that fails validation (torn, corrupt, or absent segment) is a
    /// miss, never an error: the service's contract stays "`None` when
    /// the epoch cannot be served" — but every such failure bumps
    /// [`ServiceInfo::cold_errors`] so it is not silent.
    // LINT: hot
    pub fn snapshot(&self, sel: Select) -> Option<Arc<Epoch>> {
        let warm = match sel {
            Select::Latest => self.snapshots.latest(),
            Select::Id(id) => self.snapshots.get(id),
        };
        warm.or_else(|| {
            // LINT: cold(catalog miss: one validated disk read backfills an evicted epoch)
            match sel {
                Select::Latest => self.cold_latest(),
                Select::Id(id) => self.cold_get(id),
            }
        })
    }

    /// Unwrap a cold-tier read, counting failures: an `Err` becomes a
    /// miss (readers never error on a flaky disk) but increments the
    /// [`ServiceInfo::cold_errors`] counter, so operators can tell a
    /// dying cold tier from ordinary evicted/compacted misses.
    fn note_cold<T>(&self, result: std::io::Result<Option<T>>) -> Option<T> {
        match result {
            Ok(found) => found,
            Err(_) => {
                self.cold_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Backfill epoch `id` from the durable tier.
    fn cold_get(&self, id: u64) -> Option<Arc<Epoch>> {
        let reader = self.cold.as_ref()?;
        self.note_cold(reader.read_epoch(id)).map(Arc::new)
    }

    /// The durable tier's newest epoch (only reached when the catalog
    /// is empty, e.g. a reader attached before the first publish of a
    /// restarted collector).
    fn cold_latest(&self) -> Option<Arc<Epoch>> {
        let reader = self.cold.as_ref()?;
        self.note_cold(reader.read_latest()).map(Arc::new)
    }

    /// Answer one partial-key query against the selected epoch's
    /// primary table. `None` when the epoch is not retained, sealed no
    /// tables, or `spec` is not a partial key of the table's full key.
    pub fn partial(&self, sel: Select, spec: &KeySpec) -> Option<Answer> {
        let epoch = self.snapshot(sel)?;
        let table = epoch.tables.first()?;
        let mut groups = self.aggregate(table, spec)?;
        Some(Answer {
            epoch: epoch.id,
            packets: epoch.packets,
            weight: epoch.weight,
            spec: *spec,
            entries: sorted_entries(&mut groups),
        })
    }

    /// Answer a whole spec list (e.g. an HHH hierarchy) against the
    /// selected epoch via the rollup engine, optionally filtering each
    /// level to entries with `size >= threshold` (`threshold == 0`
    /// keeps everything). Answers come back in `specs` order.
    pub fn multi(&self, sel: Select, specs: &[KeySpec], threshold: u64) -> Option<Vec<Answer>> {
        let epoch = self.snapshot(sel)?;
        let table = epoch.tables.first()?;
        let full = table.full_spec();
        if specs.iter().any(|s| !s.is_partial_of(full)) {
            return None;
        }
        let levels = table.query_all_entries(specs);
        Some(
            specs
                .iter()
                .zip(levels)
                .map(|(spec, mut entries)| {
                    if threshold > 1 {
                        entries.retain(|&(_, size)| size >= threshold);
                    }
                    Answer {
                        epoch: epoch.id,
                        packets: epoch.packets,
                        weight: epoch.weight,
                        spec: *spec,
                        entries,
                    }
                })
                .collect(),
        )
    }

    /// Answer one spec over the epochs in `first..=last`, summing
    /// sizes across windows (exact: per-epoch tables hold exact
    /// per-key totals of what each window ingested). Warm ids come
    /// from the catalog; everything else comes from the durable tier,
    /// whose manifest is read **once per call**. A compacted bucket
    /// whose whole id range lies inside the query contributes its
    /// merged table — compaction conserves per-key sums exactly, so
    /// that equals summing its member epochs — while a bucket that
    /// straddles the range boundary is excluded (its per-epoch
    /// resolution is gone; including it would over-count).
    ///
    /// `None` when nothing in the range can be served or the spec
    /// doesn't fit; otherwise the answer also reports how many epoch
    /// ids contributed weight (a bucket counts its whole span).
    /// Comparing that count to the requested range is how callers
    /// detect partial coverage: ids evicted without a spill sink,
    /// straddling buckets, or failed cold reads (which also bump
    /// [`ServiceInfo::cold_errors`]).
    pub fn window(&self, first: u64, last: u64, spec: &KeySpec) -> Option<(Answer, usize)> {
        let cold_segments: Vec<SegmentMeta> = match &self.cold {
            Some(reader) => self
                .note_cold(reader.segments().map(Some))
                .unwrap_or_default(),
            None => Vec::new(),
        };
        let warm = self.snapshots.ids();
        let cold = cold_segments
            .first()
            .zip(cold_segments.last())
            .map(|(a, b)| (a.first, b.last));
        let (lo, hi) = match (warm, cold) {
            (Some((a, b)), Some((c, d))) => (a.min(c), b.max(d)),
            (Some(bounds), None) | (None, Some(bounds)) => bounds,
            (None, None) => return None,
        };
        let (lo, hi) = (lo.max(first), hi.min(last));
        if lo > hi {
            return None;
        }
        let mut groups: FastMap<KeyBytes, u64> = FastMap::default();
        let mut contributed = 0usize;
        let mut last_id = 0u64;
        let (mut packets, mut weight) = (0u64, 0u64);
        // Warm pass: catalog epochs are in memory and take precedence
        // over their on-disk copies.
        let mut warm_served: Vec<u64> = Vec::new();
        for id in lo..=hi {
            let Some(epoch) = self.snapshots.get(id) else {
                continue;
            };
            let Some(table) = epoch.tables.first() else {
                continue;
            };
            let level = self.aggregate(table, spec)?;
            for (key, size) in level {
                *groups.entry(key).or_insert(0) += size;
            }
            warm_served.push(id);
            contributed += 1;
            last_id = last_id.max(epoch.id);
            packets += epoch.packets;
            weight += epoch.weight;
        }
        // Cold pass: in-range segments the warm tier didn't serve —
        // one validated read per segment, buckets included whole.
        if let Some(reader) = &self.cold {
            for meta in &cold_segments {
                let in_range = lo <= meta.first && meta.last <= hi;
                if !in_range || warm_served.iter().any(|&id| meta.covers(id)) {
                    // Straddling buckets (and segments fully outside
                    // the range) are skipped; the shortfall is visible
                    // in `contributed`.
                    continue;
                }
                let Some(epoch) = self.note_cold(reader.read_segment(meta).map(Some)) else {
                    continue;
                };
                let Some(table) = epoch.tables.first() else {
                    continue;
                };
                let level = self.aggregate(table, spec)?;
                for (key, size) in level {
                    *groups.entry(key).or_insert(0) += size;
                }
                contributed += (meta.last - meta.first + 1) as usize;
                last_id = last_id.max(meta.last);
                packets += epoch.packets;
                weight += epoch.weight;
            }
        }
        if contributed == 0 {
            return None;
        }
        Some((
            Answer {
                epoch: last_id,
                packets,
                weight,
                spec: *spec,
                entries: sorted_entries(&mut groups),
            },
            contributed,
        ))
    }

    /// Catalog occupancy and cache counters.
    pub fn info(&self) -> ServiceInfo {
        ServiceInfo {
            ids: self.snapshots.ids(),
            epochs: self.snapshots.len(),
            cache: self.projectors.stats(),
            cold_errors: self.cold_errors.load(Ordering::Relaxed),
        }
    }

    /// `GROUP BY spec` over one table through the shared projector
    /// cache — the service's hot loop. Matches
    /// [`FlowTable::query_partial`]'s aggregation exactly (same
    /// projector output, same u64 sums), so sorting the groups yields
    /// [`FlowTable::query_all_entries`]'s rows bit-for-bit.
    // LINT: hot
    fn aggregate(&self, table: &FlowTable, spec: &KeySpec) -> Option<FastMap<KeyBytes, u64>> {
        let full = table.full_spec();
        if !spec.is_partial_of(full) {
            return None;
        }
        let proj = self.projectors.projector(full, spec);
        let hint = {
            let bits = spec.cardinality_bits();
            if bits >= usize::BITS - 1 {
                table.len()
            } else {
                table.len().min(1usize << bits)
            }
        };
        let mut groups: FastMap<KeyBytes, u64> = fast_map_with_capacity(hint);
        let mut scratch = KeyBytes::EMPTY;
        for (full_key, size) in table.rows() {
            proj.project_into(full_key, &mut scratch);
            *groups.entry(scratch).or_insert(0) += size;
        }
        Some(groups)
    }
}

/// Drain a group map into the sorted-entry shape
/// ([`FlowTable::query_all_entries`]'s comparator: lexicographic key
/// bytes; keys are unique, so the order is total and deterministic).
fn sorted_entries(groups: &mut FastMap<KeyBytes, u64>) -> Vec<(KeyBytes, u64)> {
    let mut entries: Vec<(KeyBytes, u64)> = groups.drain().collect();
    entries.sort_unstable_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
    entries
}

#[cfg(test)]
#[cfg(not(feature = "loom"))]
mod tests {
    use super::*;
    use traffic::FiveTuple;

    fn epoch(id: u64, rows: u32, salt: u32) -> Epoch {
        let full = KeySpec::FIVE_TUPLE;
        let table = FlowTable::new(
            full,
            (0..rows)
                .map(|i| {
                    (
                        full.project(&FiveTuple::new(
                            (i + salt) % 97,
                            i.wrapping_mul(2654435761) % 53,
                            (i % 7) as u16,
                            443,
                            6,
                        )),
                        u64::from(i) + 1,
                    )
                })
                .collect(),
        );
        Epoch {
            id,
            packets: u64::from(rows),
            weight: (0..u64::from(rows)).map(|i| i + 1).sum(),
            tables: vec![table],
        }
    }

    #[test]
    fn partial_matches_query_all_entries() {
        let (mut publisher, svc) = service(4);
        publisher.publish_epoch(epoch(0, 500, 3));
        let held = svc.snapshot(Select::Id(0)).unwrap();
        for spec in KeySpec::PAPER_SIX {
            let served = svc.partial(Select::Id(0), &spec).unwrap();
            let direct = held.primary().query_all_entries(&[spec]);
            assert_eq!(served.entries, direct[0], "{spec:?}");
            assert_eq!(served.epoch, 0);
        }
    }

    #[test]
    fn multi_matches_and_filters() {
        let (mut publisher, svc) = service(4);
        publisher.publish_epoch(epoch(0, 400, 11));
        let held = svc.snapshot(Select::Latest).unwrap();
        let specs = [KeySpec::SRC_DST, KeySpec::SRC_IP, KeySpec::EMPTY];
        let direct = held.primary().query_all_entries(&specs);

        let served = svc.multi(Select::Latest, &specs, 0).unwrap();
        for (ans, want) in served.iter().zip(&direct) {
            assert_eq!(&ans.entries, want);
        }

        let threshold = 1000;
        let filtered = svc.multi(Select::Latest, &specs, threshold).unwrap();
        for (ans, want) in filtered.iter().zip(&direct) {
            let want: Vec<_> = want
                .iter()
                .copied()
                .filter(|&(_, s)| s >= threshold)
                .collect();
            assert_eq!(ans.entries, want);
        }
    }

    #[test]
    fn window_sums_across_epochs() {
        let (mut publisher, svc) = service(8);
        for id in 0..3 {
            publisher.publish_epoch(epoch(id, 200, id as u32 * 19));
        }
        let spec = KeySpec::SRC_IP;
        let (answer, contributed) = svc.window(0, 2, &spec).unwrap();
        assert_eq!(contributed, 3);
        assert_eq!(answer.epoch, 2);
        // Reference: merge the three direct per-epoch answers.
        let mut expect: FastMap<KeyBytes, u64> = FastMap::default();
        for id in 0..3 {
            let e = svc.snapshot(Select::Id(id)).unwrap();
            for (k, s) in &e.primary().query_all_entries(&[spec])[0] {
                *expect.entry(*k).or_insert(0) += s;
            }
        }
        assert_eq!(answer.entries, sorted_entries(&mut expect));
        // Ranges clipped to retention still answer.
        let (_, n) = svc.window(1, 99, &spec).unwrap();
        assert_eq!(n, 2);
        assert!(svc.window(40, 50, &spec).is_none());
    }

    #[test]
    fn selection_and_validation_misses_are_none() {
        let (mut publisher, svc) = service(2);
        assert!(svc.partial(Select::Latest, &KeySpec::SRC_IP).is_none());
        publisher.publish_epoch(epoch(0, 10, 0));
        publisher.publish_epoch(epoch(1, 10, 1));
        publisher.publish_epoch(epoch(2, 10, 2)); // evicts 0
        assert!(svc.partial(Select::Id(0), &KeySpec::SRC_IP).is_none());
        assert!(svc.partial(Select::Id(3), &KeySpec::SRC_IP).is_none());
        // A spec that is not partial of the 5-tuple: impossible here
        // (everything is), so exercise via a narrower full key.
        let (mut p2, svc2) = service(2);
        let narrow = KeySpec::SRC_IP;
        p2.publish_epoch(Epoch {
            id: 0,
            packets: 0,
            weight: 0,
            tables: vec![FlowTable::new(narrow, vec![])],
        });
        assert!(svc2.partial(Select::Latest, &KeySpec::SRC_DST).is_none());
        assert!(svc2
            .multi(Select::Latest, &[narrow, KeySpec::SRC_DST], 0)
            .is_none());
        // Info reflects occupancy and cache activity.
        assert!(svc.partial(Select::Latest, &KeySpec::SRC_IP).is_some());
        let info = svc.info();
        assert_eq!(info.ids, Some((1, 2)));
        assert_eq!(info.epochs, 2);
        assert!(info.cache.hits + info.cache.misses > 0);
    }

    #[test]
    fn cold_backfill_serves_evicted_epochs_bit_identical() {
        use cocosketch::segment::EpochDir;
        let root = std::env::temp_dir().join(format!("serve-cold-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let (mut dir, _) = EpochDir::open(&root).unwrap();
        let (mut publisher, svc) = service_with_cold(2, DirReader::new(&root));
        let spec = KeySpec::SRC_IP;
        let mut direct = Vec::new();
        for id in 0..5u64 {
            let e = epoch(id, 150, id as u32 * 7);
            dir.append(&e).unwrap();
            direct.push(e.primary().query_all_entries(&[spec])[0].clone());
            publisher.publish_epoch(e);
        }
        assert_eq!(svc.info().ids, Some((3, 4)), "catalog holds the last 2");
        // Every id answers — warm from the catalog, cold from disk —
        // and cold answers match the pre-eviction direct scans exactly.
        for id in 0..5u64 {
            let ans = svc.partial(Select::Id(id), &spec).unwrap();
            assert_eq!(ans.entries, direct[id as usize], "epoch {id}");
            assert_eq!(ans.epoch, id);
        }
        assert!(svc.partial(Select::Id(9), &spec).is_none());
        // A window spanning both tiers sums all five epochs.
        let (answer, contributed) = svc.window(0, 4, &spec).unwrap();
        assert_eq!(contributed, 5);
        let mut expect: FastMap<KeyBytes, u64> = FastMap::default();
        for entries in &direct {
            for (k, s) in entries {
                *expect.entry(*k).or_insert(0) += s;
            }
        }
        assert_eq!(answer.entries, sorted_entries(&mut expect));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn window_includes_fully_contained_buckets() {
        use cocosketch::segment::{CompactionPolicy, EpochDir};
        let root = std::env::temp_dir().join(format!("serve-bucket-win-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let (mut dir, _) = EpochDir::open(&root).unwrap();
        let spec = KeySpec::SRC_IP;
        let mut direct = Vec::new();
        for id in 0..6u64 {
            let e = epoch(id, 120, id as u32 * 13);
            direct.push(e.primary().query_all_entries(&[spec])[0].clone());
            dir.append(&e).unwrap();
        }
        // Horizon = 5 - 1 = 4: ids 0..=3 fold into buckets [0-1] and
        // [2-3]; 4 and 5 stay single-epoch segments.
        dir.compact(&CompactionPolicy {
            bucket: 2,
            keep_recent: 1,
        })
        .unwrap();
        assert_eq!(dir.len(), 4);
        // Nothing published: the whole window answers from disk, and
        // the buckets' merged weight stands in exactly for their
        // member epochs.
        let (_publisher, svc) = service_with_cold(4, DirReader::new(&root));
        let (answer, contributed) = svc.window(0, 5, &spec).unwrap();
        assert_eq!(contributed, 6, "buckets count their whole span");
        assert_eq!(answer.epoch, 5);
        let mut expect: FastMap<KeyBytes, u64> = FastMap::default();
        for entries in &direct {
            for (k, s) in entries {
                *expect.entry(*k).or_insert(0) += s;
            }
        }
        assert_eq!(answer.entries, sorted_entries(&mut expect));
        // A range that splits a bucket serves what it can; the
        // excluded straddling bucket shows up as missing coverage.
        let (partial_ans, n) = svc.window(1, 5, &spec).unwrap();
        assert_eq!(n, 4, "bucket [2-3] plus singles 4, 5; [0-1] straddles");
        let mut expect: FastMap<KeyBytes, u64> = FastMap::default();
        for entries in &direct[2..] {
            for (k, s) in entries {
                *expect.entry(*k).or_insert(0) += s;
            }
        }
        assert_eq!(partial_ans.entries, sorted_entries(&mut expect));
        assert_eq!(svc.info().cold_errors, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cold_read_failures_are_counted_not_silent() {
        let root = std::env::temp_dir().join(format!("serve-cold-err-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        // A manifest that parses but names a segment file that does
        // not exist: the read must answer as a miss AND be counted.
        std::fs::write(root.join("MANIFEST"), "CDM1\nseg 0 0 64 0000000000000000\n").unwrap();
        let (mut publisher, svc) = service_with_cold(2, DirReader::new(&root));
        assert!(svc.partial(Select::Id(0), &KeySpec::SRC_IP).is_none());
        assert_eq!(svc.info().cold_errors, 1, "missing segment is an error");
        // A garbage manifest fails the window's cold scan, but warm
        // epochs still answer — degraded, counted, never silent.
        std::fs::write(root.join("MANIFEST"), "garbage").unwrap();
        publisher.publish_epoch(epoch(0, 50, 1));
        let (_, contributed) = svc.window(0, 0, &KeySpec::SRC_IP).unwrap();
        assert_eq!(contributed, 1);
        assert_eq!(svc.info().cold_errors, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cold_latest_answers_before_first_publish() {
        use cocosketch::segment::EpochDir;
        let root = std::env::temp_dir().join(format!("serve-cold-latest-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let (mut dir, _) = EpochDir::open(&root).unwrap();
        for id in 0..2u64 {
            dir.append(&epoch(id, 60, id as u32)).unwrap();
        }
        // A reader attaches to a restarted collector: nothing published
        // yet, but the directory has history.
        let (_publisher, svc) = service_with_cold(2, DirReader::new(&root));
        let ans = svc.partial(Select::Latest, &KeySpec::SRC_IP).unwrap();
        assert_eq!(ans.epoch, 1, "cold latest");
        let (_, contributed) = svc.window(0, 9, &KeySpec::SRC_IP).unwrap();
        assert_eq!(contributed, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn readers_and_publisher_run_concurrently() {
        let (mut publisher, svc) = service(3);
        publisher.publish_epoch(epoch(0, 300, 0));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let svc = Arc::clone(&svc);
                let stop = &stop;
                scope.spawn(move || {
                    let mut answered = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for spec in KeySpec::PAPER_SIX {
                            if let Some(ans) = svc.partial(Select::Latest, &spec) {
                                // Conservation: entries sum to the
                                // epoch's total weight on every spec.
                                let total: u64 = ans.entries.iter().map(|&(_, s)| s).sum();
                                let e = svc.snapshot(Select::Id(ans.epoch));
                                if let Some(e) = e {
                                    assert_eq!(total, e.weight);
                                }
                                answered += 1;
                            }
                        }
                    }
                    answered
                });
            }
            for id in 1..40 {
                publisher.publish_epoch(epoch(id, 300, id as u32));
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(svc.info().ids, Some((37, 39)));
    }
}

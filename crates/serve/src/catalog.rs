//! Lock-free publication of sealed epoch snapshots.
//!
//! The catalog is the hand-off point between one ingest/seal thread
//! and any number of query readers. Readers resolve epoch ids to
//! [`Arc<Epoch>`] handles without ever taking a lock; the single
//! writer publishes a new epoch (and evicts old ones) with two atomic
//! stores and a bounded wait for in-flight readers.
//!
//! # The left-right protocol
//!
//! An atomic-pointer swap over an immutable list would force the
//! writer to clone the whole retained list per publish. Instead the
//! catalog keeps **two** copies of its state and a `read_idx` switch:
//!
//! * **Readers** *pin* the current read side — increment that side's
//!   reader count, then re-check `read_idx`. If the switch moved
//!   between the two steps they retract the increment and retry (at
//!   most once per concurrent publish); otherwise they read the
//!   pinned side's state and unpin. Pin and unpin are one `fetch_add`
//!   / `fetch_sub` each: wait-free in the absence of a concurrent
//!   publish, lock-free always.
//! * **The writer** applies each mutation twice: first to the write
//!   side (quiescent by induction — see below), then flips `read_idx`
//!   so new readers land on the fresh side, waits for the old side's
//!   reader count to drain to zero, and applies the same mutation to
//!   the now-quiescent old side. The two sides converge after every
//!   publish; the writer never blocks readers and readers never block
//!   each other.
//!
//! `SeqCst` on the pin increment / re-check and on the flip / drain
//! load is load-bearing: the four accesses form a store-buffering
//! pattern (reader: `inc; check`, writer: `flip; drain`), and with
//! weaker orderings both could pass — a reader confirmed on a side the
//! writer believes drained. The model tests in `tests/model.rs` run
//! this exact code under the loom shim and catch that mutation.
//!
//! A *straggler* — a reader that loaded `read_idx` before a flip and
//! increments the stale side's count arbitrarily later — is benign by
//! construction: its re-check is doomed to fail (the switch has
//! moved), so it retracts without ever touching the side's state, and
//! its transient increment only delays a future drain by one
//! scheduler slice. That is why the write side is quiescent at the
//! start of every mutation: the previous mutation drained it, and the
//! only increments that can land on it afterwards belong to
//! stragglers, which never read.
//!
//! Eviction and reclamation need no epoch-based scheme: the state
//! holds `Arc<Epoch>`, so dropping an epoch from both sides leaves
//! any handle a reader already cloned alive and bit-identical
//! ([`Epoch`]s are sealed/immutable) for as long as the reader keeps
//! it.

use crate::sync::{yield_now, AtomicUsize, Ordering, UnsafeCell};
use cocosketch::Epoch;
use std::sync::Arc;

/// Retained snapshots, one side of the left-right pair.
///
/// Same shape as `cocosketch::EpochStore`'s retention model: dense
/// ids, `epochs[i].id == base + i`, eviction advances `base`.
#[derive(Clone, Debug, Default)]
struct CatalogState {
    /// Id of the oldest retained epoch.
    base: u64,
    /// Retained epochs in id order.
    epochs: Vec<Arc<Epoch>>,
}

impl CatalogState {
    fn push(&mut self, epoch: &Arc<Epoch>) {
        assert_eq!(
            epoch.id,
            self.base + self.epochs.len() as u64,
            "published epoch ids must be dense and in order"
        );
        self.epochs.push(Arc::clone(epoch));
    }

    fn evict_to(&mut self, keep: usize) -> usize {
        let excess = self.epochs.len().saturating_sub(keep);
        if excess > 0 {
            self.epochs.drain(..excess);
            self.base += excess as u64;
        }
        excess
    }

    fn get(&self, id: u64) -> Option<&Arc<Epoch>> {
        let slot = id.checked_sub(self.base)?;
        self.epochs.get(usize::try_from(slot).ok()?)
    }
}

/// One side of the pair: a reader count guarding a state copy.
#[derive(Debug, Default)]
struct Side {
    /// Readers currently pinned to this side.
    readers: AtomicUsize,
    /// The state copy; mutated only by the single writer, and only
    /// while no reader is (or can become) pinned here.
    state: UnsafeCell<CatalogState>,
}

/// The shared left-right core. See the module docs for the protocol.
#[derive(Debug)]
pub(crate) struct Shared {
    /// Which side readers should pin: 0 or 1. Flipped only by the
    /// writer.
    read_idx: AtomicUsize,
    sides: [Side; 2],
}

// SAFETY: `Shared` is shared across threads while holding
// `UnsafeCell<CatalogState>`s. The left-right protocol (module docs)
// guarantees exclusion: the writer mutates a side's state only while
// that side is quiescent (drained of confirmed readers; stragglers
// retract without reading), and readers dereference a side's state
// only between a confirmed pin and the matching unpin, during which
// the writer cannot start mutating it (the drain loop waits for the
// unpin). The `tests/model.rs` suite checks this exclusion
// exhaustively under the loom shim, including the SeqCst
// store-buffering edge.
#[allow(unsafe_code)] // audited: see the SAFETY comment above
unsafe impl Sync for Shared {}

impl Shared {
    fn new() -> Self {
        Self {
            read_idx: AtomicUsize::new(0),
            sides: [Side::default(), Side::default()],
        }
    }

    /// Pin the current read side; returns its index (0 or 1).
    // LINT: hot
    fn pin(&self) -> usize {
        loop {
            let idx = self.read_idx.load(Ordering::Acquire);
            // LINT: seqcst(store-buffering edge: reader `inc readers; load read_idx` vs writer `store read_idx; load readers` — without a single total order both can miss each other's write and a confirmed pin overlaps the writer's mutation)
            self.sides[idx].readers.fetch_add(1, Ordering::SeqCst); // LINT: bounded(read_idx is only ever stored 0 or 1)
                                                                    // LINT: seqcst(the confirm load is the reader half of the store-buffering edge above; Acquire here could read the pre-flip index while the writer's drain load misses our increment)
            if self.read_idx.load(Ordering::SeqCst) == idx {
                return idx;
            }
            // The switch moved under us: retract and retry on the new
            // side. At most one retry per concurrent publish.
            // LINT: seqcst(the retraction must enter the same total order as the writer's drain loads, or the drain could observe the stale increment forever)
            self.sides[idx].readers.fetch_sub(1, Ordering::SeqCst); // LINT: bounded(read_idx is only ever stored 0 or 1)
        }
    }

    /// Release a [`pin`](Self::pin).
    // LINT: hot
    fn unpin(&self, idx: usize) {
        // LINT: seqcst(the unpin decrement must be totally ordered with the writer's drain loads so the drain's `readers == 0` observation really means this reader left the side)
        self.sides[idx].readers.fetch_sub(1, Ordering::SeqCst); // LINT: bounded(unpin receives pin()'s return, 0 or 1)
    }

    /// Run `f` against a pinned, immutable view of the catalog state.
    fn read<R>(&self, f: impl FnOnce(&CatalogState) -> R) -> R {
        let idx = self.pin();
        let side = &self.sides[idx]; // LINT: bounded(idx is pin()'s return, 0 or 1)
        let out = side.state.with(|state| {
            // SAFETY: between pin and unpin the writer cannot mutate
            // this side (its drain loop waits for our count), so a
            // shared reference is sound; the pointer is valid for the
            // cell's lifetime.
            #[allow(unsafe_code)] // audited: exclusion argument above
            let view = unsafe { &*state };
            f(view)
        });
        self.unpin(idx);
        out
    }

    /// Apply `mutate` to both sides, writer-only (`&mut self` on the
    /// owning [`CatalogWriter`] enforces a single caller).
    fn update(&self, mutate: impl Fn(&mut CatalogState)) {
        // The writer is the only thread that stores read_idx, so a
        // relaxed load reads its own last store.
        let read = self.read_idx.load(Ordering::Relaxed);
        let write = read ^ 1;
        let write_side = &self.sides[write]; // LINT: bounded(write = read ^ 1 with read in {0, 1})
        let read_side = &self.sides[read]; // LINT: bounded(read came from read_idx, 0 or 1)
        write_side.state.with_mut(|state| {
            // SAFETY: the write side is quiescent — drained by the
            // previous update's wait, and only stragglers (which never
            // read) can still increment its count. No reader
            // dereferences a side's state without a confirmed pin,
            // and no pin on this side can confirm until the flip
            // below.
            #[allow(unsafe_code)] // audited: exclusion argument above
            let state = unsafe { &mut *state };
            mutate(state);
        });
        // Publish: readers from here on pin the freshly mutated side.
        // LINT: seqcst(writer half of the store-buffering edge: `store read_idx; load readers` — Release here would let the flip and the drain load reorder against a racing reader's `inc; check`)
        self.read_idx.store(write, Ordering::SeqCst);
        // Drain: wait out readers still pinned to the old side. Each
        // holds the pin only across one state lookup (no I/O, no
        // allocation beyond an Arc clone), so this is a bounded wait.
        // LINT: seqcst(the drain load pairs with the flip store above in one total order; it must not read a count that predates a reader's SeqCst increment)
        while read_side.readers.load(Ordering::SeqCst) != 0 {
            yield_now();
        }
        read_side.state.with_mut(|state| {
            // SAFETY: drained above; as for the write side, only
            // stragglers (which never read) can touch the count now,
            // and new pins confirm against the *new* read side.
            #[allow(unsafe_code)] // audited: exclusion argument above
            let state = unsafe { &mut *state };
            mutate(state);
        });
    }
}

/// A cloneable, lock-free read handle over published epochs.
///
/// Every method resolves against a pinned snapshot of the catalog
/// state; returned [`Arc<Epoch>`] handles stay valid (queryable,
/// bit-identical) even after the writer evicts those epochs.
#[derive(Clone, Debug)]
pub struct SnapshotCatalog {
    shared: Arc<Shared>,
}

impl SnapshotCatalog {
    /// The epoch with this id, if currently retained.
    // LINT: hot
    pub fn get(&self, id: u64) -> Option<Arc<Epoch>> {
        self.shared.read(|s| s.get(id).cloned())
    }

    /// The most recently published epoch.
    // LINT: hot
    pub fn latest(&self) -> Option<Arc<Epoch>> {
        self.shared.read(|s| s.epochs.last().cloned())
    }

    /// The retained epochs in `first..=last`, oldest first. Ids
    /// outside the retained window are skipped, so the result can be
    /// shorter than the requested range (or empty).
    pub fn range(&self, first: u64, last: u64) -> Vec<Arc<Epoch>> {
        self.shared.read(|s| {
            let mut out = Vec::new();
            let mut id = first;
            while id <= last {
                if let Some(e) = s.get(id) {
                    out.push(Arc::clone(e));
                }
                let Some(next) = id.checked_add(1) else {
                    break;
                };
                id = next;
            }
            out
        })
    }

    /// `(oldest, latest)` retained ids, `None` while empty.
    pub fn ids(&self) -> Option<(u64, u64)> {
        self.shared.read(|s| {
            let last = s.epochs.last()?;
            Some((s.base, last.id))
        })
    }

    /// Number of retained epochs.
    pub fn len(&self) -> usize {
        self.shared.read(|s| s.epochs.len())
    }

    /// True while nothing has been published (or all was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The single publishing handle for a catalog. Not `Clone`: `&mut
/// self` on the mutating methods is what makes the left-right writer
/// unique.
#[derive(Debug)]
pub struct CatalogWriter {
    shared: Arc<Shared>,
    keep: usize,
}

impl CatalogWriter {
    /// Publish a sealed epoch and evict down to the retention limit in
    /// one flip. Returns the published id.
    ///
    /// # Panics
    /// Panics when `epoch.id` is not the next dense id — the catalog
    /// inherits [`cocosketch::EpochStore`]'s dense-id contract.
    pub fn publish(&mut self, epoch: Arc<Epoch>) -> u64 {
        let id = epoch.id;
        let keep = self.keep;
        self.shared.update(move |s| {
            s.push(&epoch);
            s.evict_to(keep);
        });
        id
    }

    /// Evict the oldest epochs until at most `keep` remain; returns
    /// how many were evicted. Lowering the limit here does not change
    /// the retention applied by future [`publish`](Self::publish)
    /// calls.
    pub fn evict_to(&mut self, keep: usize) -> usize {
        let evicted = std::cell::Cell::new(0);
        self.shared.update(|s| evicted.set(s.evict_to(keep)));
        // Both applications evict the same suffix (the sides converge
        // after every update), so the last write is the answer.
        evicted.get()
    }

    /// A new read handle onto this writer's catalog.
    pub fn reader(&self) -> SnapshotCatalog {
        SnapshotCatalog {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Create a catalog that keeps the last `keep` published epochs
/// (`keep == 0` retains nothing — legal, mostly useful in tests).
/// Returns the unique writer and a cloneable read handle.
pub fn catalog(keep: usize) -> (CatalogWriter, SnapshotCatalog) {
    let shared = Arc::new(Shared::new());
    let writer = CatalogWriter {
        shared: Arc::clone(&shared),
        keep,
    };
    let reader = SnapshotCatalog { shared };
    (writer, reader)
}

#[cfg(test)]
#[cfg(not(feature = "loom"))]
mod tests {
    use super::*;
    use cocosketch::FlowTable;
    use traffic::{FiveTuple, KeySpec};

    fn epoch(id: u64, rows: u32) -> Arc<Epoch> {
        let full = KeySpec::FIVE_TUPLE;
        let table = FlowTable::new(
            full,
            (0..rows)
                .map(|i| {
                    (
                        full.project(&FiveTuple::new(i, i * 7, 80, 443, 6)),
                        u64::from(i) + 1,
                    )
                })
                .collect(),
        );
        Arc::new(Epoch {
            id,
            packets: u64::from(rows),
            weight: u64::from(rows) * 2,
            tables: vec![table],
        })
    }

    #[test]
    fn publish_then_read() {
        let (mut w, r) = catalog(8);
        assert!(r.is_empty());
        assert!(r.latest().is_none());
        assert_eq!(w.publish(epoch(0, 10)), 0);
        assert_eq!(w.publish(epoch(1, 20)), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0).unwrap().packets, 10);
        assert_eq!(r.latest().unwrap().id, 1);
        assert_eq!(r.ids(), Some((0, 1)));
        assert!(r.get(2).is_none());
    }

    #[test]
    fn retention_evicts_oldest() {
        let (mut w, r) = catalog(2);
        for id in 0..5 {
            w.publish(epoch(id, 4));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.ids(), Some((3, 4)));
        assert!(r.get(2).is_none(), "evicted ids must not resolve");
        assert_eq!(r.range(0, 10).len(), 2);
        assert_eq!(w.evict_to(1), 1);
        assert_eq!(r.ids(), Some((4, 4)));
        assert_eq!(w.evict_to(0), 1);
        assert!(r.is_empty());
        // Publishing continues the dense sequence after a full evict.
        assert_eq!(w.publish(epoch(5, 1)), 5);
        assert_eq!(r.ids(), Some((5, 5)));
    }

    #[test]
    fn handle_outlives_eviction() {
        let (mut w, r) = catalog(1);
        w.publish(epoch(0, 50));
        let held = r.get(0).unwrap();
        let before = cocosketch::epoch::encode(&held);
        w.publish(epoch(1, 5)); // evicts 0 from the catalog
        assert!(r.get(0).is_none());
        assert_eq!(cocosketch::epoch::encode(&held), before);
    }

    #[test]
    fn dense_id_violation_panics() {
        let (mut w, _r) = catalog(4);
        w.publish(epoch(0, 1));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.publish(epoch(7, 1));
        }));
        assert!(res.is_err(), "gap in published ids must panic");
    }

    #[test]
    fn threaded_readers_during_publish() {
        let (mut w, r) = catalog(3);
        w.publish(epoch(0, 16));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    for _ in 0..2000 {
                        if let Some(e) = r.latest() {
                            // Epochs are internally consistent however
                            // the publish interleaves.
                            assert_eq!(e.packets, e.weight / 2);
                            seen = seen.max(e.id);
                        }
                        if let Some((lo, hi)) = r.ids() {
                            assert!(lo <= hi);
                        }
                    }
                    seen
                })
            })
            .collect();
        for id in 1..50 {
            w.publish(epoch(id, 16));
        }
        for h in readers {
            assert!(h.join().unwrap() <= 49);
        }
        assert_eq!(r.ids(), Some((47, 49)));
    }
}

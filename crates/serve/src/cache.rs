//! Lock-free, insert-only cache of compiled projectors.
//!
//! Every partial-key query needs the gather/mask [`Projector`] from
//! the table's full key to the queried spec. Compilation is cheap but
//! not free, and a resident service answers the same handful of specs
//! millions of times across readers and epochs — so compiled plans
//! are interned once in a fixed-capacity, open-addressed table and
//! thereafter read with a single `Acquire` load per probe.
//!
//! Slots move `EMPTY → BUSY → FULL`, and `FULL` is final: entries are
//! never replaced or removed, which is what makes lock-free reads
//! trivially sound (a `FULL` slot's payload was `Release`-published
//! and never changes again). Losing an insert race or running out of
//! slots degrades to compiling the projector directly — correctness
//! never depends on the cache, only the per-query constant factor
//! does. Duplicate entries for one key (two racing inserters landing
//! in different slots) are possible and benign: compilation is
//! deterministic, so both hold bit-identical plans.

use crate::sync::{AtomicU64, AtomicUsize, Ordering, UnsafeCell};
use traffic::{KeySpec, Projector};

/// Slot states. `FULL` is terminal.
const EMPTY: usize = 0;
const BUSY: usize = 1;
const FULL: usize = 2;

/// Number of slots. Two specs (full and partial) have well under 2^16
/// practically distinct values each, and a deployment queries a few
/// dozen at most; 512 slots keeps the table one page and collisions
/// negligible.
const SLOTS: usize = 512;

/// Probe limit before giving up and compiling directly.
const PROBE_LIMIT: usize = 16;

/// One interned projector, keyed by the (full, spec) pair it maps.
#[derive(Clone, Copy, Debug)]
struct Entry {
    full: KeySpec,
    spec: KeySpec,
    projector: Projector,
}

#[derive(Debug)]
struct Slot {
    state: AtomicUsize,
    entry: UnsafeCell<Option<Entry>>,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: AtomicUsize::new(EMPTY),
            entry: UnsafeCell::new(None),
        }
    }
}

/// Running hit/miss accounting, readable while the cache is live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an interned entry.
    pub hits: u64,
    /// Lookups that compiled and interned a new entry.
    pub misses: u64,
    /// Lookups that compiled directly (probe limit hit, or an insert
    /// race lost) without interning.
    pub bypasses: u64,
}

/// The shared projector cache. See the module docs for the protocol.
#[derive(Debug)]
pub struct ProjectorCache {
    slots: Vec<Slot>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
}

// SAFETY: the `UnsafeCell` payload of a slot is written exactly once,
// between a successful `EMPTY → BUSY` compare-exchange (which elects a
// unique writer for that slot) and the `Release` store of `FULL`;
// readers dereference it only after an `Acquire` load observes `FULL`,
// so every read happens-after the unique write and no two accesses
// conflict. `FULL` is terminal — the payload is immutable from then
// on. The model tests in `tests/model.rs` check the election and the
// publish edge under the loom shim.
#[allow(unsafe_code)] // audited: see the SAFETY comment above
unsafe impl Sync for ProjectorCache {}

impl ProjectorCache {
    /// An empty cache with the default slot count.
    pub fn new() -> Self {
        Self {
            slots: (0..SLOTS).map(|_| Slot::new()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// Deterministic slot index for a (full, spec) pair.
    fn index(full: &KeySpec, spec: &KeySpec) -> usize {
        let pack = |s: &KeySpec| {
            [
                s.src_ip_bits,
                s.dst_ip_bits,
                u8::from(s.src_port) | u8::from(s.dst_port) << 1 | u8::from(s.proto) << 2,
            ]
        };
        let mut bytes = [0u8; 6];
        bytes[..3].copy_from_slice(&pack(full)); // LINT: bounded(constant range into [u8; 6])
        bytes[3..].copy_from_slice(&pack(spec)); // LINT: bounded(constant range into [u8; 6])
        hashkit::bob_hash(&bytes, 0x5EEDCAFE) as usize & (SLOTS - 1)
    }

    /// The compiled projector from `full` to `spec`, interned on first
    /// use. Exactly [`KeySpec::projector`]'s result — the cache can
    /// only change *when* compilation happens, never its output.
    ///
    /// # Panics
    /// Panics when `spec` is not a partial key of `full`, matching
    /// [`KeySpec::projector`]'s contract.
    // LINT: hot
    pub fn projector(&self, full: &KeySpec, spec: &KeySpec) -> Projector {
        let mut idx = Self::index(full, spec);
        for _ in 0..PROBE_LIMIT {
            let slot = &self.slots[idx]; // LINT: bounded(idx is masked by SLOTS - 1 at every step)
            match slot.state.load(Ordering::Acquire) {
                FULL => {
                    let found = slot.entry.with(|entry| {
                        // SAFETY: FULL was observed with Acquire, so
                        // the unique writer's payload store (made
                        // before its Release of FULL) is visible, and
                        // the payload never changes again.
                        #[allow(unsafe_code)] // audited: publish edge above
                        let entry = unsafe { &*entry };
                        entry
                            .filter(|e| e.full == *full && e.spec == *spec)
                            .map(|e| e.projector)
                    });
                    if let Some(projector) = found {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return projector;
                    }
                }
                // Not a match guard on purpose: the compare-exchange
                // has a side effect (it *is* the writer election), and
                // burying it in a guard would hide that.
                #[allow(clippy::collapsible_match)]
                EMPTY => {
                    if slot
                        .state
                        .compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        // We own this slot now: compile, publish.
                        let projector = spec.projector(full);
                        slot.entry.with_mut(|entry| {
                            // SAFETY: the compare-exchange elected us
                            // the slot's unique writer; readers wait
                            // for FULL before touching the payload.
                            #[allow(unsafe_code)] // audited: election above
                            let entry = unsafe { &mut *entry };
                            *entry = Some(Entry {
                                full: *full,
                                spec: *spec,
                                projector,
                            });
                        });
                        slot.state.store(FULL, Ordering::Release);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return projector;
                    }
                    // Lost the election; the winner may be interning a
                    // different key. Fall through to the next slot.
                }
                _ => {
                    // BUSY: a writer is mid-insert. Probing on (rather
                    // than spinning) keeps the reader wait-free here.
                }
            }
            idx = (idx + 1) & (SLOTS - 1);
        }
        self.bypasses.fetch_add(1, Ordering::Relaxed);
        spec.projector(full)
    }

    /// Current counters (each totalled independently, so a snapshot
    /// taken during concurrent lookups may be mid-update by ±1).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }
}

impl Default for ProjectorCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[cfg(not(feature = "loom"))]
mod tests {
    use super::*;
    use traffic::{FiveTuple, KeySpec};

    #[test]
    fn caches_and_reuses() {
        let cache = ProjectorCache::new();
        let full = KeySpec::FIVE_TUPLE;
        for _ in 0..10 {
            for spec in KeySpec::PAPER_SIX {
                let direct = spec.projector(&full);
                let cached = cache.projector(&full, &spec);
                // Identical plans: same output on a probe key.
                let key = full.project(&FiveTuple::new(0xA1B2C3D4, 0x01020304, 53, 443, 17));
                assert_eq!(cached.project(&key), direct.project(&key));
                assert_eq!(cached.out_len(), direct.out_len());
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6, "each spec compiled exactly once");
        assert_eq!(stats.hits, 54);
        assert_eq!(stats.bypasses, 0);
    }

    #[test]
    fn distinguishes_full_keys() {
        let cache = ProjectorCache::new();
        let spec = KeySpec::SRC_IP;
        let a = cache.projector(&KeySpec::FIVE_TUPLE, &spec);
        let b = cache.projector(&KeySpec::SRC_DST, &spec);
        // Different full keys compile different plans (widths differ).
        assert_eq!(a.full_len(), KeySpec::FIVE_TUPLE.encoded_len());
        assert_eq!(b.full_len(), KeySpec::SRC_DST.encoded_len());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = std::sync::Arc::new(ProjectorCache::new());
        let full = KeySpec::FIVE_TUPLE;
        let key = full.project(&FiveTuple::new(7, 8, 9, 10, 6));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut outs = Vec::new();
                    for _ in 0..500 {
                        for spec in KeySpec::PAPER_SIX {
                            outs.push(cache.projector(&full, &spec).project(&key));
                        }
                    }
                    outs
                })
            })
            .collect();
        let first = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .reduce(|a, b| {
                assert_eq!(a, b, "all threads see identical projections");
                a
            })
            .unwrap();
        assert_eq!(first.len(), 3000);
        let stats = cache.stats();
        // Everything after warm-up hits; racing first inserts may
        // bypass or duplicate, but never miscount the total.
        assert_eq!(stats.hits + stats.misses + stats.bypasses, 12000);
        assert!(stats.misses >= 6);
    }
}

//! Length-prefixed wire protocol over Unix or TCP sockets, std-only.
//!
//! Answers ride the existing `CEP1` epoch envelope
//! ([`cocosketch::epoch::encode`]): a query response *is* a (derived)
//! epoch whose tables carry the answer entries keyed by the queried
//! spec, so clients reuse the same total decoder that reads epoch
//! files off disk. Key specs travel in the `CFT1` snapshot encoding
//! (`src_bits u8 | dst_bits u8 | flags u8`).
//!
//! # Framing
//!
//! Every message, both directions, is `len u32 LE | body`, `len =
//! body.len() <=` [`MAX_FRAME`]. Request bodies:
//!
//! ```text
//! op 1  partial   sel u8 (0 latest | 1 id) | id u64 | spec 3B
//! op 2  multi     sel u8 | id u64 | threshold u64 | n u16 | spec 3B x n
//! op 3  window    first u64 | last u64 | spec 3B
//! op 4  info
//! op 5  shutdown
//! ```
//!
//! Response bodies are `status u8 | payload`:
//!
//! ```text
//! status 0  answer    CEP1 epoch (id/packets/weight from the answering
//!                     epoch; one table per queried spec, rows sorted)
//! status 1  error     utf-8 message
//! status 2  info      present u8 | oldest u64 | latest u64 |
//!                     epochs u64 | hits u64 | misses u64 | bypasses u64
//! status 3  bye       empty (shutdown acknowledgement)
//! ```
//!
//! The server answers requests sequentially per connection and
//! connections concurrently (one thread each — readers never lock, so
//! they scale with cores). A `shutdown` request stops the accept loop
//! and ends [`Server::run`] once in-flight connections finish; that
//! keeps CLI end-to-end tests hermetic.
//!
//! Accepted sockets carry read/write timeouts
//! ([`DEFAULT_IO_TIMEOUT`], 5 s; configurable via
//! [`Server::set_io_timeout`], `None` disables): a client that stalls
//! mid-frame — half a length prefix, a body that never arrives, a
//! response never drained — has its connection closed at the next
//! timed-out `read`/`write` instead of parking a server thread
//! forever. Well-behaved clients are unaffected; the per-connection
//! thread just returns and the socket drops.

use crate::service::{Select, Service, ServiceInfo};
use cocosketch::{epoch, Epoch, FlowTable};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use traffic::KeySpec;

/// Upper bound on one frame's body, both directions. Large enough for
/// multi-million-row answers, small enough that a garbage length
/// prefix cannot trigger a huge allocation.
pub const MAX_FRAME: usize = 64 << 20;

const OP_PARTIAL: u8 = 1;
const OP_MULTI: u8 = 2;
const OP_WINDOW: u8 = 3;
const OP_INFO: u8 = 4;
const OP_SHUTDOWN: u8 = 5;

const ST_ANSWER: u8 = 0;
const ST_ERROR: u8 = 1;
const ST_INFO: u8 = 2;
const ST_BYE: u8 = 3;

/// A decoded request, as the server sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One partial-key query.
    Partial(Select, KeySpec),
    /// A spec list (hierarchy) with a size threshold (0 = unfiltered).
    Multi(Select, Vec<KeySpec>, u64),
    /// One spec summed over the retained epochs in `first..=last`.
    Window(u64, u64, KeySpec),
    /// Catalog/cache counters.
    Info,
    /// Stop the server once in-flight connections finish.
    Shutdown,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Byte-slice cursor; every read is checked, malformed input is `Err`,
/// never a panic.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.data.len() {
            return Err(invalid("truncated request"));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0]) // LINT: bounded(take(1) returned a 1-byte slice)
    }

    fn u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]])) // LINT: bounded(take(2) returned a 2-byte slice)
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn spec(&mut self) -> io::Result<KeySpec> {
        let b = self.take(3)?;
        let spec = KeySpec {
            src_ip_bits: b[0],       // LINT: bounded(take(3) returned a 3-byte slice)
            dst_ip_bits: b[1],       // LINT: bounded(take(3) returned a 3-byte slice)
            src_port: b[2] & 1 != 0, // LINT: bounded(take(3) returned a 3-byte slice)
            dst_port: b[2] & 2 != 0, // LINT: bounded(take(3) returned a 3-byte slice)
            proto: b[2] & 4 != 0,    // LINT: bounded(take(3) returned a 3-byte slice)
        };
        if spec.src_ip_bits > 32 || spec.dst_ip_bits > 32 {
            return Err(invalid("invalid key spec"));
        }
        Ok(spec)
    }

    fn done(&self) -> io::Result<()> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(invalid("trailing bytes in request"))
        }
    }
}

fn push_spec(out: &mut Vec<u8>, spec: &KeySpec) {
    out.push(spec.src_ip_bits);
    out.push(spec.dst_ip_bits);
    out.push(u8::from(spec.src_port) | u8::from(spec.dst_port) << 1 | u8::from(spec.proto) << 2);
}

fn push_select(out: &mut Vec<u8>, sel: Select) {
    match sel {
        Select::Latest => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        Select::Id(id) => {
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
}

fn take_select(cur: &mut Cursor<'_>) -> io::Result<Select> {
    let tag = cur.u8()?;
    let id = cur.u64()?;
    match tag {
        0 => Ok(Select::Latest),
        1 => Ok(Select::Id(id)),
        _ => Err(invalid("bad epoch selector")),
    }
}

impl Request {
    /// Encode this request's frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Partial(sel, spec) => {
                out.push(OP_PARTIAL);
                push_select(&mut out, *sel);
                push_spec(&mut out, spec);
            }
            Request::Multi(sel, specs, threshold) => {
                out.push(OP_MULTI);
                push_select(&mut out, *sel);
                out.extend_from_slice(&threshold.to_le_bytes());
                out.extend_from_slice(&(specs.len() as u16).to_le_bytes());
                for spec in specs {
                    push_spec(&mut out, spec);
                }
            }
            Request::Window(first, last, spec) => {
                out.push(OP_WINDOW);
                out.extend_from_slice(&first.to_le_bytes());
                out.extend_from_slice(&last.to_le_bytes());
                push_spec(&mut out, spec);
            }
            Request::Info => out.push(OP_INFO),
            Request::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Decode a frame body. Total: garbage is `Err`, never a panic.
    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut cur = Cursor { data: body };
        let req = match cur.u8()? {
            OP_PARTIAL => Request::Partial(take_select(&mut cur)?, cur.spec()?),
            OP_MULTI => {
                let sel = take_select(&mut cur)?;
                let threshold = cur.u64()?;
                let n = usize::from(cur.u16()?);
                let mut specs = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    specs.push(cur.spec()?);
                }
                Request::Multi(sel, specs, threshold)
            }
            OP_WINDOW => Request::Window(cur.u64()?, cur.u64()?, cur.spec()?),
            OP_INFO => Request::Info,
            OP_SHUTDOWN => Request::Shutdown,
            _ => return Err(invalid("unknown request op")),
        };
        cur.done()?;
        Ok(req)
    }
}

/// A decoded response, as the client sees it.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The answer epoch: one table per queried spec, rows sorted.
    Answer(Epoch),
    /// The request failed; the message says why.
    Error(String),
    /// Catalog occupancy and cache counters.
    Info(ServiceInfo),
    /// Shutdown acknowledged.
    Bye,
}

impl Response {
    /// Encode this response's frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Answer(e) => {
                let mut out = vec![ST_ANSWER];
                out.extend_from_slice(&epoch::encode(e));
                out
            }
            Response::Error(msg) => {
                let mut out = vec![ST_ERROR];
                out.extend_from_slice(msg.as_bytes());
                out
            }
            Response::Info(info) => {
                let mut out = vec![ST_INFO];
                let (present, oldest, latest) = match info.ids {
                    Some((a, b)) => (1u8, a, b),
                    None => (0u8, 0, 0),
                };
                out.push(present);
                for v in [
                    oldest,
                    latest,
                    info.epochs as u64,
                    info.cache.hits,
                    info.cache.misses,
                    info.cache.bypasses,
                    info.cold_errors,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Response::Bye => vec![ST_BYE],
        }
    }

    /// Decode a frame body. Total: garbage is `Err`, never a panic.
    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let mut cur = Cursor { data: body };
        match cur.u8()? {
            ST_ANSWER => Ok(Response::Answer(epoch::decode(cur.data)?)),
            ST_ERROR => Ok(Response::Error(
                String::from_utf8_lossy(cur.data).into_owned(),
            )),
            ST_INFO => {
                let present = cur.u8()? != 0;
                let (oldest, latest) = (cur.u64()?, cur.u64()?);
                let info = ServiceInfo {
                    ids: present.then_some((oldest, latest)),
                    epochs: usize::try_from(cur.u64()?).map_err(|_| invalid("epoch count"))?,
                    cache: crate::cache::CacheStats {
                        hits: cur.u64()?,
                        misses: cur.u64()?,
                        bypasses: cur.u64()?,
                    },
                    cold_errors: cur.u64()?,
                };
                cur.done()?;
                Ok(Response::Info(info))
            }
            ST_BYE => Ok(Response::Bye),
            _ => Err(invalid("unknown response status")),
        }
    }
}

/// Write one `len | body` frame.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(invalid("frame too large"));
    }
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one `len | body` frame. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests).
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(invalid("frame too large"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Evaluate one request against the service. Answer construction is
/// pure reuse: sorted entries become [`FlowTable`]s keyed by their
/// spec inside a derived [`Epoch`].
pub fn respond(service: &Service, request: &Request) -> Response {
    let answer_epoch = |id: u64, packets: u64, weight: u64, tables: Vec<FlowTable>| -> Response {
        Response::Answer(Epoch {
            id,
            packets,
            weight,
            tables,
        })
    };
    match request {
        Request::Partial(sel, spec) => match service.partial(*sel, spec) {
            Some(ans) => answer_epoch(
                ans.epoch,
                ans.packets,
                ans.weight,
                vec![FlowTable::new(ans.spec, ans.entries)],
            ),
            None => Response::Error("no such epoch, or spec not partial of the table".into()),
        },
        Request::Multi(sel, specs, threshold) => match service.multi(*sel, specs, *threshold) {
            Some(answers) => {
                let (id, packets, weight) = answers
                    .first()
                    .map(|a| (a.epoch, a.packets, a.weight))
                    .unwrap_or((0, 0, 0));
                answer_epoch(
                    id,
                    packets,
                    weight,
                    answers
                        .into_iter()
                        .map(|a| FlowTable::new(a.spec, a.entries))
                        .collect(),
                )
            }
            None => Response::Error("no such epoch, or a spec not partial of the table".into()),
        },
        Request::Window(first, last, spec) => match service.window(*first, *last, spec) {
            Some((ans, _contributed)) => answer_epoch(
                ans.epoch,
                ans.packets,
                ans.weight,
                vec![FlowTable::new(ans.spec, ans.entries)],
            ),
            None => Response::Error("no retained epoch in range, or spec not partial".into()),
        },
        Request::Info => Response::Info(service.info()),
        Request::Shutdown => Response::Bye,
    }
}

/// One bound listening socket, Unix or TCP.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Connection stream counterpart to [`Listener`].
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Default per-connection I/O timeout (see
/// [`Server::set_io_timeout`]): generous for a LAN round trip, tight
/// enough that a peer stalling mid-frame cannot hold a worker thread —
/// and the shutdown join waiting on it — hostage indefinitely.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The wire server: bind, then [`run`](Self::run) until a client sends
/// `shutdown`.
#[derive(Debug)]
pub struct Server {
    listener: Listener,
    addr: String,
    io_timeout: Option<Duration>,
}

impl Server {
    /// Bind `addr`: `unix:PATH`, `tcp:HOST:PORT`, or a bare
    /// `HOST:PORT` (TCP). `PORT` may be 0 to pick a free port — the
    /// chosen one is reflected by [`addr`](Self::addr).
    pub fn bind(addr: &str) -> io::Result<Server> {
        if let Some(path) = addr.strip_prefix("unix:") {
            // A stale socket file from a previous run would fail the
            // bind; removing it is the canonical Unix-socket dance.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            Ok(Server {
                listener: Listener::Unix(listener),
                addr: format!("unix:{path}"),
                io_timeout: Some(DEFAULT_IO_TIMEOUT),
            })
        } else {
            let hostport = addr.strip_prefix("tcp:").unwrap_or(addr);
            let listener = TcpListener::bind(hostport)?;
            let local = listener.local_addr()?;
            Ok(Server {
                listener: Listener::Tcp(listener),
                addr: format!("tcp:{local}"),
                io_timeout: Some(DEFAULT_IO_TIMEOUT),
            })
        }
    }

    /// Override the per-connection read/write timeout applied to every
    /// accepted stream (default [`DEFAULT_IO_TIMEOUT`]; `None` waits
    /// forever, the pre-timeout behaviour). A peer that stalls past
    /// the deadline mid-frame gets its connection closed; the server
    /// and every other connection keep running.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        self.io_timeout = timeout;
    }

    /// The bound address, in the same `unix:`/`tcp:` syntax
    /// [`bind`](Self::bind) takes.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Serve until some client sends `shutdown`. Each connection gets
    /// a thread; per-request work is lock-free reads on `service`, so
    /// concurrent connections scale with cores. Returns the number of
    /// connections served.
    pub fn run(self, service: Arc<Service>) -> io::Result<usize> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let mut served = 0usize;
        while !stop.load(Ordering::Acquire) {
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false)?;
                        s.set_read_timeout(self.io_timeout)?;
                        s.set_write_timeout(self.io_timeout)?;
                        Some(Stream::Tcp(s))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false)?;
                        s.set_read_timeout(self.io_timeout)?;
                        s.set_write_timeout(self.io_timeout)?;
                        Some(Stream::Unix(s))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(stream) => {
                    served += 1;
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&stop);
                    workers.push(std::thread::spawn(move || {
                        // Connection errors (peer reset mid-frame, bad
                        // framing) end that connection only.
                        let _ = serve_connection(stream, &service, &stop);
                    }));
                }
                // Poll-accept: cheap (one syscall per 500µs while
                // idle) and keeps shutdown prompt without signals.
                None => std::thread::sleep(Duration::from_micros(500)),
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(path) = self.addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
        Ok(served)
    }
}

fn serve_connection(mut stream: Stream, service: &Service, stop: &AtomicBool) -> io::Result<()> {
    while let Some(body) = read_frame(&mut stream)? {
        let response = match Request::decode(&body) {
            Ok(request) => {
                let response = respond(service, &request);
                if request == Request::Shutdown {
                    stop.store(true, Ordering::Release);
                }
                response
            }
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut stream, &response.encode())?;
        if stop.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(())
}

/// A blocking client over any frame-capable stream.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

/// Connect to a server address in [`Server::bind`] syntax.
pub fn connect(addr: &str) -> io::Result<Client<Box<dyn ReadWrite>>> {
    if let Some(path) = addr.strip_prefix("unix:") {
        Ok(Client::new(Box::new(UnixStream::connect(path)?)))
    } else {
        let hostport = addr.strip_prefix("tcp:").unwrap_or(addr);
        Ok(Client::new(Box::new(TcpStream::connect(hostport)?)))
    }
}

/// [`Read`] + [`Write`], nameable for trait objects.
pub trait ReadWrite: Read + Write + Send {}
impl<T: Read + Write + Send> ReadWrite for T {}

impl<S: Read + Write> Client<S> {
    /// Wrap an already-connected stream.
    pub fn new(stream: S) -> Self {
        Self { stream }
    }

    /// Send one request and read its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let body =
            read_frame(&mut self.stream)?.ok_or_else(|| invalid("server closed the connection"))?;
        Response::decode(&body)
    }

    /// Partial-key query; the answer epoch's single table holds the
    /// sorted entries.
    pub fn partial(&mut self, sel: Select, spec: &KeySpec) -> io::Result<Epoch> {
        match self.call(&Request::Partial(sel, *spec))? {
            Response::Answer(e) => Ok(e),
            Response::Error(msg) => Err(invalid(&msg)),
            _ => Err(invalid("unexpected response")),
        }
    }

    /// Spec-list query (one answer table per spec, `specs` order).
    pub fn multi(&mut self, sel: Select, specs: &[KeySpec], threshold: u64) -> io::Result<Epoch> {
        match self.call(&Request::Multi(sel, specs.to_vec(), threshold))? {
            Response::Answer(e) => Ok(e),
            Response::Error(msg) => Err(invalid(&msg)),
            _ => Err(invalid("unexpected response")),
        }
    }

    /// Windowed rollup over `first..=last`.
    pub fn window(&mut self, first: u64, last: u64, spec: &KeySpec) -> io::Result<Epoch> {
        match self.call(&Request::Window(first, last, *spec))? {
            Response::Answer(e) => Ok(e),
            Response::Error(msg) => Err(invalid(&msg)),
            _ => Err(invalid("unexpected response")),
        }
    }

    /// Catalog/cache counters.
    pub fn info(&mut self) -> io::Result<ServiceInfo> {
        match self.call(&Request::Info)? {
            Response::Info(info) => Ok(info),
            Response::Error(msg) => Err(invalid(&msg)),
            _ => Err(invalid("unexpected response")),
        }
    }

    /// Ask the server to stop (acknowledged before it does).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error(msg) => Err(invalid(&msg)),
            _ => Err(invalid("unexpected response")),
        }
    }
}

#[cfg(test)]
#[cfg(not(feature = "loom"))]
mod tests {
    use super::*;
    use crate::service::service;
    use traffic::FiveTuple;

    fn publish_demo(publisher: &mut crate::service::Publisher, id: u64, rows: u32) -> Epoch {
        let full = KeySpec::FIVE_TUPLE;
        let table = FlowTable::new(
            full,
            (0..rows)
                .map(|i| {
                    (
                        full.project(&FiveTuple::new(i % 31, i % 17, 443, 80, 6)),
                        u64::from(i) + 1,
                    )
                })
                .collect(),
        );
        let e = Epoch {
            id,
            packets: u64::from(rows),
            weight: (0..u64::from(rows)).map(|i| i + 1).sum(),
            tables: vec![table],
        };
        publisher.publish_epoch(e.clone());
        e
    }

    #[test]
    fn request_roundtrip() {
        let cases = [
            Request::Partial(Select::Latest, KeySpec::SRC_IP),
            Request::Partial(Select::Id(42), KeySpec::FIVE_TUPLE),
            Request::Multi(Select::Id(7), vec![KeySpec::SRC_DST, KeySpec::EMPTY], 1000),
            Request::Window(3, 9, KeySpec::DST_IP),
            Request::Info,
            Request::Shutdown,
        ];
        for req in cases {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn request_decode_is_total() {
        use hashkit::XorShift64Star;
        let mut rng = XorShift64Star::new(0x51E7);
        for len in 0..120usize {
            let body: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            let _ = Request::decode(&body); // Ok or Err, never panic
        }
        // Truncations of every valid request must Err or decode.
        let full = Request::Multi(Select::Latest, vec![KeySpec::SRC_IP; 3], 5).encode();
        for cut in 0..full.len() {
            let _ = Request::decode(&full[..cut]);
        }
    }

    #[test]
    fn response_roundtrip() {
        let info = ServiceInfo {
            ids: Some((3, 9)),
            epochs: 7,
            cache: crate::cache::CacheStats {
                hits: 100,
                misses: 6,
                bypasses: 1,
            },
            cold_errors: 2,
        };
        let cases = [
            Response::Error("nope".into()),
            Response::Info(info),
            Response::Info(ServiceInfo::default()),
            Response::Bye,
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
        let e = Epoch {
            id: 5,
            packets: 10,
            weight: 20,
            tables: vec![FlowTable::new(KeySpec::SRC_IP, vec![])],
        };
        assert_eq!(
            Response::decode(&Response::Answer(e.clone()).encode()).unwrap(),
            Response::Answer(e)
        );
    }

    #[test]
    fn end_to_end_over_tcp() {
        let (mut publisher, svc) = service(4);
        let sealed = publish_demo(&mut publisher, 0, 300);
        publish_demo(&mut publisher, 1, 200);

        let server = Server::bind("tcp:127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let join = std::thread::spawn(move || server.run(svc).unwrap());

        let mut client = connect(&addr).unwrap();
        // Served answers are bit-identical to direct query_all_entries.
        for spec in [KeySpec::SRC_IP, KeySpec::SRC_DST, KeySpec::FIVE_TUPLE] {
            let answer = client.partial(Select::Id(0), &spec).unwrap();
            let direct = sealed.primary().query_all_entries(&[spec]);
            assert_eq!(answer.primary().rows(), direct[0].as_slice());
            assert_eq!(answer.id, 0);
            assert_eq!(answer.packets, sealed.packets);
        }
        // Multi: one table per spec, same order.
        let specs = [KeySpec::SRC_DST, KeySpec::SRC_IP];
        let answer = client.multi(Select::Latest, &specs, 0).unwrap();
        assert_eq!(answer.tables.len(), 2);
        assert_eq!(answer.id, 1);
        // Window over both epochs.
        let win = client.window(0, 1, &KeySpec::SRC_IP).unwrap();
        assert_eq!(win.packets, 500);
        // Info.
        let info = client.info().unwrap();
        assert_eq!(info.ids, Some((0, 1)));
        // Errors come back as errors, not hangups.
        assert!(client.partial(Select::Id(99), &KeySpec::SRC_IP).is_err());
        let still = client.info().unwrap();
        assert_eq!(still.epochs, 2);
        // A second concurrent client works while the first is open.
        let mut c2 = connect(&addr).unwrap();
        assert_eq!(c2.info().unwrap().ids, Some((0, 1)));
        drop(c2);
        client.shutdown().unwrap();
        let served = join.join().unwrap();
        assert!(served >= 2);
    }

    #[test]
    fn end_to_end_over_unix_socket() {
        let path = std::env::temp_dir().join(format!("serve-wire-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let (mut publisher, svc) = service(2);
        publish_demo(&mut publisher, 0, 64);

        let server = Server::bind(&addr).unwrap();
        let bound = server.addr().to_string();
        assert_eq!(bound, addr);
        let join = std::thread::spawn(move || server.run(svc).unwrap());

        let mut client = connect(&addr).unwrap();
        let answer = client.partial(Select::Latest, &KeySpec::DST_IP).unwrap();
        assert_eq!(answer.id, 0);
        client.shutdown().unwrap();
        join.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up");
    }

    #[test]
    fn oversized_and_garbage_frames_fail_cleanly() {
        let (_publisher, svc) = service(1);
        let server = Server::bind("tcp:127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let join = std::thread::spawn(move || server.run(svc).unwrap());

        // Garbage body: server responds with an error frame.
        let hostport = addr.strip_prefix("tcp:").unwrap().to_string();
        let mut raw = TcpStream::connect(&hostport).unwrap();
        write_frame(&mut raw, &[0xFF, 0xEE]).unwrap();
        let resp = Response::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        drop(raw);

        // Oversized length prefix: connection dropped, server lives.
        let mut raw = TcpStream::connect(&hostport).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(raw.read(&mut buf).unwrap_or(0), 0);
        drop(raw);

        let mut client = connect(&addr).unwrap();
        client.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn half_written_frame_times_out_and_closes_cleanly() {
        let (_publisher, svc) = service(1);
        let mut server = Server::bind("tcp:127.0.0.1:0").unwrap();
        server.set_io_timeout(Some(Duration::from_millis(50)));
        let addr = server.addr().to_string();
        let join = std::thread::spawn(move || server.run(svc).unwrap());

        // A stalling client: the length prefix promises 8 body bytes,
        // only 3 ever arrive. The server's read timeout must end the
        // connection instead of parking the worker thread forever.
        let hostport = addr.strip_prefix("tcp:").unwrap().to_string();
        let mut stalled = TcpStream::connect(&hostport).unwrap();
        stalled.write_all(&8u32.to_le_bytes()).unwrap();
        stalled.write_all(&[1, 2, 3]).unwrap();
        stalled.flush().unwrap();
        stalled
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        match stalled.read(&mut buf) {
            Ok(0) => {}                                                // clean close
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {} // also a close
            Ok(n) => panic!("server answered a half-written frame with {n} bytes"),
            Err(e) => panic!("server did not close the stalled connection: {e}"),
        }
        drop(stalled);

        // The timeout ended that connection only: the server still
        // answers well-behaved clients.
        let mut client = connect(&addr).unwrap();
        assert_eq!(client.info().unwrap().epochs, 0);
        client.shutdown().unwrap();
        join.join().unwrap();
    }
}

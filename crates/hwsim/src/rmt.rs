//! RMT (reconfigurable match-action) pipeline model.
//!
//! Models a Tofino-class switch: a fixed number of unidirectional
//! stages, each with its own stateful-ALU and memory budget, plus
//! pooled hash-distribution units and gateways. Two operations:
//!
//! - [`ResourceUsage::of`] charges a [`Program`] for the five resources
//!   Table 2 reports, using structural rules (documented below) that
//!   are *tested against* the paper's reported fractions;
//! - [`place`] lays a program's arrays out into stages, rejecting
//!   cyclic dataflow (§3.3) and over-budget stages. [`fit_count`]
//!   repeats placement to find how many instances of a sketch a switch
//!   can host — the "at most four single-key sketches" result.

use crate::program::Program;

/// Bits of hash output one hash-distribution unit supplies.
const HASH_UNIT_BITS: u32 = 24;
/// Bytes of one SRAM block.
const SRAM_BLOCK_BYTES: usize = 16 * 1024;

/// Switch dimensions. Defaults model a Tofino-class device and are
/// chosen so that the §7.1 Count-Min configuration reproduces Table 2:
/// 12 stages; 6 hash-distribution units, 4 stateful ALUs, 16 gateways,
/// 80 SRAM blocks and 48 Map RAM blocks per stage.
#[derive(Debug, Clone, Copy)]
pub struct RmtConfig {
    /// Match-action stages in the pipeline.
    pub stages: usize,
    /// Hash-distribution units per stage (pooled across the pipeline).
    pub hash_dist_per_stage: usize,
    /// Stateful ALUs per stage (a hard per-stage constraint).
    pub salus_per_stage: usize,
    /// Gateways per stage (pooled).
    pub gateways_per_stage: usize,
    /// SRAM blocks per stage.
    pub sram_per_stage: usize,
    /// Map RAM blocks per stage.
    pub map_ram_per_stage: usize,
}

impl Default for RmtConfig {
    fn default() -> Self {
        Self {
            stages: 12,
            hash_dist_per_stage: 6,
            salus_per_stage: 4,
            gateways_per_stage: 16,
            sram_per_stage: 80,
            map_ram_per_stage: 48,
        }
    }
}

impl RmtConfig {
    /// Total hash-distribution units.
    pub fn hash_dist_total(&self) -> usize {
        self.stages * self.hash_dist_per_stage
    }
    /// Total stateful ALUs (48 on the default config — the "48 ALUs"
    /// of the paper's introduction).
    pub fn salus_total(&self) -> usize {
        self.stages * self.salus_per_stage
    }
    /// Total gateways.
    pub fn gateways_total(&self) -> usize {
        self.stages * self.gateways_per_stage
    }
    /// Total SRAM blocks.
    pub fn sram_total(&self) -> usize {
        self.stages * self.sram_per_stage
    }
    /// Total Map RAM blocks.
    pub fn map_ram_total(&self) -> usize {
        self.stages * self.map_ram_per_stage
    }
}

/// Absolute resource demand of one program instance.
///
/// Charging rules (each structural, calibrated against Table 2):
/// - **hash-distribution units**: every hash call needs
///   `ceil(key_bits / 24)` units (one unit distributes 24 hash bits);
///   a random-number source occupies one more unit;
/// - **stateful ALUs**: per-array costs plus fixed per-sketch logic,
///   as declared by the program;
/// - **gateways**: one per hash-distribution unit (to steer the
///   distributed chunks) plus the program's explicit branches;
/// - **SRAM blocks**: `ceil(bytes / 16KiB)` per array, plus one block
///   per stateful ALU for its spill/metadata bank;
/// - **Map RAM**: pairs the SRAM blocks (Map RAM is what turns plain
///   SRAM into counters/registers), so it equals the SRAM charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Hash-distribution units.
    pub hash_dist: usize,
    /// Stateful ALUs.
    pub salus: usize,
    /// Gateways.
    pub gateways: usize,
    /// SRAM blocks.
    pub sram_blocks: usize,
    /// Map RAM blocks.
    pub map_ram_blocks: usize,
}

impl ResourceUsage {
    /// Charge `program` under the rules above.
    pub fn of(program: &Program) -> Self {
        let units_per_hash = program.key_bits.div_ceil(HASH_UNIT_BITS) as usize;
        let hash_dist = program.hash_calls * units_per_hash + usize::from(program.needs_rng);
        let salus: usize =
            program.arrays.iter().map(|a| a.salus).sum::<usize>() + program.extra_salus;
        let gateways = hash_dist + program.extra_gateways;
        let sram_blocks: usize = program
            .arrays
            .iter()
            .map(|a| a.bytes.div_ceil(SRAM_BLOCK_BYTES))
            .sum::<usize>()
            + salus;
        Self {
            hash_dist,
            salus,
            gateways,
            sram_blocks,
            map_ram_blocks: sram_blocks,
        }
    }

    /// Usage as fractions of `config`'s totals, in the order
    /// (hash dist, SALU, gateway, Map RAM, SRAM) — Table 2's rows.
    pub fn fractions(&self, config: &RmtConfig) -> [f64; 5] {
        [
            self.hash_dist as f64 / config.hash_dist_total() as f64,
            self.salus as f64 / config.salus_total() as f64,
            self.gateways as f64 / config.gateways_total() as f64,
            self.map_ram_blocks as f64 / config.map_ram_total() as f64,
            self.sram_blocks as f64 / config.sram_total() as f64,
        ]
    }

    /// The scarcest resource (name, fraction) — Table 2's bold row.
    pub fn bottleneck(&self, config: &RmtConfig) -> (&'static str, f64) {
        const NAMES: [&str; 5] = [
            "Hash Distribution Unit",
            "Stateful ALU",
            "Gateway",
            "Map RAM",
            "SRAM",
        ];
        let fr = self.fractions(config);
        let (i, &f) = fr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        (NAMES[i], f)
    }
}

/// A successful stage assignment.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Stage index of each array, in program order.
    pub array_stage: Vec<usize>,
    /// Pipeline stages actually occupied.
    pub stages_used: usize,
}

/// Why a program cannot be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The per-packet dataflow is cyclic — no unidirectional layout
    /// exists (§3.3). Carries one offending cycle (array indices).
    CircularDependency(Vec<usize>),
    /// A resource pool is exhausted: (resource name, needed, available).
    InsufficientResources(&'static str, usize, usize),
    /// The dependency chains need more stages than the pipeline has.
    TooManyStages,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::CircularDependency(c) => {
                write!(f, "circular dependency among arrays {c:?}")
            }
            PlaceError::InsufficientResources(what, need, have) => {
                write!(f, "insufficient {what}: need {need}, have {have}")
            }
            PlaceError::TooManyStages => write!(f, "dependency chains exceed pipeline depth"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// Remaining capacity during (multi-instance) placement.
#[derive(Debug, Clone)]
struct Capacity {
    salus_left: Vec<usize>,
    sram_left: Vec<usize>,
    map_ram_left: Vec<usize>,
    hash_dist_left: usize,
    gateways_left: usize,
}

impl Capacity {
    fn full(config: &RmtConfig) -> Self {
        Self {
            salus_left: vec![config.salus_per_stage; config.stages],
            sram_left: vec![config.sram_per_stage; config.stages],
            map_ram_left: vec![config.map_ram_per_stage; config.stages],
            hash_dist_left: config.hash_dist_total(),
            gateways_left: config.gateways_total(),
        }
    }
}

/// Topological order of the arrays (dependencies first), or the cycle.
fn topo_order(program: &Program) -> Result<Vec<usize>, PlaceError> {
    if let Some(cycle) = program.find_cycle() {
        return Err(PlaceError::CircularDependency(cycle));
    }
    let n = program.arrays.len();
    // Kahn's algorithm over the "reads from" edges: an array can only be
    // placed after everything it reads.
    let mut indegree = vec![0usize; n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for d in &program.deps {
        indegree[d.from] += 1;
        rev[d.to].push(d.from);
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in &rev[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "cycle already excluded");
    Ok(order)
}

/// Place one instance against mutable remaining capacity.
fn place_into(
    program: &Program,
    config: &RmtConfig,
    cap: &mut Capacity,
) -> Result<Placement, PlaceError> {
    let usage = ResourceUsage::of(program);
    if usage.hash_dist > cap.hash_dist_left {
        return Err(PlaceError::InsufficientResources(
            "hash distribution units",
            usage.hash_dist,
            cap.hash_dist_left,
        ));
    }
    if usage.gateways > cap.gateways_left {
        return Err(PlaceError::InsufficientResources(
            "gateways",
            usage.gateways,
            cap.gateways_left,
        ));
    }

    let order = topo_order(program)?;
    let n = program.arrays.len();
    let mut stage_of = vec![usize::MAX; n];
    // Dry-run on a copy so a failed instance does not leak partial
    // charges into the shared capacity.
    let mut trial = cap.clone();
    for &idx in &order {
        let min_stage = program
            .deps
            .iter()
            .filter(|d| d.from == idx)
            .map(|d| stage_of[d.to] + 1)
            .max()
            .unwrap_or(0);
        let arr = &program.arrays[idx];
        let sram = arr.bytes.div_ceil(SRAM_BLOCK_BYTES) + arr.salus;
        let mut placed = false;
        for s in min_stage..config.stages {
            if trial.salus_left[s] >= arr.salus
                && trial.sram_left[s] >= sram
                && trial.map_ram_left[s] >= sram
            {
                trial.salus_left[s] -= arr.salus;
                trial.sram_left[s] -= sram;
                trial.map_ram_left[s] -= sram;
                stage_of[idx] = s;
                placed = true;
                break;
            }
        }
        if !placed {
            return if min_stage >= config.stages {
                Err(PlaceError::TooManyStages)
            } else {
                Err(PlaceError::InsufficientResources(
                    "per-stage SALU/SRAM",
                    sram,
                    0,
                ))
            };
        }
    }
    // Commit: the extra per-sketch SALUs go to the last used stage that
    // still has room; charge them against the pooled view by deducting
    // from whichever stages have spares.
    let mut extra = program.extra_salus;
    for s in (0..config.stages).rev() {
        if extra == 0 {
            break;
        }
        let take = extra.min(trial.salus_left[s]);
        trial.salus_left[s] -= take;
        extra -= take;
    }
    if extra > 0 {
        return Err(PlaceError::InsufficientResources("stateful ALUs", extra, 0));
    }
    *cap = trial;
    cap.hash_dist_left -= usage.hash_dist;
    cap.gateways_left -= usage.gateways;
    let stages_used = stage_of.iter().map(|&s| s + 1).max().unwrap_or(0);
    Ok(Placement {
        array_stage: stage_of,
        stages_used,
    })
}

/// Place one program instance on an empty switch.
pub fn place(program: &Program, config: &RmtConfig) -> Result<Placement, PlaceError> {
    let mut cap = Capacity::full(config);
    place_into(program, config, &mut cap)
}

/// How many instances of `program` fit one switch (0 if even one does
/// not place).
pub fn fit_count(program: &Program, config: &RmtConfig) -> usize {
    let mut cap = Capacity::full(config);
    let mut count = 0;
    while place_into(program, config, &mut cap).is_ok() {
        count += 1;
        if count > 1_000 {
            break; // degenerate zero-cost program; avoid spinning
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::library::*;

    fn cfg() -> RmtConfig {
        RmtConfig::default()
    }

    #[test]
    fn table2_count_min_fractions() {
        // Table 2: Count-Min at the §7.1 config (500KB, depth 3) uses
        // 20.83% hash distribution units, 16.67% SALUs, 7.81% gateways,
        // 7.11% Map RAM, 4.27% SRAM.
        let p = count_min(500_000, 3, FIVE_TUPLE_BITS);
        let fr = ResourceUsage::of(&p).fractions(&cfg());
        let expect = [0.2083, 0.1667, 0.0781, 0.0711, 0.0427];
        for (got, want) in fr.iter().zip(&expect) {
            assert!(
                (got - want).abs() < 0.005,
                "fractions {fr:?} vs Table 2 {expect:?}"
            );
        }
    }

    #[test]
    fn table2_rhhh_fractions() {
        // Table 2, R-HHH column: 22.22% / 16.67% / 8.33% / 7.11% / 4.27%.
        let p = rhhh(500_000, 3, FIVE_TUPLE_BITS);
        let fr = ResourceUsage::of(&p).fractions(&cfg());
        let expect = [0.2222, 0.1667, 0.0833, 0.0711, 0.0427];
        for (got, want) in fr.iter().zip(&expect) {
            assert!(
                (got - want).abs() < 0.005,
                "fractions {fr:?} vs Table 2 {expect:?}"
            );
        }
    }

    #[test]
    fn hash_dist_is_the_bottleneck() {
        let p = count_min(500_000, 3, FIVE_TUPLE_BITS);
        let (name, frac) = ResourceUsage::of(&p).bottleneck(&cfg());
        assert_eq!(name, "Hash Distribution Unit");
        assert!(frac > 0.2);
    }

    #[test]
    fn at_most_four_count_min_sketches_fit() {
        // Table 2 caption: "A Tofino switch cannot support more than
        // four single-key sketches."
        let p = count_min(500_000, 3, FIVE_TUPLE_BITS);
        assert_eq!(fit_count(&p, &cfg()), 4);
    }

    #[test]
    fn basic_coco_rejected_for_circularity() {
        let p = coco_basic(500_000, 2, FIVE_TUPLE_BITS);
        match place(&p, &cfg()) {
            Err(PlaceError::CircularDependency(cycle)) => assert!(cycle.len() >= 2),
            other => panic!("expected circular-dependency rejection, got {other:?}"),
        }
    }

    #[test]
    fn hardware_coco_places() {
        let p = coco_hardware(500_000, 2, FIVE_TUPLE_BITS);
        let placement = place(&p, &cfg()).expect("hardware-friendly variant must place");
        assert!(placement.stages_used <= cfg().stages);
    }

    #[test]
    fn coco_salu_fraction_matches_section_7_4() {
        // §7.4: "CocoSketch only needs 6.25% Stateful ALUs".
        let p = coco_hardware(500_000, 2, FIVE_TUPLE_BITS);
        let fr = ResourceUsage::of(&p).fractions(&cfg());
        assert!((fr[1] - 0.0625).abs() < 0.001, "SALU fraction {}", fr[1]);
    }

    #[test]
    fn elastic_salu_fraction_matches_figure_15d() {
        // Fig 15d: Elastic needs 18.75% SALUs per key, so at most 4 fit.
        let p = elastic(500_000, FIVE_TUPLE_BITS);
        let fr = ResourceUsage::of(&p).fractions(&cfg());
        assert!((fr[1] - 0.1875).abs() < 0.001, "SALU fraction {}", fr[1]);
        assert_eq!(fit_count(&p, &cfg()), 4, "at most 4 Elastic sketches");
    }

    #[test]
    fn elastic_dependency_chain_spans_stages() {
        let p = elastic(500_000, FIVE_TUPLE_BITS);
        let placement = place(&p, &cfg()).unwrap();
        // light part strictly after both heavy parts.
        assert!(placement.array_stage[2] > placement.array_stage[0]);
        assert!(placement.array_stage[2] > placement.array_stage[1]);
    }

    #[test]
    fn coco_fits_many_instances() {
        // CocoSketch's small footprint means several instances co-exist
        // (though one is enough for any number of keys).
        let p = coco_hardware(500_000, 2, FIVE_TUPLE_BITS);
        assert!(fit_count(&p, &cfg()) >= 6);
    }

    #[test]
    fn oversized_program_rejected_cleanly() {
        // 100MB cannot fit: SRAM exhausted.
        let p = count_min(100_000_000, 3, FIVE_TUPLE_BITS);
        assert!(matches!(
            place(&p, &cfg()),
            Err(PlaceError::InsufficientResources(..)) | Err(PlaceError::TooManyStages)
        ));
        assert_eq!(fit_count(&p, &cfg()), 0);
    }

    #[test]
    fn placement_respects_dependencies_generally() {
        let p = elastic(300_000, FIVE_TUPLE_BITS);
        let placement = place(&p, &cfg()).unwrap();
        for d in &p.deps {
            assert!(
                placement.array_stage[d.from] > placement.array_stage[d.to],
                "dep {d:?} violated: {:?}",
                placement.array_stage
            );
        }
    }
}

//! Hardware platform models: an RMT match-action pipeline (Tofino-like)
//! and an FPGA datapath (Alveo-like).
//!
//! The paper's hardware results are of two kinds, and this crate
//! reproduces both without the hardware:
//!
//! 1. **Feasibility** — does an algorithm's update logic fit a
//!    unidirectional match-action pipeline at all? [`rmt`] builds a
//!    dataflow-graph representation of each sketch's per-packet update
//!    ([`program::Program`]), detects circular dependencies (the §3.3
//!    obstruction), and places programs into stages under per-stage
//!    resource budgets.
//! 2. **Resource and throughput accounting** — Table 2, Figure 15b/c/d.
//!    [`rmt`] charges hash-distribution units, stateful ALUs, gateways,
//!    SRAM and Map RAM; [`fpga`] models initiation intervals, clock
//!    derating with memory size, and BRAM/LUT/register budgets.
//!
//! The cost derivations are structural (e.g. a 104-bit key needs
//! `ceil(104/24) = 5` hash-distribution units per hash call; a register
//! array of `B` bytes needs `ceil(B / 16KiB)` SRAM blocks plus one Map
//! RAM block each to be stateful); where the paper reports a calibration
//! point (Table 2, §7.4), the derived numbers are tested against it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fpga;
pub mod program;
pub mod rmt;

pub use program::{Program, RegisterArray};
pub use rmt::{PlaceError, Placement, ResourceUsage, RmtConfig};

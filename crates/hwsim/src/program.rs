//! Dataflow-graph descriptions of per-packet sketch update logic.
//!
//! A [`Program`] is the hardware-relevant skeleton of a sketch: its
//! stateful register arrays, the data dependencies *between* those
//! arrays' updates, its hash calls, and a few scalar facts (key width,
//! whether it needs a random-number source). Both platform models
//! consume this one representation.

/// One stateful register array (a row of a sketch, a key array, ...).
#[derive(Debug, Clone)]
pub struct RegisterArray {
    /// Human-readable role ("cm row 0", "key part", "value part").
    pub name: String,
    /// Bytes of state.
    pub bytes: usize,
    /// Width of one entry in bits (a stateful ALU handles up to 64).
    pub entry_bits: u32,
    /// Stateful ALUs this array's per-packet update occupies.
    pub salus: usize,
}

/// A directed dependency: updating array `from` requires having read
/// array `to` *in the same packet's pass* (e.g. "which bucket do I
/// increment" depends on the other candidates' values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// The array whose update consumes the value.
    pub from: usize,
    /// The array whose value is consumed.
    pub to: usize,
}

/// The per-packet update logic of one sketch instance.
#[derive(Debug, Clone)]
pub struct Program {
    /// Algorithm name (for reports).
    pub name: String,
    /// Stateful arrays.
    pub arrays: Vec<RegisterArray>,
    /// Read-before-update dependencies between arrays.
    pub deps: Vec<Dep>,
    /// Independent hash computations per packet.
    pub hash_calls: usize,
    /// Bits of key hashed per call.
    pub key_bits: u32,
    /// Whether the update needs a hardware random number per packet
    /// (charged one hash-distribution unit and one gateway).
    pub needs_rng: bool,
    /// Extra conditional branches (gateways) beyond the per-hash ones.
    pub extra_gateways: usize,
    /// Stateful ALUs for fixed per-sketch logic (threshold compare,
    /// report registers) beyond the per-array costs.
    pub extra_salus: usize,
}

impl Program {
    /// Total stateful memory.
    pub fn total_bytes(&self) -> usize {
        self.arrays.iter().map(|a| a.bytes).sum()
    }

    /// Detect a dependency cycle among arrays; returns one cycle's array
    /// indices if present. This is the §3.3 obstruction: a cyclic
    /// dataflow cannot be laid out in a unidirectional pipeline.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = self.arrays.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for d in &self.deps {
            adj[d.from].push(d.to);
        }
        let mut marks = vec![Mark::White; n];
        let mut stack: Vec<usize> = Vec::new();

        fn dfs(
            v: usize,
            adj: &[Vec<usize>],
            marks: &mut [Mark],
            stack: &mut Vec<usize>,
        ) -> Option<Vec<usize>> {
            marks[v] = Mark::Grey;
            stack.push(v);
            for &w in &adj[v] {
                match marks[w] {
                    Mark::Grey => {
                        // Cycle: the suffix of the stack from w.
                        let pos = stack.iter().position(|&x| x == w).unwrap();
                        return Some(stack[pos..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(w, adj, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks[v] = Mark::Black;
            None
        }

        (0..n).find_map(|v| {
            if marks[v] == Mark::White {
                dfs(v, &adj, &mut marks, &mut stack)
            } else {
                None
            }
        })
    }
}

/// Pre-built programs for the algorithms the paper deploys in hardware.
pub mod library {
    use super::{Dep, Program, RegisterArray};

    /// The 5-tuple key width the hardware experiments use.
    pub const FIVE_TUPLE_BITS: u32 = 104;

    fn array(name: &str, bytes: usize, entry_bits: u32, salus: usize) -> RegisterArray {
        RegisterArray {
            name: name.to_string(),
            bytes,
            entry_bits,
            salus,
        }
    }

    /// Count-Min with `depth` rows over `mem_bytes` (Table 2's single-key
    /// sketch, depth 3 in the §7.1 configuration).
    pub fn count_min(mem_bytes: usize, depth: usize, key_bits: u32) -> Program {
        let per_row = mem_bytes / depth.max(1);
        Program {
            name: format!("CountMin(d={depth})"),
            // Each row costs two stateful ALUs: the counter
            // read-modify-write plus the heavy-candidate comparison that
            // feeds the report logic.
            arrays: (0..depth)
                .map(|i| array(&format!("cm row {i}"), per_row, 64, 2))
                .collect(),
            deps: Vec::new(), // rows are independent
            hash_calls: depth,
            key_bits,
            needs_rng: false,
            extra_gateways: 0,
            // Threshold compare + report registers.
            extra_salus: 2,
        }
    }

    /// R-HHH's per-packet work: a Count-Min update on the sampled level
    /// plus the level-sampling randomness (one more hash).
    pub fn rhhh(mem_bytes: usize, depth: usize, key_bits: u32) -> Program {
        let mut p = count_min(mem_bytes, depth, key_bits);
        p.name = "R-HHH".to_string();
        p.needs_rng = true; // the level die roll
        p
    }

    /// Hardware-friendly CocoSketch with `d` independent arrays: each
    /// array packs key and value into one wide stateful entry (§4.2 —
    /// key and value updated in sequence within one array, no cross-
    /// array dependency).
    pub fn coco_hardware(mem_bytes: usize, d: usize, key_bits: u32) -> Program {
        let per_array = mem_bytes / d.max(1);
        Program {
            name: format!("CocoSketch-HW(d={d})"),
            // One stateful ALU per array: with key and value in
            // separate pipeline stages of the same array (§3.3), each
            // array's per-packet work is a single paired RMW.
            arrays: (0..d)
                .map(|i| array(&format!("coco array {i}"), per_array, 64, 1))
                .collect(),
            deps: Vec::new(), // the whole point of §4.2
            hash_calls: d,
            key_bits,
            needs_rng: true,
            extra_gateways: 0,
            // The replacement-probability comparison.
            extra_salus: 1,
        }
    }

    /// Basic CocoSketch as one would naively map it to hardware: the
    /// update of every array depends on the values of all others (the
    /// min comparison), a dependency cycle for `d >= 2`.
    pub fn coco_basic(mem_bytes: usize, d: usize, key_bits: u32) -> Program {
        let mut p = coco_hardware(mem_bytes, d, key_bits);
        p.name = format!("CocoSketch-Basic(d={d})");
        for i in 0..d {
            for j in 0..d {
                if i != j {
                    p.deps.push(Dep { from: i, to: j });
                }
            }
        }
        p
    }

    /// Elastic sketch: heavy part (key, vote+, vote-, flag in paired
    /// wide entries) plus the light byte-counter row. The light-part
    /// update depends on the heavy part's eviction decision.
    pub fn elastic(mem_bytes: usize, key_bits: u32) -> Program {
        let heavy = mem_bytes / 2;
        Program {
            name: "Elastic".to_string(),
            arrays: vec![
                // Key matching needs two paired 52-bit compares.
                array("heavy keys+flags", heavy / 2, 64, 2),
                // vote+ and vote- are two RMWs each (read for the λ test,
                // write back).
                array("heavy votes", heavy / 2, 64, 4),
                array("light counters", mem_bytes - heavy, 8, 1),
            ],
            deps: vec![
                // Light insert depends on the heavy eviction decision,
                // which reads both heavy arrays; vote update reads keys.
                Dep { from: 2, to: 0 },
                Dep { from: 2, to: 1 },
                Dep { from: 1, to: 0 },
            ],
            hash_calls: 3, // heavy index, light index, plus vote compare hash
            key_bits,
            needs_rng: false,
            extra_gateways: 2, // λ-threshold eviction test, flag set
            // Eviction bookkeeping (moving votes to the light part).
            extra_salus: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;

    #[test]
    fn count_min_is_acyclic() {
        let p = count_min(500_000, 3, FIVE_TUPLE_BITS);
        assert!(p.find_cycle().is_none());
        assert_eq!(p.arrays.len(), 3);
        assert!(p.total_bytes() <= 500_000);
    }

    #[test]
    fn basic_coco_has_cycle_iff_d_gt_1() {
        let p1 = coco_basic(500_000, 1, FIVE_TUPLE_BITS);
        assert!(
            p1.find_cycle().is_none(),
            "d=1 has no cross-array dependency"
        );
        let p2 = coco_basic(500_000, 2, FIVE_TUPLE_BITS);
        let cycle = p2.find_cycle().expect("d=2 must cycle");
        assert!(cycle.len() >= 2);
        let p4 = coco_basic(500_000, 4, FIVE_TUPLE_BITS);
        assert!(p4.find_cycle().is_some());
    }

    #[test]
    fn hardware_coco_is_acyclic() {
        for d in 1..=4 {
            let p = coco_hardware(500_000, d, FIVE_TUPLE_BITS);
            assert!(p.find_cycle().is_none(), "d={d}");
        }
    }

    #[test]
    fn elastic_is_acyclic_but_deep() {
        let p = elastic(500_000, FIVE_TUPLE_BITS);
        assert!(p.find_cycle().is_none());
        // The dependency chain forces heavy parts before the light part.
        assert!(p.deps.len() >= 3);
    }

    #[test]
    fn cycle_finder_reports_an_actual_cycle() {
        let p = coco_basic(1000, 3, 32);
        let cycle = p.find_cycle().unwrap();
        // Every consecutive pair in the reported cycle is a real edge.
        for w in cycle.windows(2) {
            assert!(p.deps.contains(&Dep {
                from: w[0],
                to: w[1]
            }));
        }
        assert!(p.deps.contains(&Dep {
            from: *cycle.last().unwrap(),
            to: cycle[0]
        }));
    }

    #[test]
    fn rhhh_adds_sampling_randomness() {
        let cm = count_min(500_000, 3, FIVE_TUPLE_BITS);
        let r = rhhh(500_000, 3, FIVE_TUPLE_BITS);
        assert_eq!(r.hash_calls, cm.hash_calls, "same per-level hashing");
        assert!(r.needs_rng, "plus the level die roll");
        assert!(!cm.needs_rng);
    }
}
